# SEPAR reproduction -- convenience targets.

PYTHON ?= python

.PHONY: install test bench bench-snapshot bench-compare docs-check tables examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Write a regression-harness snapshot (BENCH_<label>.json, see
# docs/OBSERVABILITY.md).  Override LABEL to tag it, e.g.
#   make bench-snapshot LABEL=before
BENCH_DIR ?= bench-snapshots
LABEL ?= local

bench-snapshot:
	PYTHONPATH=src $(PYTHON) -m repro bench --quick --label $(LABEL) -o $(BENCH_DIR)

# Hard-gate compare of two snapshots: make bench-compare OLD=... NEW=...
bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro bench --compare $(OLD) $(NEW)

# What CI's docs job runs: every markdown link resolves, every module
# byte-compiles.
docs-check:
	$(PYTHON) tools/check_markdown_links.py
	$(PYTHON) -m compileall -q src

# Reproduce every table and figure (prints to stdout).
tables:
	$(PYTHON) -m pytest benchmarks/ -s --benchmark-disable

# The paper's full 4,000-app configuration.
tables-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ -s --benchmark-disable

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/enforcement_demo.py
	$(PYTHON) examples/generated_attacker.py
	$(PYTHON) examples/marshmallow_permissions.py
	$(PYTHON) examples/market_audit.py
	$(PYTHON) examples/custom_vulnerability_plugin.py

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
