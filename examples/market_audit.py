#!/usr/bin/env python3
"""Market audit: sweeping a synthetic app-store corpus (the RQ2 workflow).

Generates a seeded market population, partitions it into device-sized
bundles (as the paper partitions its 4,000 apps into 80 bundles of 50),
extracts every app with AME, and reports which apps are vulnerable to
each inter-app vulnerability class -- plus a close-up SEPAR synthesis run
on the most vulnerable bundle.

Run:  python examples/market_audit.py [scale]
      scale defaults to 0.05 (200 apps); the paper's scale is 1.0.
"""

import sys

from repro.core.detector import SeparDetector
from repro.core.separ import Separ
from repro.reporting import render_table
from repro.statics import extract_bundle
from repro.workloads import CorpusConfig, CorpusGenerator, partition_bundles


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    generator = CorpusGenerator(CorpusConfig(scale=scale))
    apks = generator.generate()
    bundles = partition_bundles(apks, bundle_size=50)
    print(f"corpus: {len(apks)} apps in {len(bundles)} bundles (scale={scale})")

    detector = SeparDetector()
    vulnerable = {}
    per_bundle_hits = []
    extracted = []
    for i, bundle_apks in enumerate(bundles):
        bundle = extract_bundle(bundle_apks)
        extracted.append(bundle)
        report = detector.detect(bundle)
        hits = 0
        for vuln, components in report.findings.items():
            apps = {c.split("/", 1)[0] for c in components}
            vulnerable.setdefault(vuln, set()).update(apps)
            hits += len(apps)
        per_bundle_hits.append(hits)

    rows = [
        [vuln, len(apps), ", ".join(sorted(apps)[:3]) + ("..." if len(apps) > 3 else "")]
        for vuln, apps in sorted(vulnerable.items())
    ]
    print()
    print(render_table(["Vulnerability", "Apps", "Examples"], rows,
                       title="vulnerable apps across the corpus"))

    # Close-up: full formal synthesis on the most-affected bundle.
    worst = max(range(len(bundles)), key=lambda i: per_bundle_hits[i])
    print(f"\nrunning full SEPAR synthesis on bundle {worst} "
          f"({per_bundle_hits[worst]} findings)...")
    report = Separ(scenarios_per_signature=3).analyze_bundle(extracted[worst])
    print(report.summary())
    for scenario in report.scenarios[:5]:
        print(f"\n[{scenario.vulnerability}] {scenario.description}")
    print(f"\nconstruction {report.stats.construction_seconds:.1f}s, "
          f"SAT solving {report.stats.solving_seconds:.1f}s, "
          f"{report.stats.num_clauses} clauses")


if __name__ == "__main__":
    main()
