#!/usr/bin/env python3
"""Quickstart: the paper's running example end to end.

Builds the two benign-but-vulnerable apps of Section II (the navigation
app of Listing 1 and the messenger app of Listing 2), runs the full SEPAR
pipeline -- AME static model extraction, ASE formal synthesis of exploit
scenarios, ECA policy derivation -- and prints what the paper's Figures
and Listings show: the extracted app specs, the synthesized scenarios
(including the malicious app's signature), and the preventive policies.

Run:  python examples/quickstart.py
"""

from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.separ import Separ
from repro.statics import extract_bundle


def show_extracted_models(bundle):
    print("=" * 72)
    print("AME: extracted app specifications (cf. Listing 4)")
    print("=" * 72)
    for app in bundle.apps:
        print(f"\napp {app.package}")
        print(f"  uses-permissions: {sorted(app.uses_permissions) or '(none)'}")
        for comp in app.components:
            print(f"  component {comp.short_name} ({comp.kind}):")
            print(f"    exported:  {comp.exported}")
            if comp.intent_filters:
                for filt in comp.intent_filters:
                    print(f"    filter:    actions={sorted(filt.actions)}")
            if comp.permissions:
                print(f"    enforces:  {sorted(comp.permissions)}")
            for path in comp.paths:
                print(f"    path:      {path.source.value} -> {path.sink.value}")
        for intent in app.intents:
            kind = "explicit" if intent.explicit else "implicit"
            print(
                f"  intent {intent.entity_id} ({kind}): "
                f"sender={intent.sender.split('/')[1]} "
                f"action={intent.action!r} "
                f"extras={sorted(r.value for r in intent.extras)}"
            )


def show_scenarios(report):
    print()
    print("=" * 72)
    print("ASE: synthesized exploit scenarios (cf. Section V's instance)")
    print("=" * 72)
    for scenario in report.scenarios:
        print(f"\n[{scenario.vulnerability}]")
        print(f"  {scenario.description}")
        if scenario.malicious_filter:
            print(f"  synthesized malicious filter: {scenario.malicious_filter}")


def show_policies(report):
    print()
    print("=" * 72)
    print("Synthesized ECA policies (cf. Section VI's example)")
    print("=" * 72)
    for policy in report.policies:
        print(f"\n{{ event: {policy.event.value},")
        conditions = []
        if policy.receiver:
            conditions.append(f"Intent.receiver: {policy.receiver}")
        if policy.sender:
            conditions.append(f"Intent.sender: {policy.sender}")
        if policy.intent_action:
            conditions.append(f"Intent.action: {policy.intent_action}")
        if policy.extras_any:
            conditions.append(
                f"Intent.extra: {sorted(r.value for r in policy.extras_any)}"
            )
        if policy.allowed_receivers is not None:
            conditions.append(
                f"receiver not in {sorted(policy.allowed_receivers)}"
            )
        if policy.sender_lacks_permission:
            conditions.append(
                f"sender lacks {policy.sender_lacks_permission}"
            )
        print(f"  condition: [{', '.join(conditions)}],")
        print(f"  action: {policy.action.value} }}   # {policy.vulnerability}")


def main():
    apks = [build_app1(), build_app2()]
    bundle = extract_bundle(apks)
    show_extracted_models(bundle)

    report = Separ().analyze_apks(apks)
    show_scenarios(report)
    show_policies(report)

    print()
    print("=" * 72)
    print(report.summary())


if __name__ == "__main__":
    main()
