#!/usr/bin/env python3
"""The Marshmallow scenario: continuous verification under permission churn.

Section IX of the paper: "a recently released version of Android
(Marshmallow) provides a Permission Manager that allows users to revoke
granted permissions after installation time ... SEPAR has more potential
in such a dynamic setting, as it can be applied to continuously verify the
security properties of an evolving system as the status of app permissions
changes."

This example drives exactly that loop: install the vulnerable bundle,
watch the findings, revoke SEND_SMS from the messenger (the escalation
dies), re-grant it (it returns), then install the malicious app and watch
the new compositions appear.

Run:  python examples/marshmallow_permissions.py
"""

from repro.android import permissions as perms
from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core.incremental import IncrementalAnalyzer
from repro.statics import extract_app, extract_bundle


def show(title, analyzer):
    print(f"\n--- {title} " + "-" * max(0, 56 - len(title)))
    findings = {
        vuln: sorted(components)
        for vuln, components in analyzer.report.findings.items()
        if components
    }
    if not findings:
        print("  (no findings)")
    for vuln, components in sorted(findings.items()):
        for comp in components:
            print(f"  {vuln}: {comp}")


def main():
    bundle = extract_bundle([build_app1(), build_app2()])
    analyzer = IncrementalAnalyzer(bundle)
    show("initial install (app1 + app2)", analyzer)

    delta = analyzer.revoke_permission("com.example.messenger", perms.SEND_SMS)
    print("\n>>> user revokes SEND_SMS from the messenger")
    print(delta.describe())
    show("after revocation", analyzer)

    delta = analyzer.grant_permission("com.example.messenger", perms.SEND_SMS)
    print("\n>>> user re-grants SEND_SMS")
    print(delta.describe())

    malicious = extract_app(build_malicious_app())
    delta = analyzer.install(malicious)
    print("\n>>> the malicious app is installed")
    print(delta.describe())
    show("after malicious install", analyzer)

    print("\n>>> re-synthesizing the policy set for the current state")
    policies = analyzer.refresh_policies()
    for policy in policies:
        print(f"  policy ({policy.vulnerability}): {policy.description}")


if __name__ == "__main__":
    main()
