#!/usr/bin/env python3
"""Enforcement demo: watching the Figure 1 attack die at runtime.

Installs the two vulnerable apps plus the malicious app on the simulated
device, runs the attack three ways, and shows the observable effects:

1. Unprotected device        -> the location leaves via SMS.
2. SEPAR policies, cautious  -> the hijack is blocked at the ICC layer.
3. SEPAR policies, consenting user -> the flow proceeds (the user said yes).

Run:  python examples/enforcement_demo.py
"""

from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core.separ import Separ
from repro.enforcement import (
    AndroidRuntime,
    PolicyDecisionPoint,
    PolicyEnforcementPoint,
)


def fresh_runtime():
    rt = AndroidRuntime()
    rt.install(build_app1())
    rt.install(build_app2())
    rt.install(build_malicious_app())
    return rt


def narrate(rt, title):
    print(f"\n--- {title} " + "-" * max(0, 58 - len(title)))
    for effect in rt.effects:
        if effect.kind == "icc_delivered":
            intent = effect.detail["intent"]
            print(
                f"  ICC   {effect.detail['sender']} -> {effect.component}"
                f" (action={intent.action!r})"
            )
        elif effect.kind == "sms_sent":
            taints = sorted(r.value for r in effect.detail["taints"])
            print(f"  SMS   sent by {effect.component}, carrying {taints}")
        elif effect.kind == "call_skipped":
            print(
                f"  BLOCK {effect.component}: {effect.detail['signature']} skipped"
            )
    sms = rt.effects_of_kind("sms_sent")
    verdict = "LOCATION EXFILTRATED" if sms else "no exfiltration"
    print(f"  => {verdict}")


def main():
    print("Synthesizing policies for the benign bundle (app1 + app2)...")
    report = Separ().analyze_apks([build_app1(), build_app2()])
    print(f"  {len(report.scenarios)} exploit scenarios, "
          f"{len(report.policies)} policies")

    # 1. No protection.
    rt = fresh_runtime()
    rt.start_component("com.example.navigation/LocationFinder")
    narrate(rt, "unprotected device")

    # 2. Enforced, cautious user (denies every prompt).
    rt = fresh_runtime()
    pdp = PolicyDecisionPoint(report.policies)
    pep = PolicyEnforcementPoint(rt, pdp)
    pep.install()
    rt.start_component("com.example.navigation/LocationFinder")
    narrate(rt, "SEPAR enforcement, cautious user")
    prompts = [r for r in pdp.log if r.prompted]
    print(f"  ({len(prompts)} user prompts, "
          f"{pep.blocked_deliveries} deliveries blocked)")

    # 3. Enforced, consenting user.
    rt = fresh_runtime()
    pdp = PolicyDecisionPoint(report.policies, prompt_callback=lambda p, e: True)
    PolicyEnforcementPoint(rt, pdp).install()
    rt.start_component("com.example.navigation/LocationFinder")
    narrate(rt, "SEPAR enforcement, consenting user")


if __name__ == "__main__":
    main()
