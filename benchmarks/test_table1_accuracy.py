"""Table I (RQ1): detection accuracy on DroidBench 2.0 + ICC-Bench.

Reproduces the per-case TP/FP/FN cells and the aggregate
precision / recall / F-measure rows for DidFail, AmanDroid, and SEPAR.

Paper's aggregate row:        DidFail 55%/37%/44%, AmanDroid 86%/48%/63%,
                              SEPAR 100%/97%/98%.
Expected reproduction shape:  SEPAR strictly dominates both baselines on
precision and recall; its only misses are the two dynamically registered
Broadcast Receiver cases.
"""

import pytest

from repro.baselines import AmanDroid, DidFail, SeparTool
from repro.benchsuite.droidbench import droidbench_cases
from repro.benchsuite.iccbench import iccbench_cases
from repro.benchsuite.metrics import score_tool
from repro.reporting import render_table


@pytest.fixture(scope="module")
def cases():
    return droidbench_cases() + iccbench_cases()


@pytest.fixture(scope="module")
def scores(cases):
    tools = [DidFail(), AmanDroid(), SeparTool()]
    all_scores = {}
    for tool in tools:
        results = {c.name: tool.find_leaks(c.apks) for c in cases}
        all_scores[tool.name] = score_tool(tool.name, cases, results)
    return all_scores


def test_table1_report(scores, cases):
    """Print the reproduced Table I."""
    rows = []
    for i, case in enumerate(cases):
        rows.append(
            [
                case.suite,
                case.name,
                scores["DidFail"].cases[i].symbols,
                scores["AmanDroid"].cases[i].symbols,
                scores["SEPAR"].cases[i].symbols,
            ]
        )
    for metric in ("precision", "recall", "f_measure"):
        rows.append(
            [
                "",
                metric,
                f"{getattr(scores['DidFail'], metric):.0%}",
                f"{getattr(scores['AmanDroid'], metric):.0%}",
                f"{getattr(scores['SEPAR'], metric):.0%}",
            ]
        )
    print()
    print(
        render_table(
            ["Suite", "Test Case", "DidFail", "AmanDroid", "SEPAR"],
            rows,
            title=(
                "Table I -- ICC vulnerability detection accuracy "
                "(paper: DidFail 55/37/44, AmanDroid 86/48/63, SEPAR 100/97/98)"
            ),
        )
    )


class TestShape:
    def test_separ_perfect_precision(self, scores):
        assert scores["SEPAR"].precision == 1.0

    def test_separ_recall_band(self, scores):
        # Paper: 97%; ours: 30/32 with only the dynamic-receiver misses.
        assert scores["SEPAR"].recall >= 0.90

    def test_separ_misses_only_dynamic_receivers(self, scores):
        missed = [
            c.case
            for c in scores["SEPAR"].cases
            if c.false_negatives
        ]
        assert missed == ["DynRegisteredReceiver1", "DynRegisteredReceiver2"]

    def test_separ_detects_all_droidbench(self, scores):
        droid = [c for c in scores["SEPAR"].cases if c.suite == "DroidBench2"]
        assert sum(c.true_positives for c in droid) == 23
        assert not any(c.false_negatives for c in droid)

    def test_tool_ordering(self, scores):
        """SEPAR > AmanDroid > DidFail on F-measure, as in the paper."""
        assert (
            scores["SEPAR"].f_measure
            > scores["AmanDroid"].f_measure
            > scores["DidFail"].f_measure
        )

    def test_didfail_band(self, scores):
        assert 0.45 <= scores["DidFail"].precision <= 0.70
        assert 0.30 <= scores["DidFail"].recall <= 0.45

    def test_amandroid_band(self, scores):
        assert scores["AmanDroid"].recall == pytest.approx(0.44, abs=0.08)

    def test_didfail_false_positives_on_unreachable(self, scores):
        by_case = {c.case: c for c in scores["DidFail"].cases}
        assert by_case["ICC_startActivity4"].false_positives >= 1
        assert by_case["ICC_startActivity5"].false_positives >= 1

    def test_amandroid_handles_dynamic_receiver1_only(self, scores):
        by_case = {c.case: c for c in scores["AmanDroid"].cases}
        assert by_case["DynRegisteredReceiver1"].true_positives == 1
        assert by_case["DynRegisteredReceiver2"].false_negatives == 1


def test_benchmark_separ_suite(benchmark, cases):
    """Wall-clock for SEPAR over the full 32-case suite."""
    tool = SeparTool()

    def run():
        return {c.name: tool.find_leaks(c.apks) for c in cases}

    results = benchmark(run)
    score = score_tool("SEPAR", cases, results)
    assert score.precision == 1.0
