"""Shared benchmark configuration.

Scale control: the paper's full 4,000-app corpus is expensive on a laptop;
benchmarks default to a scaled-down population and honor

- ``REPRO_SCALE=<float>`` -- corpus fraction (default 0.1 = 400 apps);
- ``REPRO_FULL=1`` -- the paper's full scale (4,000 apps, 80 bundles).

Reproduced table/figure data is printed to stdout; run pytest with ``-s``
(or rely on the terminal summary) to see it.
"""

import os

import pytest


def corpus_scale() -> float:
    if os.environ.get("REPRO_FULL") == "1":
        return 1.0
    return float(os.environ.get("REPRO_SCALE", "0.1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return corpus_scale()
