"""Ablation benches for the design choices DESIGN.md calls out.

1. **Dynamic-receiver extraction** (the paper's only DroidBench/ICC-Bench
   misses): enabling this reproduction's extension flag recovers the
   resolvable case (DynRegisteredReceiver1) with no precision cost.
2. **Entry-point reachability pruning** (AME's dead-code discipline):
   disabling it reproduces DidFail-style false warnings on the
   unreachable-code cases.
3. **Aluminum minimality** (principled scenario exploration): minimal
   scenarios carry strictly less synthesized malice than raw SAT models --
   the hijack filter lists only what matching requires -- which is what
   makes the derived policies fine-grained.
"""

import pytest

from repro.baselines import SeparTool
from repro.baselines.common import FULL_PROFILE, compose_leaks
from repro.benchsuite.droidbench import (
    droidbench_cases,
    start_activity_unreachable,
)
from repro.benchsuite.iccbench import iccbench_cases
from repro.benchsuite.metrics import score_tool
from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.model import BundleModel
from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.core.vulnerabilities import IntentHijackSignature
from repro.reporting import render_table
from repro.statics import extract_bundle
from repro.statics.extractor import ModelExtractor


@pytest.fixture(scope="module")
def cases():
    return droidbench_cases() + iccbench_cases()


class TestDynamicReceiverAblation:
    @pytest.fixture(scope="class")
    def scores(self, cases):
        out = {}
        for label, flag in (("published", False), ("extended", True)):
            tool = SeparTool(handle_dynamic_receivers=flag)
            results = {c.name: tool.find_leaks(c.apks) for c in cases}
            out[label] = score_tool(label, cases, results)
        return out

    def test_report(self, scores):
        rows = [
            [
                label,
                f"{s.precision:.0%}",
                f"{s.recall:.0%}",
                f"{s.f_measure:.0%}",
                s.false_negatives,
            ]
            for label, s in scores.items()
        ]
        print()
        print(
            render_table(
                ["SEPAR variant", "P", "R", "F", "misses"],
                rows,
                title="Ablation 1 -- dynamic-receiver extraction",
            )
        )

    def test_extension_recovers_resolvable_case(self, scores):
        assert scores["extended"].recall > scores["published"].recall
        assert scores["extended"].precision == 1.0
        missed = [c.case for c in scores["extended"].cases if c.false_negatives]
        assert missed == ["DynRegisteredReceiver2"]  # truly unresolvable


class TestReachabilityAblation:
    def test_pruning_prevents_false_warnings(self):
        case = start_activity_unreachable(4)
        pruned = ModelExtractor(reachability_pruning=True)
        unpruned = ModelExtractor(reachability_pruning=False)
        bundle_pruned = BundleModel(
            apps=[pruned.extract(a) for a in case.apks]
        )
        bundle_unpruned = BundleModel(
            apps=[unpruned.extract(a) for a in case.apks]
        )
        clean = compose_leaks(bundle_pruned, FULL_PROFILE)
        noisy = compose_leaks(bundle_unpruned, FULL_PROFILE)
        print(
            f"\nAblation 2 -- reachability pruning: "
            f"pruned={len(clean)} findings, unpruned={len(noisy)} findings"
        )
        assert not clean
        assert noisy  # the dead-code leak becomes a false warning


class TestMinimalityAblation:
    @pytest.fixture(scope="class")
    def scenario_pairs(self):
        bundle = extract_bundle([build_app1(), build_app2()])
        out = {}
        for label, minimal in (("aluminum", True), ("raw-sat", False)):
            engine = AnalysisAndSynthesisEngine(
                signatures=[IntentHijackSignature()],
                scenarios_per_signature=1,
                minimal=minimal,
            )
            result = engine.run(bundle)
            out[label] = result.scenarios[0]
        return out

    def test_report(self, scenario_pairs):
        rows = []
        for label, scenario in scenario_pairs.items():
            filt = scenario.malicious_filter or {}
            rows.append(
                [
                    label,
                    len(filt.get("actions", ())),
                    len(filt.get("categories", ())),
                    len(filt.get("data_types", ())),
                    len(filt.get("data_schemes", ())),
                ]
            )
        print()
        print(
            render_table(
                ["variant", "actions", "categories", "types", "schemes"],
                rows,
                title="Ablation 3 -- synthesized hijack-filter size",
            )
        )

    def test_minimal_filter_is_exact(self, scenario_pairs):
        filt = scenario_pairs["aluminum"].malicious_filter
        assert filt["actions"] == {"showLoc"}
        assert not filt["categories"]
        assert not filt["data_types"]
        assert not filt["data_schemes"]

    def test_minimal_no_larger_than_raw(self, scenario_pairs):
        def size(scenario):
            filt = scenario.malicious_filter or {}
            return sum(len(v) for v in filt.values())

        assert size(scenario_pairs["aluminum"]) <= size(
            scenario_pairs["raw-sat"]
        )


class TestTransitiveLeakAblation:
    """Ablation 4 -- relay-closure depth: one-hop composition misses the
    paper's OwnCloud-style chained leaks; the transitive detector and the
    closure-walking signature find them at any depth."""

    @staticmethod
    def chain_apk(depth: int):
        """Source -> Relay1 -> ... -> Relay<depth> -> sink-draining tail."""
        from repro.android.apk import Apk
        from repro.android.components import ComponentDecl, ComponentKind
        from repro.android.manifest import Manifest
        from repro.dex import DexClass, DexProgram, MethodBuilder

        pkg = f"chain.d{depth}"
        decls = [ComponentDecl("Source", ComponentKind.ACTIVITY, exported=True)]
        classes = [
            DexClass(
                "Source",
                superclass="Activity",
                methods=[
                    MethodBuilder("onCreate", params=("p0",))
                    .invoke("AccountManager.getAccounts", receiver="v9", dest="v8")
                    .new_instance("v0", "Intent")
                    .const_string("v1", f"{pkg}/Relay1")
                    .invoke("Intent.setClassName", receiver="v0", args=("v1",))
                    .const_string("v2", "k")
                    .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
                    .invoke("Context.startService", args=("v0",))
                    .ret()
                    .build()
                ],
            )
        ]
        for i in range(1, depth + 1):
            name = f"Relay{i}"
            decls.append(ComponentDecl(name, ComponentKind.SERVICE, exported=True))
            builder = (
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v1", "k")
                .invoke(
                    "Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2"
                )
            )
            if i < depth:
                builder.new_instance("v0", "Intent")
                builder.const_string("v3", f"{pkg}/Relay{i + 1}")
                builder.invoke("Intent.setClassName", receiver="v0", args=("v3",))
                builder.invoke("Intent.putExtra", receiver="v0", args=("v1", "v2"))
                builder.invoke("Context.startService", args=("v0",))
            else:
                builder.const_string("v4", "/sdcard/out")
                builder.invoke("ExternalStorage.writeFile", args=("v4", "v2"))
            builder.ret()
            classes.append(
                DexClass(name, superclass="Service", methods=[builder.build()])
            )
        return Apk(Manifest(package=pkg, components=decls), DexProgram(classes))

    def test_depth_sweep(self):
        import time

        from repro.baselines.common import FULL_PROFILE, compose_leaks
        from repro.core.detector import SeparDetector
        from repro.statics import extract_bundle

        rows = []
        for depth in (1, 2, 3, 4, 6):
            apk = self.chain_apk(depth)
            bundle = extract_bundle([apk])
            start = time.perf_counter()
            report = SeparDetector().detect(bundle)
            elapsed = time.perf_counter() - start
            pair = (f"{apk.package}/Source", f"{apk.package}/Relay{depth}")
            transitive_found = pair in report.leak_pairs
            one_hop = compose_leaks(bundle, FULL_PROFILE)
            rows.append(
                [depth, transitive_found, pair in one_hop, f"{elapsed * 1000:.1f}"]
            )
            assert transitive_found, f"depth {depth} chain missed"
            if depth > 1:
                assert pair not in one_hop, "one-hop should miss deep chains"
        print()
        print(
            render_table(
                ["chain depth", "transitive", "one-hop", "detect ms"],
                rows,
                title="Ablation 4 -- relay-closure depth",
            )
        )

    def test_sat_signature_walks_deep_chain(self):
        from repro.core.synthesis import AnalysisAndSynthesisEngine
        from repro.core.vulnerabilities import InformationLeakSignature
        from repro.statics import extract_bundle

        apk = self.chain_apk(4)
        bundle = extract_bundle([apk])
        engine = AnalysisAndSynthesisEngine(
            signatures=[InformationLeakSignature()], scenarios_per_signature=1
        )
        result = engine.run(bundle)
        assert result.scenarios
        scenario = result.scenarios[0]
        assert scenario.roles["sink_component"] == f"{apk.package}/Relay4"


def test_benchmark_minimal_vs_raw(benchmark):
    """Wall-clock cost of Aluminum minimization on the running example."""
    bundle = extract_bundle([build_app1(), build_app2()])
    engine = AnalysisAndSynthesisEngine(
        signatures=[IntentHijackSignature()],
        scenarios_per_signature=2,
        minimal=True,
    )
    result = benchmark(engine.run, bundle)
    assert result.scenarios
