"""Figure 5 (RQ3): model-extraction time vs app size, per repository.

The paper's scatter plot shows per-app AME times across the four
repositories with two properties: 95% of apps extract in under two
minutes, and total static-analysis time scales linearly with app size
(each app is analyzed independently).

We reproduce the per-app (size, time) series, print per-repository
percentiles plus a coarse text scatter, and assert the shape: a strong
positive size-time correlation and a 95th percentile far below the
two-minute bound (our IR apps are smaller than real APKs, so absolute
times are milliseconds; the *scaling* is the reproduced result)."""

import numpy as np
import pytest

from repro.reporting import render_histogram, render_table
from repro.statics import extract_app
from repro.workloads import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def measurements(scale):
    generator = CorpusGenerator(CorpusConfig(scale=scale))
    apks = generator.generate()
    data = []  # (repository, size_kb, seconds)
    for apk in apks:
        model = extract_app(apk)
        data.append((apk.repository, model.apk_size_kb, model.extraction_seconds))
    return data


def test_fig5_report(measurements):
    by_repo = {}
    for repo, size, seconds in measurements:
        by_repo.setdefault(repo, []).append((size, seconds))
    rows = []
    for repo, pairs in sorted(by_repo.items()):
        times = np.array([s for _, s in pairs])
        sizes = np.array([k for k, _ in pairs])
        rows.append(
            [
                repo,
                len(pairs),
                f"{sizes.mean():.0f}",
                f"{times.mean() * 1000:.1f}",
                f"{np.percentile(times, 95) * 1000:.1f}",
                f"{times.max() * 1000:.1f}",
            ]
        )
    print()
    print(
        render_table(
            ["Repository", "Apps", "avg KB", "avg ms", "p95 ms", "max ms"],
            rows,
            title="Figure 5 -- per-app model extraction time by repository",
        )
    )
    # Coarse size-bucket profile (the scatter's trend line).
    sizes = np.array([s for _, s, _ in measurements], dtype=float)
    times = np.array([t for _, _, t in measurements], dtype=float)
    buckets = np.quantile(sizes, [0, 0.25, 0.5, 0.75, 1.0])
    labels, values = [], []
    for lo, hi in zip(buckets[:-1], buckets[1:]):
        mask = (sizes >= lo) & (sizes <= hi)
        if mask.any():
            labels.append(f"{lo:.0f}-{hi:.0f} KB")
            values.append(float(times[mask].mean() * 1000))
    print()
    print(
        render_histogram(
            labels, values, title="mean extraction time by size quartile", unit="ms"
        )
    )


class TestShape:
    def test_linear_scaling(self, measurements):
        """Extraction time scales monotonically (and roughly linearly)
        with app size: Spearman rank correlation on per-app (size, time)."""
        from scipy import stats as scipy_stats

        sizes = np.array([s for _, s, _ in measurements], dtype=float)
        times = np.array([t for _, _, t in measurements], dtype=float)
        rho = scipy_stats.spearmanr(sizes, times).statistic
        assert rho > 0.8, f"size-time rank correlation too weak: rho={rho:.2f}"

    def test_p95_under_bound(self, measurements):
        """Paper: 95% of apps under 2 minutes; our IR apps must clear the
        same bound with enormous headroom."""
        times = np.array([t for _, _, t in measurements])
        assert np.percentile(times, 95) < 120.0
        assert np.percentile(times, 95) < 1.0  # substitution-scaled bound

    def test_all_repositories_measured(self, measurements):
        assert {r for r, _, _ in measurements} == {
            "google_play",
            "f_droid",
            "malgenome",
            "bazaar",
        }


def test_benchmark_single_extraction(benchmark, scale):
    """Wall-clock of AME on one mid-sized generated app."""
    generator = CorpusGenerator(CorpusConfig(scale=min(scale, 0.02)))
    apks = generator.generate()
    apk = max(apks, key=lambda a: a.size_kb)
    model = benchmark(extract_app, apk)
    assert model.components


def test_fig5_pipeline_extraction_cached(tmp_path, scale):
    """Per-app extraction through the pipeline: each app is an independent
    unit of work (the property behind Fig 5's linear scaling), so a warm
    cache turns the whole stage into pure lookups."""
    from repro.pipeline import AnalysisPipeline, PipelineCache
    from repro.pipeline.stats import RunReport

    generator = CorpusGenerator(CorpusConfig(scale=min(scale, 0.02)))
    apks = generator.generate()

    cold_report = RunReport()
    pipeline = AnalysisPipeline(jobs=1, cache=PipelineCache(tmp_path))
    cold_models = pipeline.extract_apps(apks, report=cold_report)
    assert cold_report.cache.misses.get("extract") == len(apks)

    warm_report = RunReport()
    warm_pipeline = AnalysisPipeline(jobs=1, cache=PipelineCache(tmp_path))
    warm_models = warm_pipeline.extract_apps(apks, report=warm_report)
    assert warm_report.cache.hits.get("extract") == len(apks)
    cold_s = cold_report.stage("extract").seconds
    warm_s = warm_report.stage("extract").seconds
    print(f"\nextract stage: cold {cold_s:.3f}s, warm {warm_s:.3f}s")
    assert [m.package for m in warm_models] == [
        m.package for m in cold_models
    ]
