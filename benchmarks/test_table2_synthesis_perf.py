"""Table II (RQ3): compositional analysis and synthesis performance.

The paper's per-bundle averages: 313 components, 322 Intents, 148 Intent
filters; 260 s for transforming the Alloy models into 3-SAT clauses
("Construction") and 57 s of SAT solving ("Analysis").

We reproduce the same row over generated 50-app bundles: element counts in
the paper's band, and the *shape* that construction time dominates SAT
solving -- the defining characteristic of the bounded-relational approach
once app facts are pinned as partial instances.  (Absolute times are far
smaller: our substrate apps are compact IR, not full APKs.)
"""

import os

import pytest

from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.reporting import render_table
from repro.statics import extract_bundle
from repro.workloads import CorpusConfig, CorpusGenerator, partition_bundles


def _num_bundles() -> int:
    if os.environ.get("REPRO_FULL") == "1":
        return 8
    return 2


@pytest.fixture(scope="module")
def bundle_runs():
    # Enough corpus for the requested number of 50-app bundles.
    n = _num_bundles()
    generator = CorpusGenerator(CorpusConfig(scale=0.0125 * n))
    apks = generator.generate()
    bundles = partition_bundles(apks, bundle_size=50)[:n]
    engine = AnalysisAndSynthesisEngine(scenarios_per_signature=4)
    runs = []
    for bundle_apks in bundles:
        bundle = extract_bundle(bundle_apks)
        result = engine.run(bundle)
        runs.append((bundle, result))
    return runs


def test_table2_report(bundle_runs):
    rows = []
    for i, (bundle, result) in enumerate(bundle_runs):
        stats = bundle.stats
        rows.append(
            [
                f"bundle{i}",
                stats["components"],
                stats["intents"],
                stats["intent_filters"],
                f"{result.stats.construction_seconds:.2f}",
                f"{result.stats.solving_seconds:.2f}",
                len(result.scenarios),
            ]
        )
    n = len(bundle_runs)
    avg = lambda idx: sum(b.stats[idx] for b, _ in bundle_runs) / n  # noqa: E731
    rows.append(
        [
            "average",
            f"{avg('components'):.0f}",
            f"{avg('intents'):.0f}",
            f"{avg('intent_filters'):.0f}",
            f"{sum(r.stats.construction_seconds for _, r in bundle_runs) / n:.2f}",
            f"{sum(r.stats.solving_seconds for _, r in bundle_runs) / n:.2f}",
            "",
        ]
    )
    print()
    print(
        render_table(
            [
                "Bundle",
                "Components",
                "Intents",
                "IntentFilters",
                "Construction (s)",
                "Analysis (s)",
                "Scenarios",
            ],
            rows,
            title=(
                "Table II -- synthesis performance "
                "(paper averages: 313 / 322 / 148 elements; 260 s / 57 s)"
            ),
        )
    )


class TestShape:
    def test_element_counts_in_band(self, bundle_runs):
        """Per-bundle element counts approximate the paper's averages."""
        for bundle, _ in bundle_runs:
            stats = bundle.stats
            assert 180 <= stats["components"] <= 480
            assert 130 <= stats["intents"] <= 640
            assert 60 <= stats["intent_filters"] <= 300

    def test_construction_dominates_solving(self, bundle_runs):
        """The paper's 260s-vs-57s split: model-to-CNF construction costs
        more than SAT solving."""
        total_construction = sum(
            r.stats.construction_seconds for _, r in bundle_runs
        )
        total_solving = sum(r.stats.solving_seconds for _, r in bundle_runs)
        assert total_construction > total_solving

    def test_minutes_per_bundle(self, bundle_runs):
        """Paper: bundles of hundreds of components analyze in minutes on a
        laptop; ours must clear the same bound."""
        for _, result in bundle_runs:
            total = (
                result.stats.construction_seconds
                + result.stats.solving_seconds
            )
            assert total < 300.0

    def test_sat_problem_nontrivial(self, bundle_runs):
        for _, result in bundle_runs:
            assert result.stats.num_clauses > 10_000


def test_benchmark_bundle_synthesis(benchmark):
    """Wall-clock of one full ASE run over a 25-app bundle."""
    generator = CorpusGenerator(CorpusConfig(scale=0.00625))
    bundle = extract_bundle(generator.generate())
    engine = AnalysisAndSynthesisEngine(scenarios_per_signature=2)
    result = benchmark(engine.run, bundle)
    assert result.stats.num_vars > 0


def test_table2_pipeline_run_report(tmp_path):
    """The same Table II row, via the parallel cached pipeline: the run
    report carries the construction/solving split plus the solver effort
    (conflicts/decisions/propagations) behind it, and a warm rerun serves
    synthesis entirely from cache."""
    from repro.benchsuite.metrics import summarize_run_report
    from repro.pipeline import AnalysisPipeline, PipelineCache

    generator = CorpusGenerator(CorpusConfig(scale=0.00625))
    apks = generator.generate()
    bundles = partition_bundles(apks, bundle_size=len(apks))

    cold = AnalysisPipeline(
        jobs=1, cache=PipelineCache(tmp_path), scenarios_per_signature=2
    ).run(bundles)
    summary = summarize_run_report(cold.run_report)
    print()
    print(
        render_table(
            ["Metric", "Value"],
            [[k, f"{v:.3f}"] for k, v in sorted(summary.items())],
            title="Table II (pipeline run report) -- cold cache",
        )
    )
    assert summary["solver_calls"] > 0
    assert summary["stage_synthesis_seconds"] > 0
    assert summary["cache_hits"] == 0

    warm = AnalysisPipeline(
        jobs=1, cache=PipelineCache(tmp_path), scenarios_per_signature=2
    ).run(bundles)
    warm_summary = summarize_run_report(warm.run_report)
    assert warm_summary["cache_misses"] == 0
    assert warm_summary["cache_hit_rate"] == 1.0
    assert (
        warm_summary["stage_synthesis_seconds"]
        < summary["stage_synthesis_seconds"]
    )
