"""RQ2: vulnerability prevalence over the market corpus.

The paper analyzes 4,000 apps in 80 bundles of 50 and reports apps
vulnerable to: Intent hijack 97, Activity/Service launch 124,
inter-component information leakage 128, privilege escalation 36.

This harness generates the synthetic corpus (scaled by REPRO_SCALE /
REPRO_FULL, see conftest), partitions it into bundles, runs the full AME
extraction plus SEPAR detection per bundle, and reports detected counts
against both the generator's injection ledger and the paper's
(scale-adjusted) numbers.  The expected shape: detected ~= injected, with
the same ordering as the paper (leak >= launch > hijack >> escalation).
"""

import pytest

from repro.core.detector import SeparDetector
from repro.reporting import render_table
from repro.statics import extract_bundle
from repro.workloads import CorpusConfig, CorpusGenerator, partition_bundles

PAPER_COUNTS = {
    "intent_hijack": 97,
    "activity_service_launch": 124,
    "information_leak": 128,
    "privilege_escalation": 36,
}


@pytest.fixture(scope="module")
def corpus(scale):
    generator = CorpusGenerator(CorpusConfig(scale=scale))
    apks = generator.generate()
    return generator, apks


@pytest.fixture(scope="module")
def detection(corpus):
    generator, apks = corpus
    bundles = partition_bundles(apks, bundle_size=50)
    detector = SeparDetector()
    vulnerable = {
        "intent_hijack": set(),
        "activity_service_launch": set(),
        "information_leak": set(),
        "privilege_escalation": set(),
    }
    for bundle_apks in bundles:
        bundle = extract_bundle(bundle_apks)
        report = detector.detect(bundle)
        vulnerable["intent_hijack"] |= report.apps("intent_hijack")
        vulnerable["activity_service_launch"] |= report.apps(
            "activity_launch"
        ) | report.apps("service_launch")
        vulnerable["information_leak"] |= report.apps("information_leak")
        vulnerable["privilege_escalation"] |= report.apps(
            "privilege_escalation"
        )
    return vulnerable, len(bundles)


def test_rq2_report(corpus, detection, scale):
    generator, apks = corpus
    vulnerable, num_bundles = detection
    injected = generator.ledger.counts()
    rows = []
    for key, paper in PAPER_COUNTS.items():
        rows.append(
            [
                key,
                injected.get(key, "-"),
                len(vulnerable[key]),
                round(paper * scale, 1),
                paper,
            ]
        )
    print()
    print(
        render_table(
            ["Vulnerability", "Injected", "Detected", "Paper@scale", "Paper@4000"],
            rows,
            title=(
                f"RQ2 -- vulnerable apps among {len(apks)} "
                f"({num_bundles} bundles of <=50; scale={scale})"
            ),
        )
    )


class TestShape:
    def test_detection_tracks_injection(self, corpus, detection):
        """Detected counts stay within a band of the injected ground truth
        (cross-bundle composition can add victims; extraction misses none)."""
        generator, _ = corpus
        vulnerable, _ = detection
        injected = generator.ledger.counts()
        for key in ("intent_hijack", "privilege_escalation"):
            assert len(vulnerable[key]) >= 0.8 * injected[key]
        # Launch detection also covers escalation-injected components.
        assert len(vulnerable["activity_service_launch"]) >= 0.8 * (
            injected["activity_service_launch"]
        )

    def test_paper_ordering(self, detection):
        """leak and launch are the most common; escalation the rarest."""
        vulnerable, _ = detection
        counts = {k: len(v) for k, v in vulnerable.items()}
        assert counts["privilege_escalation"] <= counts["intent_hijack"]
        assert counts["privilege_escalation"] <= counts["information_leak"]
        assert counts["privilege_escalation"] <= counts[
            "activity_service_launch"
        ]

    def test_counts_in_paper_band(self, detection, scale):
        """Within 3x of the scale-adjusted paper counts, both directions."""
        vulnerable, _ = detection
        for key, paper in PAPER_COUNTS.items():
            expected = paper * scale
            detected = len(vulnerable[key])
            assert detected <= 3 * expected + 5, key
            assert detected >= expected / 3 - 5, key


def test_benchmark_bundle_detection(benchmark, corpus):
    """Wall-clock for extraction + detection of one 50-app bundle."""
    _, apks = corpus
    bundle_apks = partition_bundles(apks, bundle_size=50)[0]
    detector = SeparDetector()

    def run():
        return detector.detect(extract_bundle(bundle_apks))

    report = benchmark(run)
    assert report is not None
