"""Substrate benchmark: the CDCL solver and the relational translator.

Not a paper table -- Table II's construction-vs-solving split rests on the
substrate's performance characteristics, so this bench pins them: the
solver handles structured UNSAT (pigeonhole) and random 3-SAT near the
phase transition at the sizes the synthesis pipeline produces, and the
translator's clause volume grows linearly in bundle size.
"""

import random

import pytest

from repro.sat import Solver
from repro.statics import extract_bundle
from repro.workloads import CorpusConfig, CorpusGenerator


def random_3sat(num_vars: int, ratio: float, seed: int):
    rng = random.Random(seed)
    clauses = []
    for _ in range(int(num_vars * ratio)):
        vs = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def pigeonhole(holes: int):
    pigeons = holes + 1
    clauses = []

    def var(p, h):
        return p * holes + h + 1

    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def test_benchmark_random_3sat_under_transition(benchmark):
    """Satisfiable region (ratio 3.8): models found quickly."""
    clauses = random_3sat(120, 3.8, seed=7)

    def run():
        solver = Solver()
        solver.add_clauses(clauses)
        return solver.solve()

    result = benchmark(run)
    assert result.satisfiable


def test_benchmark_random_3sat_at_transition(benchmark):
    """Phase transition (ratio ~4.26): the hard regime."""
    clauses = random_3sat(80, 4.26, seed=11)

    def run():
        solver = Solver()
        solver.add_clauses(clauses)
        return solver.solve()

    benchmark(run)


def test_benchmark_pigeonhole_unsat(benchmark):
    """Structured UNSAT exercising clause learning."""
    clauses = pigeonhole(6)

    def run():
        solver = Solver()
        solver.add_clauses(clauses)
        return solver.solve()

    result = benchmark(run)
    assert not result.satisfiable


class TestDecisionLoop:
    def test_order_heap_beats_linear_scan(self):
        """Branch selection via the VSIDS order heap is O(log n) per decision
        against the O(n) scan it replaced; on synthesis-sized variable counts
        the decision loop speedup is well over an order of magnitude."""
        import time

        solver = Solver()
        num_vars = 20_000
        solver.add_clauses([[v, v + 1] for v in range(1, num_vars, 2)])
        rng = random.Random(5)
        for _ in range(num_vars):
            solver._bump_var(rng.randrange(1, num_vars + 1))

        def linear_pick():
            best, best_act = None, -1.0
            for var in range(1, solver._num_vars + 1):
                if solver._assigns[var] is None and solver._activity[var] > best_act:
                    best, best_act = var, solver._activity[var]
            return best

        rounds = 300
        start = time.perf_counter()
        for _ in range(rounds):
            var = solver._pick_branch_var()
            solver._heap_insert(var)
        heap_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(rounds):
            linear_pick()
        linear_seconds = time.perf_counter() - start

        # Both strategies agree on the maximum activity (ties may differ by
        # variable index, so compare the activity value, not the id).
        assert solver._activity[linear_pick()] == \
            solver._activity[solver._pick_branch_var()]
        speedup = linear_seconds / max(heap_seconds, 1e-9)
        print(f"\ndecision loop: heap {heap_seconds * 1e6 / rounds:.1f}us/pick, "
              f"linear {linear_seconds * 1e6 / rounds:.1f}us/pick "
              f"({speedup:.0f}x speedup at {num_vars} vars)")
        assert speedup > 5.0, "order heap must beat the linear scan"


class TestTranslationScaling:
    def test_clause_volume_linear_in_bundle_size(self):
        """Partial-instance pinning keeps CNF growth linear: doubling the
        bundle roughly doubles clauses, far from the quadratic blowup a
        naive encoding of component interactions would give."""
        from repro.core.app_to_spec import BundleSpec
        from repro.core.vulnerabilities import ServiceLaunchSignature

        sizes = {}
        for n_apps, scale in ((12, 0.003), (25, 0.00625)):
            generator = CorpusGenerator(CorpusConfig(scale=scale, seed=3))
            bundle = extract_bundle(generator.generate())
            spec = BundleSpec(bundle)
            inst = ServiceLaunchSignature().instantiate(spec)
            problem = spec.module.solve_problem(
                goal=inst.goal, extra=inst.extra_scopes
            )
            sizes[len(bundle.apps)] = problem.stats.num_clauses
        (small_n, small_c), (large_n, large_c) = sorted(sizes.items())
        growth = (large_c / small_c) / (large_n / small_n)
        print(f"\nclause growth factor per app-count doubling: {growth:.2f}")
        assert growth < 3.0, "clause volume must stay near-linear"
