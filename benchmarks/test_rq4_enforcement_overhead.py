"""RQ4: policy-enforcement runtime overhead.

The paper measures the execution-time overhead of APE by running
ICC-heavy benchmark apps 33 times (the repetitions needed for a 95%
confidence interval) with and without enforcement, reporting
11.80% +- 1.76% -- and zero overhead on non-ICC calls, since only ICC APIs
are hooked.

We reproduce the protocol: an app that performs many ICC operations per
activation, timed over 33 repetitions bare vs. hooked (PEP + PDP with a
consenting user so the workload is identical), with a Student-t 95%
confidence interval on the overhead.  Expected shape: overhead is a
modest percentage confined to ICC calls; a non-ICC-bound workload shows
no measurable slowdown.

Beyond the paper's protocol, a sustained-throughput section replays the
``repro bench`` enforcement event stream through both PDP backends
(``linear`` reference scan vs ``compiled`` indexed dispatch) and asserts
the compiled backend wins on events/sec and p99 decision latency while
producing the identical audit summary -- the performance claim behind
making ``compiled`` the default.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.benchsuite.bench import make_enforcement_workload
from repro.core.policy import ECAPolicy, PolicyAction, PolicyEvent
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.enforcement import (
    AndroidRuntime,
    AuditLog,
    PolicyDecisionPoint,
    PolicyEnforcementPoint,
    make_pdp,
)

REPETITIONS = 33  # the paper's repetition count
ICC_OPS_PER_RUN = 40


def icc_heavy_apk() -> Apk:
    """An app whose activation fires a chain of startService calls."""
    pinger = MethodBuilder("onCreate", params=("p0",))
    for i in range(ICC_OPS_PER_RUN):
        pinger.new_instance("v0", "Intent")
        pinger.const_string("v1", "bench.PING")
        pinger.invoke("Intent.setAction", receiver="v0", args=("v1",))
        pinger.const_string("v2", f"k{i}")
        pinger.invoke("Intent.putExtra", receiver="v0", args=("v2", "v1"))
        pinger.invoke("Context.startService", args=("v0",))
    pinger.ret()
    ponger = (
        MethodBuilder("onStartCommand", params=("p0",))
        .const_string("v1", "k0")
        .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
        .ret()
        .build()
    )
    return Apk(
        Manifest(
            package="bench.icc",
            components=[
                ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True),
                ComponentDecl(
                    "Pong",
                    ComponentKind.SERVICE,
                    intent_filters=[IntentFilter.for_action("bench.PING")],
                ),
            ],
        ),
        DexProgram(
            [
                DexClass("Main", superclass="Activity", methods=[pinger.build()]),
                DexClass("Pong", superclass="Service", methods=[ponger]),
            ]
        ),
    )


def compute_heavy_apk() -> Apk:
    """An app dominated by non-ICC work (string ops, no ICC calls)."""
    worker = MethodBuilder("onCreate", params=("p0",))
    for i in range(8000):
        worker.const_string(f"v{i % 12}", f"work-item-{i}")
    worker.ret()
    return Apk(
        Manifest(
            package="bench.cpu",
            components=[
                ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True)
            ],
        ),
        DexProgram(
            [DexClass("Main", superclass="Activity", methods=[worker.build()])]
        ),
    )


def bench_policies():
    """Policies covering the benchmark traffic so the PDP actually works."""
    return [
        ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="service_launch",
            receiver="bench.icc/Pong",
            action=PolicyAction.PROMPT,
        )
    ]


def _timed_runs(make_runtime, component, reps=REPETITIONS):
    import time

    samples = []
    for _ in range(reps):
        runtime = make_runtime()
        start = time.perf_counter()
        runtime.start_component(component)
        samples.append(time.perf_counter() - start)
    return np.array(samples)


def _bare_runtime(apk):
    def make():
        rt = AndroidRuntime()
        rt.install(apk)
        return rt

    return make


def _protected_runtime(apk):
    def make():
        rt = AndroidRuntime()
        rt.install(apk)
        pdp = PolicyDecisionPoint(
            bench_policies(), prompt_callback=lambda p, e: True
        )
        PolicyEnforcementPoint(rt, pdp).install()
        return rt

    return make


@pytest.fixture(scope="module")
def overhead_stats():
    apk = icc_heavy_apk()
    bare = _timed_runs(_bare_runtime(apk), "bench.icc/Main")
    hooked = _timed_runs(_protected_runtime(apk), "bench.icc/Main")
    overheads = (hooked - bare.mean()) / bare.mean() * 100.0
    mean = overheads.mean()
    sem = scipy_stats.sem(overheads)
    half_width = sem * scipy_stats.t.ppf(0.975, len(overheads) - 1)
    return bare, hooked, mean, half_width


def test_rq4_report(overhead_stats):
    bare, hooked, mean, half_width = overhead_stats
    print()
    print("RQ4 -- enforcement overhead on ICC-heavy workload")
    print(f"  repetitions:       {REPETITIONS} (per configuration)")
    print(f"  ICC ops per run:   {ICC_OPS_PER_RUN}")
    print(f"  bare runtime:      {bare.mean() * 1000:.3f} ms/run")
    print(f"  enforced runtime:  {hooked.mean() * 1000:.3f} ms/run")
    print(f"  overhead:          {mean:.2f}% +- {half_width:.2f}% (95% CI)")
    print("  paper:             11.80% +- 1.76% (95% CI)")


class TestShape:
    def test_overhead_positive_but_modest(self, overhead_stats):
        """Enforcement costs something, but stays far from pathological
        (the paper's point: user experience is unaffected)."""
        _, _, mean, _ = overhead_stats
        assert mean > 0.0
        assert mean < 80.0

    def test_confidence_interval_tight(self, overhead_stats):
        _, _, mean, half_width = overhead_stats
        assert half_width < max(10.0, abs(mean))

    def test_non_icc_workload_unaffected(self):
        """Only ICC APIs are hooked: CPU-bound work pays nothing.

        Measured interleaved (bare/hooked alternating) and compared on
        medians to suppress scheduler/timer noise."""
        import time

        apk = compute_heavy_apk()
        make_bare = _bare_runtime(apk)
        make_hooked = _protected_runtime(apk)
        bare_samples, hooked_samples = [], []
        for _ in range(REPETITIONS):
            rt = make_bare()
            start = time.perf_counter()
            rt.start_component("bench.cpu/Main")
            bare_samples.append(time.perf_counter() - start)
            rt = make_hooked()
            start = time.perf_counter()
            rt.start_component("bench.cpu/Main")
            hooked_samples.append(time.perf_counter() - start)
        bare_median = float(np.median(bare_samples))
        hooked_median = float(np.median(hooked_samples))
        overhead = (hooked_median - bare_median) / bare_median * 100.0
        print(f"\n  non-ICC workload overhead (median): {overhead:.2f}%")
        assert abs(overhead) < 10.0

    def test_enforcement_semantics_preserved_under_benchmark(self):
        """The hooked run still delivers all Intents (consenting user)."""
        apk = icc_heavy_apk()
        rt = _protected_runtime(apk)()
        rt.start_component("bench.icc/Main")
        assert len(rt.effects_of_kind("icc_delivered")) == ICC_OPS_PER_RUN


# ----------------------------------------------------------------------
# Sustained throughput: compiled vs linear PDP backend


def _drive_backend(backend, policies, stream):
    import time

    pdp = make_pdp(
        policies,
        backend=backend,
        prompt_callback=lambda p, e: True,
        audit=AuditLog(window=2048, sample_default_allow=8),
    )
    latencies = []
    start = time.perf_counter()
    for kind, event in stream:
        t0 = time.perf_counter()
        pdp.decide(kind, event)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return pdp, elapsed, np.array(latencies)


@pytest.fixture(scope="module")
def throughput_runs():
    policies, stream = make_enforcement_workload(
        seed=2016, num_policies=192, num_events=12000
    )
    linear = _drive_backend("linear", policies, stream)
    compiled = _drive_backend("compiled", policies, stream)
    return policies, stream, linear, compiled


def test_sustained_throughput_report(throughput_runs):
    policies, stream, linear, compiled = throughput_runs
    lin_pdp, lin_s, lin_lat = linear
    cmp_pdp, cmp_s, cmp_lat = compiled
    lookups = cmp_pdp.cache_hits + cmp_pdp.cache_misses
    print()
    print("RQ4 extended -- sustained enforcement throughput")
    print(f"  policies / events: {len(policies)} / {len(stream)}")
    print(f"  linear:            {len(stream) / lin_s:,.0f} events/sec")
    print(f"  compiled:          {len(stream) / cmp_s:,.0f} events/sec")
    print(f"  speedup:           {lin_s / cmp_s:.2f}x")
    print(
        f"  p50/p99 linear:    {np.percentile(lin_lat, 50) * 1e6:.1f} / "
        f"{np.percentile(lin_lat, 99) * 1e6:.1f} us"
    )
    print(
        f"  p50/p99 compiled:  {np.percentile(cmp_lat, 50) * 1e6:.1f} / "
        f"{np.percentile(cmp_lat, 99) * 1e6:.1f} us"
    )
    print(f"  cache hit rate:    {cmp_pdp.cache_hits / lookups:.1%}")


class TestThroughputShape:
    def test_backends_audit_identical_on_bench_stream(self, throughput_runs):
        """The measured streams are comparable: same verdict totals."""
        _, _, (lin_pdp, _, _), (cmp_pdp, _, _) = throughput_runs
        assert lin_pdp.audit.summary() == cmp_pdp.audit.summary()

    def test_compiled_beats_linear_throughput(self, throughput_runs):
        _, stream, (_, lin_s, _), (_, cmp_s, _) = throughput_runs
        assert len(stream) / cmp_s > len(stream) / lin_s

    def test_compiled_beats_linear_p99(self, throughput_runs):
        _, _, (_, _, lin_lat), (_, _, cmp_lat) = throughput_runs
        assert np.percentile(cmp_lat, 99) < np.percentile(lin_lat, 99)

    def test_cache_carries_the_stream(self, throughput_runs):
        """The skewed shape pool must actually re-occur, or the cache
        measures nothing."""
        _, _, _, (cmp_pdp, _, _) = throughput_runs
        lookups = cmp_pdp.cache_hits + cmp_pdp.cache_misses
        assert cmp_pdp.cache_hits / lookups > 0.5


def test_benchmark_linear_decide(benchmark):
    policies, stream = make_enforcement_workload(
        seed=2016, num_policies=192, num_events=2000
    )
    pdp = make_pdp(
        policies,
        backend="linear",
        prompt_callback=lambda p, e: True,
        audit=AuditLog(window=2048, sample_default_allow=8),
    )

    def run():
        for kind, event in stream:
            pdp.decide(kind, event)

    benchmark(run)


def test_benchmark_compiled_decide(benchmark):
    policies, stream = make_enforcement_workload(
        seed=2016, num_policies=192, num_events=2000
    )
    pdp = make_pdp(
        policies,
        backend="compiled",
        prompt_callback=lambda p, e: True,
        audit=AuditLog(window=2048, sample_default_allow=8),
    )

    def run():
        for kind, event in stream:
            pdp.decide(kind, event)

    benchmark(run)


def test_benchmark_bare_icc(benchmark):
    apk = icc_heavy_apk()
    make = _bare_runtime(apk)

    def run():
        make().start_component("bench.icc/Main")

    benchmark(run)


def test_benchmark_enforced_icc(benchmark):
    apk = icc_heavy_apk()
    make = _protected_runtime(apk)

    def run():
        make().start_component("bench.icc/Main")

    benchmark(run)
