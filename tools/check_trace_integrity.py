#!/usr/bin/env python3
"""Verify the structural integrity of a JSONL span trace.

A healthy trace from `repro pipeline --trace` (or one `repro serve`
request) is a single causally-linked tree: every span carries the run's
trace id, every ``parent_id`` resolves to another span in the file --
including across process boundaries, where worker spans must attach
under the orchestrator's dispatch span -- and exactly one span (the
root) has no parent.

Checks, in order:

1. span ids are unique;
2. every non-null ``parent_id`` resolves to a span in the trace
   (no orphans);
3. the number of roots (spans with no parent) equals ``--expect-roots``
   (default 1);
4. every span carries a trace id, children inherit their parent's, and
   the file holds exactly as many distinct trace ids as roots;
5. no span is left open (begin without end) unless ``--allow-open``.

Exit status: 0 when the trace is intact, 1 otherwise (one line per
violation).  Importable from tests: ``check_trace(path)`` returns the
list of violation strings.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

# Allow running straight from a checkout without PYTHONPATH=src.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs import read_trace  # noqa: E402


def check_trace(
    path: str,
    expect_roots: int = 1,
    allow_open: bool = False,
) -> List[str]:
    """Return every integrity violation in the trace at ``path``."""
    records = read_trace(path)
    problems: List[str] = []
    if not records:
        return [f"{path}: no spans recorded"]

    by_id = {}
    for record in records:
        if record.span_id in by_id:
            problems.append(f"duplicate span id {record.span_id!r}")
        by_id[record.span_id] = record

    roots = [r for r in records if r.parent_id is None]
    for record in records:
        if record.parent_id is not None and record.parent_id not in by_id:
            problems.append(
                f"orphaned span {record.span_id!r} ({record.name}): "
                f"parent {record.parent_id!r} not in trace"
            )
    if len(roots) != expect_roots:
        names = ", ".join(f"{r.name} ({r.span_id})" for r in roots)
        problems.append(
            f"expected {expect_roots} root span(s), found {len(roots)}"
            + (f": {names}" if names else "")
        )

    missing = [r for r in records if not r.trace_id]
    if missing:
        names = sorted({r.name for r in missing})
        problems.append(
            f"{len(missing)} span(s) carry no trace id "
            f"(names: {', '.join(names)})"
        )
    for record in records:
        parent = by_id.get(record.parent_id) if record.parent_id else None
        if (
            parent is not None
            and record.trace_id
            and parent.trace_id
            and record.trace_id != parent.trace_id
        ):
            problems.append(
                f"span {record.span_id!r} ({record.name}) has trace id "
                f"{record.trace_id!r} but its parent has "
                f"{parent.trace_id!r}"
            )
    trace_ids = {r.trace_id for r in records if r.trace_id}
    if not missing and len(trace_ids) != expect_roots:
        problems.append(
            f"expected {expect_roots} distinct trace id(s), "
            f"found {len(trace_ids)}: {sorted(trace_ids)}"
        )

    if not allow_open:
        for record in records:
            if record.open:
                problems.append(
                    f"span {record.span_id!r} ({record.name}) never "
                    "completed (begin without end)"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Check that a JSONL span trace is one intact tree."
    )
    parser.add_argument("trace_file", help="JSONL trace file to check")
    parser.add_argument(
        "--expect-roots",
        type=int,
        default=1,
        help="required number of parentless spans (default: %(default)s)",
    )
    parser.add_argument(
        "--allow-open",
        action="store_true",
        help="tolerate unfinished spans (e.g. a killed worker)",
    )
    args = parser.parse_args(argv)
    try:
        problems = check_trace(
            args.trace_file,
            expect_roots=args.expect_roots,
            allow_open=args.allow_open,
        )
    except OSError as exc:
        print(f"check_trace_integrity: cannot read {args.trace_file}: {exc}")
        return 1
    for problem in problems:
        print(f"{args.trace_file}: {problem}")
    if problems:
        print(f"{len(problems)} integrity violation(s)")
        return 1
    records = read_trace(args.trace_file)
    trace_ids = sorted({r.trace_id for r in records if r.trace_id})
    print(
        f"{args.trace_file}: {len(records)} spans, "
        f"{len(trace_ids)} trace(s) {trace_ids}, tree intact"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
