#!/usr/bin/env python3
"""Check that relative markdown links resolve.

Scans the given markdown files (default: README.md, DESIGN.md,
EXPERIMENTS.md and docs/*.md) for inline links and verifies that every
relative target exists on disk, including `path#anchor` fragments against
the target file's headings.  External (http/https/mailto) links are not
fetched -- CI must not depend on network weather.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterable, List, Tuple

#: Inline links: [text](target) -- skipping images is unnecessary since
#: image targets must resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(path.read_text())}


def check_file(path: pathlib.Path) -> List[Tuple[str, str]]:
    """Return (link, reason) for every broken link in ``path``."""
    broken = []
    for match in LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                broken.append((target, "missing anchor"))
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append((target, "missing file"))
            continue
        if anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_of(resolved):
                broken.append((target, f"missing anchor in {file_part}"))
    return broken


def default_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        candidate = root / name
        if candidate.exists():
            yield candidate
    yield from sorted((root / "docs").glob("*.md"))


def main(argv: List[str]) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = [pathlib.Path(a) for a in argv] or list(default_files(root))
    failures = 0
    for path in files:
        for link, reason in check_file(path):
            print(f"{path}: broken link {link!r} ({reason})")
            failures += 1
    def display(path: pathlib.Path) -> str:
        try:
            return str(path.relative_to(root))
        except ValueError:
            return str(path)

    checked = ", ".join(display(p) for p in files)
    print(f"checked {len(files)} files ({checked}): {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
