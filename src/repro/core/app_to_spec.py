"""Embedding extracted app models into the relational engine (Listing 4).

Each app element -- application, component, Intent filter, path, Intent --
becomes a singleton signature whose fields are *pinned into the bounds*
(the Kodkod partial-instance optimization): the facts AME extracted are not
up for debate, so they cost the SAT solver nothing.  Only the postulated
malicious elements added by a vulnerability signature remain free.

:class:`BundleSpec` owns one framework spec plus the embedded bundle and
provides the lookups vulnerability signatures and the policy deriver need.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.android.components import ComponentKind
from repro.android.resources import Resource
from repro.core.framework_spec import (
    AndroidFrameworkSpec,
    action_atom,
    category_atom,
    data_scheme_atom,
    data_type_atom,
    permission_atom,
    resource_atom,
)
from repro.core.model import BundleModel, IntentModel
from repro.relational.instance import Instance
from repro.relational.sigs import Sig


class BundleSpec:
    """The framework meta-model plus one bundle's app modules."""

    def __init__(self, bundle: BundleModel) -> None:
        self.bundle = bundle
        self.fw = AndroidFrameworkSpec()
        self.module = self.fw.module
        self.component_sigs: Dict[str, Sig] = {}
        self.intent_sigs: Dict[str, Sig] = {}
        self.app_sigs: Dict[str, Sig] = {}
        self._action_sigs: Dict[str, Sig] = {}
        self._category_sigs: Dict[str, Sig] = {}
        self._type_sigs: Dict[str, Sig] = {}
        self._scheme_sigs: Dict[str, Sig] = {}
        self._perm_sigs: Dict[str, Sig] = {}
        self._embed()

    # ------------------------------------------------------------------
    # Vocabulary
    # ------------------------------------------------------------------
    def _vocab_sig(self, store: Dict[str, Sig], atom: str, parent: Sig) -> Sig:
        sig = store.get(atom)
        if sig is None:
            sig = self.module.one_sig(atom, extends=parent)
            store[atom] = sig
        return sig

    def _action(self, value: str) -> str:
        self._vocab_sig(self._action_sigs, action_atom(value), self.fw.action)
        return action_atom(value)

    def _category(self, value: str) -> str:
        self._vocab_sig(self._category_sigs, category_atom(value), self.fw.category)
        return category_atom(value)

    def _data_type(self, value: str) -> str:
        self._vocab_sig(self._type_sigs, data_type_atom(value), self.fw.data_type)
        return data_type_atom(value)

    def _data_scheme(self, value: str) -> str:
        self._vocab_sig(self._scheme_sigs, data_scheme_atom(value), self.fw.data_scheme)
        return data_scheme_atom(value)

    def _permission(self, value: str) -> str:
        self._vocab_sig(self._perm_sigs, permission_atom(value), self.fw.permission)
        return permission_atom(value)

    # ------------------------------------------------------------------
    def _embed(self) -> None:
        m = self.module
        fw = self.fw
        component_names = {c.name for c in self.bundle.all_components()}

        for app in self.bundle.apps:
            app_sig = m.one_sig(app.package, extends=fw.application)
            self.app_sigs[app.package] = app_sig
            m.pin(
                fw.app_permissions,
                app_sig,
                [self._permission(p) for p in sorted(app.uses_permissions)],
            )

        # Device holds exactly the bundle's apps; the postulated malicious
        # app (a free Application atom) is definitionally not installed.
        m.pin(fw.dev_apps, fw.device, sorted(self.app_sigs))

        kind_sig = {
            ComponentKind.ACTIVITY: fw.activity,
            ComponentKind.SERVICE: fw.service,
            ComponentKind.RECEIVER: fw.receiver,
            ComponentKind.PROVIDER: fw.provider,
        }

        for app in self.bundle.apps:
            for comp in app.components:
                cmp_sig = m.one_sig(comp.name, extends=kind_sig[comp.kind])
                self.component_sigs[comp.name] = cmp_sig
                m.pin(fw.cmp_app, cmp_sig, [app.package])
                fw.exported.pin(comp.name, comp.exported)
                m.pin(
                    fw.cmp_permissions,
                    cmp_sig,
                    [self._permission(p) for p in sorted(comp.permissions)],
                )
                m.pin(
                    fw.cmp_exposed,
                    cmp_sig,
                    [self._permission(p) for p in sorted(comp.uses_permissions)],
                )
                # Intent filters.
                filter_atoms = []
                for fi, filt in enumerate(comp.intent_filters):
                    f_sig = m.one_sig(f"{comp.name}#f{fi}", extends=fw.intent_filter)
                    m.pin(
                        fw.flt_actions,
                        f_sig,
                        [self._action(a) for a in sorted(filt.actions)],
                    )
                    m.pin(
                        fw.flt_categories,
                        f_sig,
                        [self._category(c) for c in sorted(filt.categories)],
                    )
                    m.pin(
                        fw.flt_data_types,
                        f_sig,
                        [self._data_type(t) for t in sorted(filt.data_types)],
                    )
                    m.pin(
                        fw.flt_data_schemes,
                        f_sig,
                        [self._data_scheme(s) for s in sorted(filt.data_schemes)],
                    )
                    fw.dynamic_filters.pin(f"{comp.name}#f{fi}", filt.dynamic)
                    filter_atoms.append(f"{comp.name}#f{fi}")
                m.pin(fw.cmp_filters, cmp_sig, filter_atoms)
                # Paths.
                path_atoms = []
                for pi, path in enumerate(comp.paths):
                    p_sig = m.one_sig(f"{comp.name}#p{pi}", extends=fw.path)
                    m.pin(fw.path_source, p_sig, [resource_atom(path.source)])
                    m.pin(fw.path_sink, p_sig, [resource_atom(path.sink)])
                    path_atoms.append(f"{comp.name}#p{pi}")
                m.pin(fw.cmp_paths, cmp_sig, path_atoms)

        for app in self.bundle.apps:
            for intent in app.intents:
                self._embed_intent(intent, component_names)

    def _embed_intent(self, intent: IntentModel, component_names: Set[str]) -> None:
        m = self.module
        fw = self.fw
        if intent.sender not in component_names:
            return  # sender component absent from the bundle model
        i_sig = m.one_sig(intent.entity_id, extends=fw.intent)
        self.intent_sigs[intent.entity_id] = i_sig
        m.pin(fw.int_sender, i_sig, [intent.sender])
        receiver: List[str] = []
        if intent.target is not None and intent.target in component_names:
            receiver = [intent.target]
        elif intent.passive and len(intent.passive_targets) == 1:
            (target,) = intent.passive_targets
            if target in component_names:
                receiver = [target]
        m.pin(fw.int_receiver, i_sig, receiver)
        m.pin(
            fw.int_action,
            i_sig,
            [self._action(intent.action)] if intent.action else [],
        )
        m.pin(
            fw.int_categories,
            i_sig,
            [self._category(c) for c in sorted(intent.categories)],
        )
        m.pin(
            fw.int_data_type,
            i_sig,
            [self._data_type(intent.data_type)] if intent.data_type else [],
        )
        m.pin(
            fw.int_data_scheme,
            i_sig,
            [self._data_scheme(intent.data_scheme)] if intent.data_scheme else [],
        )
        m.pin(
            fw.int_extra,
            i_sig,
            [resource_atom(r) for r in sorted(intent.extras, key=lambda r: r.value)],
        )

    # ------------------------------------------------------------------
    # Reading scenarios back out
    # ------------------------------------------------------------------
    def intent_attributes(self, instance: Instance, intent_atom: str) -> Dict:
        """Decode one Intent atom's attributes from a solved instance."""
        fw = self.fw

        def values(field) -> List[str]:
            return sorted(
                t[1] for t in instance.tuples(field.relation) if t[0] == intent_atom
            )

        def strip(prefix: str, atoms: List[str]) -> List[str]:
            return [a[len(prefix):] for a in atoms]

        extras = [
            Resource(a[len("res:"):]) for a in values(fw.int_extra)
        ]
        senders = values(fw.int_sender)
        receivers = values(fw.int_receiver)
        return {
            "sender": senders[0] if senders else None,
            "receiver": receivers[0] if receivers else None,
            "action": (strip("action:", values(fw.int_action)) or [None])[0],
            "categories": frozenset(strip("cat:", values(fw.int_categories))),
            "data_type": (strip("type:", values(fw.int_data_type)) or [None])[0],
            "data_scheme": (strip("scheme:", values(fw.int_data_scheme)) or [None])[0],
            "extras": frozenset(extras),
        }

    def filter_attributes(self, instance: Instance, filter_atom: str) -> Dict:
        fw = self.fw

        def values(field) -> List[str]:
            return sorted(
                t[1] for t in instance.tuples(field.relation) if t[0] == filter_atom
            )

        return {
            "actions": frozenset(a[len("action:"):] for a in values(fw.flt_actions)),
            "categories": frozenset(
                c[len("cat:"):] for c in values(fw.flt_categories)
            ),
            "data_types": frozenset(
                t[len("type:"):] for t in values(fw.flt_data_types)
            ),
            "data_schemes": frozenset(
                s[len("scheme:"):] for s in values(fw.flt_data_schemes)
            ),
        }

    def matching_bundle_receivers(self, intent: IntentModel) -> List[str]:
        """Bundle components whose declared filters match an implicit Intent
        (used to compute the allow-list of hijack policies)."""
        from repro.android.intents import Intent as RtIntent, filter_matches
        from repro.android.intents import IntentFilter as RtFilter

        rt_intent = RtIntent(
            sender=intent.sender,
            action=intent.action,
            categories=intent.categories,
            data_type=intent.data_type,
            data_scheme=intent.data_scheme,
        )
        matches = []
        for comp in self.bundle.all_components():
            same_app = comp.app == intent.sender.split("/", 1)[0]
            if not comp.exported and not same_app:
                continue
            for filt in comp.intent_filters:
                rt_filter = RtFilter(
                    actions=frozenset(filt.actions),
                    categories=frozenset(filt.categories),
                    data_types=frozenset(filt.data_types),
                    data_schemes=frozenset(filt.data_schemes),
                )
                if filter_matches(rt_intent, rt_filter):
                    matches.append(comp.name)
                    break
        return matches
