"""The bundle's ICC delivery, call, relay, and provider-access graphs.

Shared between the concrete detector and the formal signatures:

- :func:`deliverable` -- may this Intent reach this component, under the
  framework's addressing rules (explicit target, passive result channel,
  or implicit filter matching with the export discipline)?
- :func:`call_edges` -- every ICC call edge: (c1, c2) when some Intent of
  c1 can reach c2 at all.  Re-delegation chains of arbitrary length are
  walks in this graph (the permission-redelegation signature takes its
  transitive closure).
- :func:`relay_edges` -- the *forwarding* edges: (c1, c2) when c1 relays
  its ICC input onward (it has an ICC -> ICC path) inside an Intent that
  reaches c2.  Transitive leaks -- the paper's OwnCloud finding flows
  through "a chain of Intent message passing" -- are walks in this graph.
- :func:`provider_write_edges` / :func:`provider_read_edges` -- the
  ContentResolver access edges: (accessor, provider) pairs under the
  authority-addressing and export disciplines, write edges restricted to
  operations whose payload carries sensitive (non-ICC source) data.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.android.components import ComponentKind
from repro.android.intents import Intent as RtIntent
from repro.android.intents import IntentFilter as RtFilter
from repro.android.intents import filter_matches
from repro.android.resources import Resource, SOURCES
from repro.core.model import BundleModel, ComponentModel, IntentModel


def deliverable(
    intent: IntentModel, sender: ComponentModel, receiver: ComponentModel
) -> bool:
    """Framework addressing: can ``intent`` reach ``receiver``?"""
    same_app = sender.app == receiver.app
    if not receiver.exported and not same_app:
        return False
    if intent.passive:
        return receiver.name in intent.passive_targets
    if intent.explicit:
        return intent.target == receiver.name
    rt_intent = RtIntent(
        sender=intent.sender,
        action=intent.action,
        categories=intent.categories,
        data_type=intent.data_type,
        data_scheme=intent.data_scheme,
    )
    for filt in receiver.intent_filters:
        if not filt.actions:
            continue
        rt_filter = RtFilter(
            actions=frozenset(filt.actions),
            categories=frozenset(filt.categories),
            data_types=frozenset(filt.data_types),
            data_schemes=frozenset(filt.data_schemes),
        )
        if filter_matches(rt_intent, rt_filter):
            return True
    return False


def call_edges(bundle: BundleModel) -> Set[Tuple[str, str]]:
    """All ICC call edges: (c1, c2) when any Intent of c1 reaches c2.

    Unlike :func:`relay_edges` there is no payload or data-flow
    requirement -- an edge records mere control transfer.  Permission
    re-delegation chains of length k are k-step walks here."""
    components = bundle.all_components()
    by_name = {c.name: c for c in components}
    edges: Set[Tuple[str, str]] = set()
    for intent in bundle.all_intents():
        sender = by_name.get(intent.sender)
        if sender is None:
            continue
        for receiver in components:
            if receiver.name == sender.name:
                continue
            if deliverable(intent, sender, receiver):
                edges.add((sender.name, receiver.name))
    return edges


def _provider_targets(
    bundle: BundleModel, authority, sender: ComponentModel
) -> List[ComponentModel]:
    """Providers a resolver operation may address: the authority must be
    compatible (an unresolved authority matches any) and the provider must
    be exported or co-located with the accessor's app."""
    targets = []
    for comp in bundle.all_components():
        if comp.kind is not ComponentKind.PROVIDER:
            continue
        if comp.authority is not None and authority not in (None, comp.authority):
            continue
        if not comp.exported and comp.app != sender.app:
            continue
        targets.append(comp)
    return targets


def provider_write_edges(bundle: BundleModel) -> Set[Tuple[str, str]]:
    """(accessor, provider) edges over insert/update operations whose
    payload carries sensitive (non-ICC source) data."""
    by_name = {c.name: c for c in bundle.all_components()}
    sensitive = SOURCES - {Resource.ICC}
    edges: Set[Tuple[str, str]] = set()
    for app in bundle.apps:
        for access in app.provider_accesses:
            if access.operation not in ("insert", "update"):
                continue
            if not (access.payload & sensitive):
                continue
            sender = by_name.get(access.sender)
            if sender is None:
                continue
            for provider in _provider_targets(bundle, access.authority, sender):
                edges.add((access.sender, provider.name))
    return edges


def provider_read_edges(bundle: BundleModel) -> Set[Tuple[str, str]]:
    """(accessor, provider) edges over query operations (the result comes
    back from the provider's protection domain)."""
    by_name = {c.name: c for c in bundle.all_components()}
    edges: Set[Tuple[str, str]] = set()
    for app in bundle.apps:
        for access in app.provider_accesses:
            if access.operation != "query":
                continue
            sender = by_name.get(access.sender)
            if sender is None:
                continue
            for provider in _provider_targets(bundle, access.authority, sender):
                edges.add((access.sender, provider.name))
    return edges


def relay_edges(bundle: BundleModel) -> Set[Tuple[str, str]]:
    """Forwarding edges: c1 has an ICC -> ICC path and sends an
    ICC-carrying Intent that reaches c2."""
    components = bundle.all_components()
    by_name = {c.name: c for c in components}
    edges: Set[Tuple[str, str]] = set()
    for intent in bundle.all_intents():
        if Resource.ICC not in intent.extras:
            continue
        sender = by_name.get(intent.sender)
        if sender is None:
            continue
        if not any(
            p.source is Resource.ICC and p.sink is Resource.ICC
            for p in sender.paths
        ):
            continue
        for receiver in components:
            if receiver.name == sender.name:
                continue
            if deliverable(intent, sender, receiver):
                edges.add((sender.name, receiver.name))
    return edges


def transitive_receivers(
    bundle: BundleModel, first_hops: Set[str]
) -> Set[str]:
    """All components reachable from ``first_hops`` over relay edges
    (reflexively: the first hops themselves are included)."""
    edges = relay_edges(bundle)
    adjacency: Dict[str, Set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
    seen = set(first_hops)
    stack = list(first_hops)
    while stack:
        node = stack.pop()
        for succ in adjacency.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen
