"""The bundle's ICC delivery and relay graph.

Shared between the concrete detector and the formal leak signature:

- :func:`deliverable` -- may this Intent reach this component, under the
  framework's addressing rules (explicit target, passive result channel,
  or implicit filter matching with the export discipline)?
- :func:`relay_edges` -- the *forwarding* edges: (c1, c2) when c1 relays
  its ICC input onward (it has an ICC -> ICC path) inside an Intent that
  reaches c2.  Transitive leaks -- the paper's OwnCloud finding flows
  through "a chain of Intent message passing" -- are walks in this graph.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.android.intents import Intent as RtIntent
from repro.android.intents import IntentFilter as RtFilter
from repro.android.intents import filter_matches
from repro.android.resources import Resource
from repro.core.model import BundleModel, ComponentModel, IntentModel


def deliverable(
    intent: IntentModel, sender: ComponentModel, receiver: ComponentModel
) -> bool:
    """Framework addressing: can ``intent`` reach ``receiver``?"""
    same_app = sender.app == receiver.app
    if not receiver.exported and not same_app:
        return False
    if intent.passive:
        return receiver.name in intent.passive_targets
    if intent.explicit:
        return intent.target == receiver.name
    rt_intent = RtIntent(
        sender=intent.sender,
        action=intent.action,
        categories=intent.categories,
        data_type=intent.data_type,
        data_scheme=intent.data_scheme,
    )
    for filt in receiver.intent_filters:
        if not filt.actions:
            continue
        rt_filter = RtFilter(
            actions=frozenset(filt.actions),
            categories=frozenset(filt.categories),
            data_types=frozenset(filt.data_types),
            data_schemes=frozenset(filt.data_schemes),
        )
        if filter_matches(rt_intent, rt_filter):
            return True
    return False


def relay_edges(bundle: BundleModel) -> Set[Tuple[str, str]]:
    """Forwarding edges: c1 has an ICC -> ICC path and sends an
    ICC-carrying Intent that reaches c2."""
    components = bundle.all_components()
    by_name = {c.name: c for c in components}
    edges: Set[Tuple[str, str]] = set()
    for intent in bundle.all_intents():
        if Resource.ICC not in intent.extras:
            continue
        sender = by_name.get(intent.sender)
        if sender is None:
            continue
        if not any(
            p.source is Resource.ICC and p.sink is Resource.ICC
            for p in sender.paths
        ):
            continue
        for receiver in components:
            if receiver.name == sender.name:
                continue
            if deliverable(intent, sender, receiver):
                edges.add((sender.name, receiver.name))
    return edges


def transitive_receivers(
    bundle: BundleModel, first_hops: Set[str]
) -> Set[str]:
    """All components reachable from ``first_hops`` over relay edges
    (reflexively: the first hops themselves are included)."""
    edges = relay_edges(bundle)
    adjacency: Dict[str, Set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
    seen = set(first_hops)
    stack = list(first_hops)
    while stack:
        node = stack.pop()
        for succ in adjacency.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen
