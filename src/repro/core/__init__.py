"""SEPAR's core: model, formal specs, synthesis, and policy derivation.

The pipeline (paper Figure 2):

1. :mod:`repro.statics` (AME) turns APKs into :class:`~repro.core.model.AppModel`
   architectural specifications.
2. :mod:`repro.core.framework_spec` + :mod:`repro.core.app_to_spec` embed the
   Android meta-model (Listing 3) and the extracted app models (Listing 4)
   into the relational logic engine.
3. :mod:`repro.core.vulnerabilities` contributes pluggable vulnerability
   signatures (Listing 5): Intent hijack, Activity/Service launch,
   privilege escalation, information leakage.
4. :mod:`repro.core.synthesis` (ASE) solves for minimal exploit scenarios.
5. :mod:`repro.core.policy` derives event-condition-action policies from
   each scenario; :mod:`repro.enforcement` applies them at runtime.

:class:`repro.core.separ.Separ` is the user-facing facade.
"""

from repro.core.model import (
    AppModel,
    BundleModel,
    ComponentModel,
    IntentFilterModel,
    IntentModel,
    PathModel,
)

__all__ = [
    "AppModel",
    "BundleModel",
    "ComponentModel",
    "IntentFilterModel",
    "IntentModel",
    "PathModel",
    "Separ",
    "SeparReport",
]


def __getattr__(name):
    # Lazy: the facade pulls in the whole synthesis stack.
    if name in ("Separ", "SeparReport"):
        from repro.core import separ

        return getattr(separ, name)
    raise AttributeError(name)
