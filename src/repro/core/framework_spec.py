"""The formal Android framework meta-model (the paper's Listing 3).

Declares, over the relational engine, the signatures and fields every app
module relies on -- Component (abstract, with the four kinds as extension
sigs), Application, Intent, IntentFilter, Action/Category/DataType/
DataScheme, Permission, Resource (with source/sink subset classification),
Path, and the Device -- together with the framework facts:

- ``IFandComponent``: each IntentFilter belongs to exactly one Component;
- ``NoIFforProviders``: Content Providers declare no IntentFilters;
- ``PathAndComponent``: each Path belongs to exactly one Component;
- delivery: an Intent's receiver must be exported or co-located with the
  sender's app.

It also provides the Intent/IntentFilter *matching* predicate used by the
vulnerability signatures (action, category, and data tests, as in implicit
resolution).
"""

from __future__ import annotations

from typing import Dict

from repro.android.resources import Resource, SINKS, SOURCES
from repro.relational import ast as rast
from repro.relational.sigs import Module, Sig


def resource_atom(resource: Resource) -> str:
    return f"res:{resource.value}"


def action_atom(action: str) -> str:
    return f"action:{action}"


def category_atom(category: str) -> str:
    return f"cat:{category}"


def data_type_atom(data_type: str) -> str:
    return f"type:{data_type}"


def data_scheme_atom(scheme: str) -> str:
    return f"scheme:{scheme}"


def permission_atom(permission: str) -> str:
    return f"perm:{permission}"


class AndroidFrameworkSpec:
    """Owns the Module populated with the meta-model."""

    def __init__(self) -> None:
        m = Module()
        self.module = m

        # --- signatures -------------------------------------------------
        self.component = m.sig("Component", abstract=True)
        self.activity = m.sig("Activity", extends=self.component)
        self.service = m.sig("Service", extends=self.component)
        self.receiver = m.sig("Receiver", extends=self.component)
        self.provider = m.sig("Provider", extends=self.component)
        self.application = m.sig("Application")
        self.intent = m.sig("Intent")
        self.intent_filter = m.sig("IntentFilter")
        self.action = m.sig("Action")
        self.category = m.sig("Category")
        self.data_type = m.sig("DataType")
        self.data_scheme = m.sig("DataScheme")
        self.permission = m.sig("Permission")
        self.resource = m.sig("Resource", abstract=True)
        self.path = m.sig("Path")
        self.device = m.one_sig("Device")

        # Fixed resource atoms with source/sink classification.
        self.exported = m.subset_sig("Exported", self.component)
        # Filters registered in code (registerReceiver) rather than the
        # manifest: the dynamically-registered-receiver hijack signature
        # quantifies over this classification.  Membership is pinned per
        # extracted filter atom by the bundle embedding.
        self.dynamic_filters = m.subset_sig("DynamicFilter", self.intent_filter)
        self.source_resources = m.subset_sig("SourceResource", self.resource)
        self.sink_resources = m.subset_sig("SinkResource", self.resource)
        self._resource_sigs: Dict[Resource, Sig] = {}
        for res in Resource:
            sig = m.one_sig(resource_atom(res), extends=self.resource)
            self._resource_sigs[res] = sig
            self.source_resources.pin(resource_atom(res), res in SOURCES)
            self.sink_resources.pin(resource_atom(res), res in SINKS)

        # --- fields (Listing 3) ------------------------------------------
        self.cmp_app = m.field(self.component, "app", self.application, "one")
        self.cmp_filters = m.field(
            self.component, "intentFilters", self.intent_filter, "set"
        )
        self.cmp_permissions = m.field(
            self.component, "permissions", self.permission, "set"
        )
        self.cmp_paths = m.field(self.component, "paths", self.path, "set")
        self.cmp_exposed = m.field(
            self.component, "exposedPermissions", self.permission, "set"
        )
        self.flt_actions = m.field(
            self.intent_filter, "actions", self.action, "some"
        )
        self.flt_categories = m.field(
            self.intent_filter, "categories", self.category, "set"
        )
        self.flt_data_types = m.field(
            self.intent_filter, "dataType", self.data_type, "set"
        )
        self.flt_data_schemes = m.field(
            self.intent_filter, "dataScheme", self.data_scheme, "set"
        )
        self.int_sender = m.field(self.intent, "sender", self.component, "one")
        self.int_receiver = m.field(self.intent, "receiver", self.component, "lone")
        self.int_action = m.field(self.intent, "action", self.action, "lone")
        self.int_categories = m.field(
            self.intent, "categories", self.category, "set"
        )
        self.int_data_type = m.field(self.intent, "dataType", self.data_type, "lone")
        self.int_data_scheme = m.field(
            self.intent, "dataScheme", self.data_scheme, "lone"
        )
        self.int_extra = m.field(self.intent, "extra", self.resource, "set")
        self.path_source = m.field(self.path, "source", self.resource, "one")
        self.path_sink = m.field(self.path, "sink", self.resource, "one")
        self.app_permissions = m.field(
            self.application, "usesPermissions", self.permission, "set"
        )
        self.dev_apps = m.field(self.device, "apps", self.application, "set")

        self._declare_facts()

    # ------------------------------------------------------------------
    def _declare_facts(self) -> None:
        m = self.module
        f = rast.Variable("f")
        # fact IFandComponent: every filter belongs to exactly one component.
        m.fact(
            rast.all_(
                f,
                self.intent_filter.expr,
                rast.one(f.join(self.cmp_filters.expr.transpose())),
            )
        )
        # fact NoIFforProviders.
        m.fact(
            rast.no_(
                f,
                self.intent_filter.expr,
                f.join(self.cmp_filters.expr.transpose()).in_(self.provider.expr),
            )
        )
        # fact PathAndComponent: every path belongs to exactly one component.
        p = rast.Variable("p")
        m.fact(
            rast.all_(
                p,
                self.path.expr,
                rast.one(p.join(self.cmp_paths.expr.transpose())),
            )
        )
        # Delivery rule: a resolved receiver is exported or lives in the
        # sender's own application.
        i = rast.Variable("i")
        c = rast.Variable("c")
        m.fact(
            rast.all_(
                i,
                self.intent.expr,
                rast.all_(
                    c,
                    i.join(self.int_receiver.expr),
                    rast.some(c & self.exported.expr)
                    | c.join(self.cmp_app.expr).eq(
                        i.join(self.int_sender.expr).join(self.cmp_app.expr)
                    ),
                ),
            )
        )

    # ------------------------------------------------------------------
    # Helper predicates used by vulnerability signatures
    # ------------------------------------------------------------------
    def resource_expr(self, resource: Resource) -> rast.Expr:
        return self._resource_sigs[resource].expr

    def matches_filter(self, i: rast.Expr, f: rast.Expr) -> rast.Formula:
        """The implicit-resolution tests: the filter must cover the Intent's
        action, categories, and data attributes."""
        return (
            rast.some(i.join(self.int_action.expr))  # hijackable: has an action
            & i.join(self.int_action.expr).in_(f.join(self.flt_actions.expr))
            & i.join(self.int_categories.expr).in_(
                f.join(self.flt_categories.expr)
            )
            & i.join(self.int_data_type.expr).in_(f.join(self.flt_data_types.expr))
            & i.join(self.int_data_scheme.expr).in_(
                f.join(self.flt_data_schemes.expr)
            )
        )

    def on_device(self, cmp: rast.Expr) -> rast.Formula:
        """The component's application is installed on the device."""
        return cmp.join(self.cmp_app.expr).in_(
            self.device.expr.join(self.dev_apps.expr)
        )

    def different_apps(self, c1: rast.Expr, c2: rast.Expr) -> rast.Formula:
        return rast.no(c1.join(self.cmp_app.expr) & c2.join(self.cmp_app.expr))
