"""JSON (de)serialization of extracted app models.

SEPAR only needs the APK to *extract* a specification; everything after is
driven by the architectural model.  Persisting models lets a deployment
cache per-app extraction results (the expensive phase) and re-analyze
bundles as the installed set evolves without re-running static analysis --
the workflow behind the paper's incremental vision (Section IX).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.android.components import ComponentKind
from repro.android.resources import Resource
from repro.core.policy import ECAPolicy, PolicyAction, PolicyEvent
from repro.core.vulnerabilities.base import ExploitScenario
from repro.core.model import (
    AppModel,
    BundleModel,
    ComponentModel,
    IntentFilterModel,
    IntentModel,
    PathModel,
    ProviderAccessModel,
)

FORMAT_VERSION = 1


def _filter_to_dict(filt: IntentFilterModel) -> Dict[str, Any]:
    return {
        "actions": sorted(filt.actions),
        "categories": sorted(filt.categories),
        "data_types": sorted(filt.data_types),
        "data_schemes": sorted(filt.data_schemes),
        "dynamic": filt.dynamic,
    }


def _filter_from_dict(data: Dict[str, Any]) -> IntentFilterModel:
    return IntentFilterModel(
        actions=frozenset(data["actions"]),
        categories=frozenset(data["categories"]),
        data_types=frozenset(data["data_types"]),
        data_schemes=frozenset(data["data_schemes"]),
        dynamic=data.get("dynamic", False),
    )


def _component_to_dict(comp: ComponentModel) -> Dict[str, Any]:
    return {
        "name": comp.name,
        "kind": comp.kind.name,
        "app": comp.app,
        "exported": comp.exported,
        "intent_filters": [_filter_to_dict(f) for f in comp.intent_filters],
        "permissions": sorted(comp.permissions),
        "paths": [
            {"source": p.source.value, "sink": p.sink.value} for p in comp.paths
        ],
        "uses_permissions": sorted(comp.uses_permissions),
        "reachable": comp.reachable,
        "authority": comp.authority,
        "reads_extra_keys": sorted(comp.reads_extra_keys),
    }


def _component_from_dict(data: Dict[str, Any]) -> ComponentModel:
    return ComponentModel(
        name=data["name"],
        kind=ComponentKind[data["kind"]],
        app=data["app"],
        exported=data["exported"],
        intent_filters=tuple(
            _filter_from_dict(f) for f in data["intent_filters"]
        ),
        permissions=frozenset(data["permissions"]),
        paths=tuple(
            PathModel(Resource(p["source"]), Resource(p["sink"]))
            for p in data["paths"]
        ),
        uses_permissions=frozenset(data["uses_permissions"]),
        reachable=data.get("reachable", True),
        authority=data.get("authority"),
        reads_extra_keys=frozenset(data.get("reads_extra_keys", ())),
    )


def _intent_to_dict(intent: IntentModel) -> Dict[str, Any]:
    return {
        "entity_id": intent.entity_id,
        "sender": intent.sender,
        "target": intent.target,
        "action": intent.action,
        "categories": sorted(intent.categories),
        "data_type": intent.data_type,
        "data_scheme": intent.data_scheme,
        "extras": sorted(r.value for r in intent.extras),
        "extra_keys": sorted(intent.extra_keys),
        "wants_result": intent.wants_result,
        "passive": intent.passive,
        "passive_targets": sorted(intent.passive_targets),
        "addressed_kind": (
            intent.addressed_kind.name if intent.addressed_kind else None
        ),
    }


def _intent_from_dict(data: Dict[str, Any]) -> IntentModel:
    return IntentModel(
        entity_id=data["entity_id"],
        sender=data["sender"],
        target=data.get("target"),
        action=data.get("action"),
        categories=frozenset(data["categories"]),
        data_type=data.get("data_type"),
        data_scheme=data.get("data_scheme"),
        extras=frozenset(Resource(r) for r in data["extras"]),
        extra_keys=frozenset(data["extra_keys"]),
        wants_result=data.get("wants_result", False),
        passive=data.get("passive", False),
        passive_targets=frozenset(data.get("passive_targets", ())),
        addressed_kind=(
            ComponentKind[data["addressed_kind"]]
            if data.get("addressed_kind")
            else None
        ),
    )


def app_to_dict(app: AppModel) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "package": app.package,
        "uses_permissions": sorted(app.uses_permissions),
        "components": [_component_to_dict(c) for c in app.components],
        "intents": [_intent_to_dict(i) for i in app.intents],
        "provider_accesses": [
            {
                "sender": a.sender,
                "operation": a.operation,
                "authority": a.authority,
                "payload": sorted(r.value for r in a.payload),
            }
            for a in app.provider_accesses
        ],
        "extraction_seconds": app.extraction_seconds,
        "apk_size_kb": app.apk_size_kb,
        "repository": app.repository,
    }


def app_from_dict(data: Dict[str, Any]) -> AppModel:
    version = data.get("format_version", 0)
    if version > FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version}")
    return AppModel(
        package=data["package"],
        uses_permissions=frozenset(data["uses_permissions"]),
        components=[_component_from_dict(c) for c in data["components"]],
        intents=[_intent_from_dict(i) for i in data["intents"]],
        provider_accesses=[
            ProviderAccessModel(
                sender=a["sender"],
                operation=a["operation"],
                authority=a.get("authority"),
                payload=frozenset(Resource(r) for r in a["payload"]),
            )
            for a in data.get("provider_accesses", ())
        ],
        extraction_seconds=data.get("extraction_seconds", 0.0),
        apk_size_kb=data.get("apk_size_kb", 0),
        repository=data.get("repository", "unknown"),
    )


# ----------------------------------------------------------------------
# Synthesis outputs: scenarios, policies, detection reports.  These back
# the pipeline's persistent cache and the machine-readable findings files,
# so the round-trip must be lossless (policies derived from a deserialized
# scenario must equal policies derived from the original).

_ATTR_RESOURCE_KEYS = {"extras"}
_ATTR_SET_KEYS = {
    "extras", "categories", "actions", "data_types", "data_schemes",
}


def _attrs_to_dict(attrs: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    if attrs is None:
        return None
    out: Dict[str, Any] = {}
    for key in sorted(attrs):
        value = attrs[key]
        if key in _ATTR_RESOURCE_KEYS:
            out[key] = sorted(r.value for r in value)
        elif key in _ATTR_SET_KEYS:
            out[key] = sorted(value)
        else:
            out[key] = value
    return out


def _attrs_from_dict(data: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    if data is None:
        return None
    out: Dict[str, Any] = {}
    for key, value in data.items():
        if key in _ATTR_RESOURCE_KEYS:
            out[key] = frozenset(Resource(r) for r in value)
        elif key in _ATTR_SET_KEYS:
            out[key] = frozenset(value)
        else:
            out[key] = value
    return out


def scenario_to_dict(scenario: ExploitScenario) -> Dict[str, Any]:
    return {
        "vulnerability": scenario.vulnerability,
        "roles": {k: scenario.roles[k] for k in sorted(scenario.roles)},
        "intent": _attrs_to_dict(scenario.intent),
        "malicious_filter": _attrs_to_dict(scenario.malicious_filter),
        "description": scenario.description,
    }


def scenario_from_dict(data: Dict[str, Any]) -> ExploitScenario:
    return ExploitScenario(
        vulnerability=data["vulnerability"],
        roles=dict(data["roles"]),
        intent=_attrs_from_dict(data.get("intent")),
        malicious_filter=_attrs_from_dict(data.get("malicious_filter")),
        description=data.get("description", ""),
    )


def policy_to_dict(policy: ECAPolicy) -> Dict[str, Any]:
    return {
        "event": policy.event.value,
        "vulnerability": policy.vulnerability,
        "action": policy.action.value,
        "description": policy.description,
        "receiver": policy.receiver,
        "sender": policy.sender,
        "intent_action": policy.intent_action,
        "extras_any": sorted(r.value for r in policy.extras_any),
        "allowed_receivers": (
            sorted(policy.allowed_receivers)
            if policy.allowed_receivers is not None
            else None
        ),
        "sender_lacks_permission": policy.sender_lacks_permission,
    }


def policy_from_dict(data: Dict[str, Any]) -> ECAPolicy:
    allowed = data.get("allowed_receivers")
    return ECAPolicy(
        event=PolicyEvent(data["event"]),
        vulnerability=data["vulnerability"],
        action=PolicyAction(data["action"]),
        description=data.get("description", ""),
        receiver=data.get("receiver"),
        sender=data.get("sender"),
        intent_action=data.get("intent_action"),
        extras_any=frozenset(Resource(r) for r in data.get("extras_any", ())),
        allowed_receivers=frozenset(allowed) if allowed is not None else None,
        sender_lacks_permission=data.get("sender_lacks_permission"),
    )


def dumps_app(app: AppModel, indent: int = 2) -> str:
    return json.dumps(app_to_dict(app), indent=indent, sort_keys=True)


def loads_app(text: str) -> AppModel:
    return app_from_dict(json.loads(text))


def dumps_bundle(bundle: BundleModel, indent: int = 2) -> str:
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "apps": [app_to_dict(a) for a in bundle.apps],
        },
        indent=indent,
        sort_keys=True,
    )


def loads_bundle(text: str) -> BundleModel:
    data = json.loads(text)
    return BundleModel(apps=[app_from_dict(a) for a in data["apps"]])
