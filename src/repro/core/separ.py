"""The SEPAR facade: APKs in, scenarios + policies out.

Wires the full pipeline of Figure 2 -- AME model extraction, ASE formal
synthesis, policy derivation -- behind one call::

    report = Separ().analyze_apks(apks)
    report.scenarios        # synthesized exploit scenarios
    report.policies         # preventive ECA policies
    report.stats            # construction/solving timings (Table II)

The policies feed :class:`repro.enforcement.pep.PolicyEnforcementPoint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.android.apk import Apk
from repro.core.app_to_spec import BundleSpec
from repro.core.detector import DetectionReport, SeparDetector
from repro.core.model import BundleModel
from repro.core.policy import ECAPolicy, derive_policies
from repro.core.synthesis import (
    AnalysisAndSynthesisEngine,
    SynthesisResult,
    SynthesisStats,
)
from repro.core.vulnerabilities.base import ExploitScenario, VulnerabilitySignature
from repro.sat import DEFAULT_BACKEND
from repro.statics import extract_bundle


@dataclass
class SeparReport:
    bundle: BundleModel
    scenarios: List[ExploitScenario]
    policies: List[ECAPolicy]
    stats: SynthesisStats
    detection: DetectionReport

    def vulnerable_apps(self, vulnerability: Optional[str] = None) -> List[str]:
        apps = set()
        for scenario in self.scenarios:
            if vulnerability and scenario.vulnerability != vulnerability:
                continue
            if scenario.victim_app:
                apps.add(scenario.victim_app)
        return sorted(apps)

    def summary(self) -> str:
        grouped: Dict[str, int] = {}
        for scenario in self.scenarios:
            grouped[scenario.vulnerability] = (
                grouped.get(scenario.vulnerability, 0) + 1
            )
        lines = [
            f"bundle: {len(self.bundle.apps)} apps, "
            f"{len(self.bundle.all_components())} components"
        ]
        for name in sorted(grouped):
            lines.append(f"  {name}: {grouped[name]} scenario(s)")
        lines.append(f"  policies synthesized: {len(self.policies)}")
        return "\n".join(lines)


class Separ:
    """End-to-end SEPAR pipeline."""

    def __init__(
        self,
        signatures: Optional[Sequence[VulnerabilitySignature]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
        handle_dynamic_receivers: bool = False,
        shared_encoding: bool = True,
        solver_backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.engine = AnalysisAndSynthesisEngine(
            signatures=signatures,
            scenarios_per_signature=scenarios_per_signature,
            minimal=minimal,
            shared_encoding=shared_encoding,
            solver_backend=solver_backend,
        )
        self.handle_dynamic_receivers = handle_dynamic_receivers

    def analyze_apks(self, apks: Sequence[Apk]) -> SeparReport:
        bundle = extract_bundle(
            list(apks), handle_dynamic_receivers=self.handle_dynamic_receivers
        )
        return self.analyze_bundle(bundle)

    def analyze_bundle(self, bundle: BundleModel) -> SeparReport:
        result: SynthesisResult = self.engine.run(bundle)
        return self.assemble_report(bundle, result)

    @staticmethod
    def assemble_report(
        bundle: BundleModel, result: SynthesisResult
    ) -> SeparReport:
        """Policy derivation + detection over a precomputed synthesis.

        Split out so the parallel pipeline can fan synthesis out across
        (bundle, signature) pairs and still assemble the exact report
        `analyze_bundle` would have produced."""
        spec = BundleSpec(bundle)
        policies = derive_policies(result.scenarios, bundle, spec)
        detection = SeparDetector().detect(bundle)
        return SeparReport(
            bundle=bundle,
            scenarios=result.scenarios,
            policies=policies,
            stats=result.stats,
            detection=detection,
        )
