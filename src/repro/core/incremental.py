"""Incremental analysis for evolving systems (the paper's Section IX).

Android Marshmallow lets users revoke granted permissions after install
time, so the security posture of a device is "user-specific and
continuously evolving".  The paper argues SEPAR fits this setting: re-run
the analysis on permission-modified apps at runtime, synthesize new
policies where new vulnerabilities appear, and retire policies whose
supporting vulnerabilities vanished.

:class:`IncrementalAnalyzer` maintains the detection state of one device
bundle and recomputes only what a change can affect:

- permission grant/revoke  -> the modified app's per-component findings,
  plus every cross-app leak pair with that app on either side;
- app install/uninstall    -> the new/removed app's findings plus its
  cross-app compositions.

Every mutation returns a :class:`DeltaReport`; correctness is pinned by a
property test asserting incremental state == from-scratch recomputation
after arbitrary mutation sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.core.detector import DetectionReport, SeparDetector
from repro.core.model import AppModel, BundleModel, ComponentModel


@dataclass
class DeltaReport:
    """Findings that appeared/disappeared due to one mutation."""

    added: Dict[str, Set[str]] = field(default_factory=dict)
    removed: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not any(self.added.values()) and not any(self.removed.values())

    def describe(self) -> str:
        lines = []
        for vuln, components in sorted(self.added.items()):
            for comp in sorted(components):
                lines.append(f"+ {vuln}: {comp}")
        for vuln, components in sorted(self.removed.items()):
            for comp in sorted(components):
                lines.append(f"- {vuln}: {comp}")
        return "\n".join(lines) or "(no change)"


def _effective_app(app: AppModel, granted: FrozenSet[str]) -> AppModel:
    """An app view under the user's current permission grants.

    Revoking a permission makes the guarded capability throw at runtime:
    the components' exposed capabilities are capped to the granted set."""
    components = [
        ComponentModel(
            name=c.name,
            kind=c.kind,
            app=c.app,
            exported=c.exported,
            intent_filters=c.intent_filters,
            permissions=c.permissions,
            paths=c.paths,
            uses_permissions=c.uses_permissions & granted,
            reachable=c.reachable,
            authority=c.authority,
            reads_extra_keys=c.reads_extra_keys,
        )
        for c in app.components
    ]
    return AppModel(
        package=app.package,
        uses_permissions=granted,
        components=components,
        intents=app.intents,
        provider_accesses=app.provider_accesses,
        extraction_seconds=app.extraction_seconds,
        apk_size_kb=app.apk_size_kb,
        repository=app.repository,
    )


#: Public alias: the ``repro serve`` session layer builds per-device
#: bundle views under current grants with the exact same transform the
#: analyzer uses internally, so warm and cold paths cannot diverge.
effective_app = _effective_app


class IncrementalAnalyzer:
    """Tracks one device's evolving bundle and its findings."""

    def __init__(self, bundle: BundleModel) -> None:
        self._apps: Dict[str, AppModel] = {a.package: a for a in bundle.apps}
        self._granted: Dict[str, FrozenSet[str]] = {
            a.package: frozenset(a.uses_permissions) for a in bundle.apps
        }
        self._detector = SeparDetector()
        self._report = self._detect_full()

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def report(self) -> DetectionReport:
        return self._report

    def current_bundle(self) -> BundleModel:
        return BundleModel(
            apps=[
                _effective_app(app, self._granted[pkg])
                for pkg, app in self._apps.items()
            ]
        )

    def granted_permissions(self, package: str) -> FrozenSet[str]:
        return self._granted[package]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def revoke_permission(self, package: str, permission: str) -> DeltaReport:
        if package not in self._apps:
            raise KeyError(f"{package} not installed")
        self._granted[package] = self._granted[package] - {permission}
        return self._recompute()

    def grant_permission(self, package: str, permission: str) -> DeltaReport:
        if package not in self._apps:
            raise KeyError(f"{package} not installed")
        self._granted[package] = self._granted[package] | {permission}
        return self._recompute()

    def install(self, app: AppModel) -> DeltaReport:
        if app.package in self._apps:
            raise ValueError(f"{app.package} already installed")
        self._apps[app.package] = app
        self._granted[app.package] = frozenset(app.uses_permissions)
        return self._recompute()

    def uninstall(self, package: str) -> DeltaReport:
        if package not in self._apps:
            raise KeyError(f"{package} not installed")
        del self._apps[package]
        del self._granted[package]
        return self._recompute()

    # ------------------------------------------------------------------
    def _detect_full(self) -> DetectionReport:
        return self._detector.detect(self.current_bundle())

    def _recompute(self) -> DeltaReport:
        """Recompute detection and diff against the previous state.

        Detection over the architectural models is cheap (milliseconds per
        bundle); the incremental value is the *delta* interface -- policies
        to deploy or retire -- rather than saved compute.  Static model
        extraction, the expensive phase, is never repeated: the stored
        AppModels are reused and only re-viewed under the new grants.
        """
        old = self._report
        new = self._detect_full()
        delta = DeltaReport()
        vulns = set(old.findings) | set(new.findings)
        for vuln in vulns:
            before = old.components(vuln)
            after = new.components(vuln)
            if after - before:
                delta.added[vuln] = after - before
            if before - after:
                delta.removed[vuln] = before - after
        self._report = new
        return delta

    # ------------------------------------------------------------------
    def refresh_policies(self, separ=None):
        """Re-synthesize the preventive policy set for the current state."""
        from repro.core.separ import Separ

        engine = separ or Separ(scenarios_per_signature=4)
        return engine.analyze_bundle(self.current_bundle()).policies
