"""ASE: the analysis and synthesis engine (Section V).

Synthesis is the dual of verification: given the framework specification
S_f, the bundle's app specifications S_a, and a vulnerability property P,
find a model M with M |= S_f ∧ S_a ∧ P.  Each satisfying model is a
concrete exploit scenario; Aluminum-style minimization keeps scenarios
principled (no spurious tuples), and superset blocking enumerates distinct
minimal scenarios.

Statistics mirror Table II: per-run model-to-CNF construction time and SAT
solving time are recorded separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.app_to_spec import BundleSpec
from repro.core.model import BundleModel
from repro.core.vulnerabilities import default_signatures
from repro.core.vulnerabilities.base import ExploitScenario, VulnerabilitySignature
from repro.obs import get_metrics, get_tracer


@dataclass
class SynthesisStats:
    """Construction vs solving time, per signature and total (Table II).

    Solver counters (conflicts/decisions/propagations) are accumulated
    across every SAT call the signatures triggered, for the pipeline run
    report."""

    construction_seconds: float = 0.0
    solving_seconds: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solver_calls: int = 0
    per_signature: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def merge(self, other: "SynthesisStats") -> None:
        """Fold another stats block into this one (pipeline roll-up)."""
        self.construction_seconds += other.construction_seconds
        self.solving_seconds += other.solving_seconds
        self.num_vars += other.num_vars
        self.num_clauses += other.num_clauses
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.solver_calls += other.solver_calls
        self.per_signature.update(other.per_signature)

    def to_dict(self) -> Dict[str, object]:
        return {
            "construction_seconds": self.construction_seconds,
            "solving_seconds": self.solving_seconds,
            "num_vars": self.num_vars,
            "num_clauses": self.num_clauses,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "solver_calls": self.solver_calls,
            "per_signature": self.per_signature,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SynthesisStats":
        return SynthesisStats(
            construction_seconds=data.get("construction_seconds", 0.0),
            solving_seconds=data.get("solving_seconds", 0.0),
            num_vars=data.get("num_vars", 0),
            num_clauses=data.get("num_clauses", 0),
            conflicts=data.get("conflicts", 0),
            decisions=data.get("decisions", 0),
            propagations=data.get("propagations", 0),
            solver_calls=data.get("solver_calls", 0),
            per_signature=dict(data.get("per_signature", {})),
        )


@dataclass
class SynthesisResult:
    scenarios: List[ExploitScenario]
    stats: SynthesisStats

    def by_vulnerability(self) -> Dict[str, List[ExploitScenario]]:
        grouped: Dict[str, List[ExploitScenario]] = {}
        for scenario in self.scenarios:
            grouped.setdefault(scenario.vulnerability, []).append(scenario)
        return grouped

    def vulnerable_apps(self, vulnerability: Optional[str] = None) -> List[str]:
        apps = set()
        for scenario in self.scenarios:
            if vulnerability and scenario.vulnerability != vulnerability:
                continue
            if scenario.victim_app:
                apps.add(scenario.victim_app)
        return sorted(apps)


class AnalysisAndSynthesisEngine:
    """Runs every registered vulnerability signature against a bundle."""

    def __init__(
        self,
        signatures: Optional[Sequence[VulnerabilitySignature]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
    ) -> None:
        self.signatures = (
            list(signatures) if signatures is not None else default_signatures()
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal

    def run(self, bundle: BundleModel) -> SynthesisResult:
        stats = SynthesisStats()
        scenarios: List[ExploitScenario] = []
        for signature in self.signatures:
            result = self.run_signature(bundle, signature)
            scenarios.extend(result.scenarios)
            stats.merge(result.stats)
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def run_signature(
        self, bundle: BundleModel, signature: VulnerabilitySignature
    ) -> SynthesisResult:
        """Run a single signature against the bundle.

        The per-signature unit of work the parallel pipeline fans out:
        independent of every other signature (modules are mutated by
        instantiation, so each run builds a fresh embedding)."""
        tracer = get_tracer()
        stats = SynthesisStats()
        with tracer.span(
            "ase.signature",
            signature=signature.name,
            apps=len(bundle.apps),
        ):
            start = time.perf_counter()
            with tracer.span("ase.construct", signature=signature.name):
                spec = BundleSpec(bundle)
                instantiation = signature.instantiate(spec)
                problem = spec.module.solve_problem(
                    goal=instantiation.goal, extra=instantiation.extra_scopes
                )
            construction = time.perf_counter() - start
            solve_start = time.perf_counter()
            with tracer.span("ase.solve", signature=signature.name):
                found = self._enumerate(problem, instantiation)
            solving = time.perf_counter() - solve_start
            scenarios = [instantiation.decode(instance) for instance in found]
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ase.signature_runs").inc()
            metrics.counter("ase.scenarios").inc(len(found))
            metrics.histogram("ase.num_vars").observe(problem.stats.num_vars)
            metrics.histogram("ase.num_clauses").observe(
                problem.stats.num_clauses
            )
            metrics.histogram("ase.construction_seconds").observe(construction)
            metrics.histogram("ase.solving_seconds").observe(solving)
        stats.construction_seconds = construction
        stats.solving_seconds = solving
        stats.num_vars = problem.stats.num_vars
        stats.num_clauses = problem.stats.num_clauses
        stats.conflicts = problem.stats.conflicts
        stats.decisions = problem.stats.decisions
        stats.propagations = problem.stats.propagations
        stats.solver_calls = problem.stats.solver_calls
        stats.per_signature[signature.name] = {
            "construction_seconds": construction,
            "solving_seconds": solving,
            "scenarios": float(len(found)),
        }
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def _enumerate(self, problem, instantiation) -> List:
        """Diversity-driven enumeration: each scenario must re-bind at
        least one role field; without diversity fields, fall back to plain
        minimal/model enumeration."""
        if not instantiation.diversity_fields:
            source = (
                problem.minimal_solutions(limit=self.scenarios_per_signature)
                if self.minimal
                else problem.solutions(limit=self.scenarios_per_signature)
            )
            return list(source)
        found = []
        while len(found) < self.scenarios_per_signature:
            instance = (
                problem.minimal_solution() if self.minimal else problem.solve()
            )
            if instance is None:
                break
            found.append(instance)
            bindings = [
                (fld.relation, tup)
                for fld in instantiation.diversity_fields
                for tup in instance.tuples(fld.relation)
            ]
            if not problem.block(bindings):
                break
        return found
