"""ASE: the analysis and synthesis engine (Section V).

Synthesis is the dual of verification: given the framework specification
S_f, the bundle's app specifications S_a, and a vulnerability property P,
find a model M with M |= S_f ∧ S_a ∧ P.  Each satisfying model is a
concrete exploit scenario; Aluminum-style minimization keeps scenarios
principled (no spurious tuples), and superset blocking enumerates distinct
minimal scenarios.

Statistics mirror Table II: per-run model-to-CNF construction time and SAT
solving time are recorded separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.app_to_spec import BundleSpec
from repro.core.model import BundleModel
from repro.core.vulnerabilities import default_signatures
from repro.core.vulnerabilities.base import ExploitScenario, VulnerabilitySignature
from repro.obs import get_metrics, get_tracer
from repro.sat.solver import BudgetExhausted


@dataclass
class SynthesisStats:
    """Construction vs solving time, per signature and total (Table II).

    Solver counters (conflicts/decisions/propagations) are accumulated
    across every SAT call the signatures triggered, for the pipeline run
    report.  ``exhausted`` marks a run that hit its conflict or wall-clock
    budget and stopped early: the scenario list is a prefix of what an
    unbounded run would have found."""

    construction_seconds: float = 0.0
    solving_seconds: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solver_calls: int = 0
    exhausted: bool = False
    per_signature: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def merge(self, other: "SynthesisStats") -> None:
        """Fold another stats block into this one (pipeline roll-up)."""
        self.construction_seconds += other.construction_seconds
        self.solving_seconds += other.solving_seconds
        self.num_vars += other.num_vars
        self.num_clauses += other.num_clauses
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.solver_calls += other.solver_calls
        self.exhausted = self.exhausted or other.exhausted
        # Sum numeric fields per key: a signature appearing in both blocks
        # (repeated runs, re-merged stats) must accumulate, not clobber.
        for name, values in other.per_signature.items():
            mine = self.per_signature.setdefault(name, {})
            for key, value in values.items():
                mine[key] = mine.get(key, 0.0) + value

    def to_dict(self) -> Dict[str, object]:
        return {
            "construction_seconds": self.construction_seconds,
            "solving_seconds": self.solving_seconds,
            "num_vars": self.num_vars,
            "num_clauses": self.num_clauses,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "solver_calls": self.solver_calls,
            "exhausted": self.exhausted,
            "per_signature": self.per_signature,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SynthesisStats":
        return SynthesisStats(
            construction_seconds=data.get("construction_seconds", 0.0),
            solving_seconds=data.get("solving_seconds", 0.0),
            num_vars=data.get("num_vars", 0),
            num_clauses=data.get("num_clauses", 0),
            conflicts=data.get("conflicts", 0),
            decisions=data.get("decisions", 0),
            propagations=data.get("propagations", 0),
            solver_calls=data.get("solver_calls", 0),
            exhausted=bool(data.get("exhausted", False)),
            per_signature={
                name: dict(values)
                for name, values in dict(
                    data.get("per_signature", {})
                ).items()
            },
        )


@dataclass
class SynthesisResult:
    scenarios: List[ExploitScenario]
    stats: SynthesisStats

    def by_vulnerability(self) -> Dict[str, List[ExploitScenario]]:
        grouped: Dict[str, List[ExploitScenario]] = {}
        for scenario in self.scenarios:
            grouped.setdefault(scenario.vulnerability, []).append(scenario)
        return grouped

    def vulnerable_apps(self, vulnerability: Optional[str] = None) -> List[str]:
        apps = set()
        for scenario in self.scenarios:
            if vulnerability and scenario.vulnerability != vulnerability:
                continue
            if scenario.victim_app:
                apps.add(scenario.victim_app)
        return sorted(apps)


class AnalysisAndSynthesisEngine:
    """Runs every registered vulnerability signature against a bundle.

    ``conflict_budget`` caps the total CDCL conflicts each signature run
    may spend; ``time_budget_seconds`` caps its wall clock (checked
    between solver calls -- a single call is bounded by the conflict
    budget, not preempted).  When either budget runs out the run
    *degrades* instead of failing: the scenarios found so far are
    returned and ``stats.exhausted`` is set, so pathological bundles and
    SAT blow-ups yield partial results rather than sinking the pipeline.
    """

    def __init__(
        self,
        signatures: Optional[Sequence[VulnerabilitySignature]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
        conflict_budget: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
    ) -> None:
        self.signatures = (
            list(signatures) if signatures is not None else default_signatures()
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal
        self.conflict_budget = conflict_budget
        self.time_budget_seconds = time_budget_seconds

    def run(self, bundle: BundleModel) -> SynthesisResult:
        stats = SynthesisStats()
        scenarios: List[ExploitScenario] = []
        for signature in self.signatures:
            result = self.run_signature(bundle, signature)
            scenarios.extend(result.scenarios)
            stats.merge(result.stats)
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def run_signature(
        self, bundle: BundleModel, signature: VulnerabilitySignature
    ) -> SynthesisResult:
        """Run a single signature against the bundle.

        The per-signature unit of work the parallel pipeline fans out:
        independent of every other signature (modules are mutated by
        instantiation, so each run builds a fresh embedding)."""
        tracer = get_tracer()
        stats = SynthesisStats()
        with tracer.span(
            "ase.signature",
            signature=signature.name,
            apps=len(bundle.apps),
        ):
            start = time.perf_counter()
            deadline = (
                start + self.time_budget_seconds
                if self.time_budget_seconds is not None
                else None
            )
            with tracer.span("ase.construct", signature=signature.name):
                spec = BundleSpec(bundle)
                instantiation = signature.instantiate(spec)
                problem = spec.module.solve_problem(
                    goal=instantiation.goal, extra=instantiation.extra_scopes
                )
            if self.conflict_budget is not None:
                problem.conflict_budget = self.conflict_budget
            construction = time.perf_counter() - start
            solve_start = time.perf_counter()
            with tracer.span("ase.solve", signature=signature.name):
                found, exhausted = self._enumerate(
                    problem, instantiation, deadline=deadline
                )
            solving = time.perf_counter() - solve_start
            scenarios = [instantiation.decode(instance) for instance in found]
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ase.signature_runs").inc()
            metrics.counter("ase.scenarios").inc(len(found))
            if exhausted:
                metrics.counter("ase.budget_exhausted").inc()
            metrics.histogram("ase.num_vars").observe(problem.stats.num_vars)
            metrics.histogram("ase.num_clauses").observe(
                problem.stats.num_clauses
            )
            metrics.histogram("ase.construction_seconds").observe(construction)
            metrics.histogram("ase.solving_seconds").observe(solving)
        stats.construction_seconds = construction
        stats.solving_seconds = solving
        stats.num_vars = problem.stats.num_vars
        stats.num_clauses = problem.stats.num_clauses
        stats.conflicts = problem.stats.conflicts
        stats.decisions = problem.stats.decisions
        stats.propagations = problem.stats.propagations
        stats.solver_calls = problem.stats.solver_calls
        stats.exhausted = exhausted
        stats.per_signature[signature.name] = {
            "construction_seconds": construction,
            "solving_seconds": solving,
            "scenarios": float(len(found)),
        }
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def _enumerate(
        self, problem, instantiation, deadline: Optional[float] = None
    ) -> Tuple[List, bool]:
        """Diversity-driven enumeration: each scenario must re-bind at
        least one role field; without diversity fields, fall back to plain
        minimal/model enumeration.

        Returns ``(instances, exhausted)``: enumeration stops early --
        with whatever was found so far -- when the problem's conflict
        budget runs out (:class:`BudgetExhausted` from any solver call) or
        the wall-clock ``deadline`` passes between solver calls.
        """
        found: List = []

        def out_of_time() -> bool:
            return deadline is not None and time.perf_counter() >= deadline

        try:
            if not instantiation.diversity_fields:
                source = (
                    problem.minimal_solutions(
                        limit=self.scenarios_per_signature
                    )
                    if self.minimal
                    else problem.solutions(limit=self.scenarios_per_signature)
                )
                for instance in source:
                    found.append(instance)
                    if (
                        out_of_time()
                        and len(found) < self.scenarios_per_signature
                    ):
                        return found, True
                return found, False
            while len(found) < self.scenarios_per_signature:
                if out_of_time():
                    return found, True
                instance = (
                    problem.minimal_solution()
                    if self.minimal
                    else problem.solve()
                )
                if instance is None:
                    break
                found.append(instance)
                bindings = [
                    (fld.relation, tup)
                    for fld in instantiation.diversity_fields
                    for tup in instance.tuples(fld.relation)
                ]
                if not problem.block(bindings):
                    break
        except BudgetExhausted:
            return found, True
        return found, False
