"""ASE: the analysis and synthesis engine (Section V).

Synthesis is the dual of verification: given the framework specification
S_f, the bundle's app specifications S_a, and a vulnerability property P,
find a model M with M |= S_f ∧ S_a ∧ P.  Each satisfying model is a
concrete exploit scenario; Aluminum-style minimization keeps scenarios
principled (no spurious tuples), and superset blocking enumerates distinct
minimal scenarios.

Statistics mirror Table II: per-run model-to-CNF construction time and SAT
solving time are recorded separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.app_to_spec import BundleSpec
from repro.core.model import BundleModel
from repro.core.vulnerabilities import default_signatures
from repro.core.vulnerabilities.base import ExploitScenario, VulnerabilitySignature


@dataclass
class SynthesisStats:
    """Construction vs solving time, per signature and total (Table II)."""

    construction_seconds: float = 0.0
    solving_seconds: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    per_signature: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class SynthesisResult:
    scenarios: List[ExploitScenario]
    stats: SynthesisStats

    def by_vulnerability(self) -> Dict[str, List[ExploitScenario]]:
        grouped: Dict[str, List[ExploitScenario]] = {}
        for scenario in self.scenarios:
            grouped.setdefault(scenario.vulnerability, []).append(scenario)
        return grouped

    def vulnerable_apps(self, vulnerability: Optional[str] = None) -> List[str]:
        apps = set()
        for scenario in self.scenarios:
            if vulnerability and scenario.vulnerability != vulnerability:
                continue
            if scenario.victim_app:
                apps.add(scenario.victim_app)
        return sorted(apps)


class AnalysisAndSynthesisEngine:
    """Runs every registered vulnerability signature against a bundle."""

    def __init__(
        self,
        signatures: Optional[Sequence[VulnerabilitySignature]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
    ) -> None:
        self.signatures = (
            list(signatures) if signatures is not None else default_signatures()
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal

    def run(self, bundle: BundleModel) -> SynthesisResult:
        stats = SynthesisStats()
        scenarios: List[ExploitScenario] = []
        for signature in self.signatures:
            start = time.perf_counter()
            # Modules are mutated by instantiation: build a fresh embedding
            # per signature.
            spec = BundleSpec(bundle)
            instantiation = signature.instantiate(spec)
            problem = spec.module.solve_problem(
                goal=instantiation.goal, extra=instantiation.extra_scopes
            )
            construction = time.perf_counter() - start
            solve_start = time.perf_counter()
            found = self._enumerate(problem, instantiation)
            solving = time.perf_counter() - solve_start
            for instance in found:
                scenarios.append(instantiation.decode(instance))
            stats.construction_seconds += construction
            stats.solving_seconds += solving
            stats.num_vars += problem.stats.num_vars
            stats.num_clauses += problem.stats.num_clauses
            stats.per_signature[signature.name] = {
                "construction_seconds": construction,
                "solving_seconds": solving,
                "scenarios": float(len(found)),
            }
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def _enumerate(self, problem, instantiation) -> List:
        """Diversity-driven enumeration: each scenario must re-bind at
        least one role field; without diversity fields, fall back to plain
        minimal/model enumeration."""
        if not instantiation.diversity_fields:
            source = (
                problem.minimal_solutions(limit=self.scenarios_per_signature)
                if self.minimal
                else problem.solutions(limit=self.scenarios_per_signature)
            )
            return list(source)
        found = []
        while len(found) < self.scenarios_per_signature:
            instance = (
                problem.minimal_solution() if self.minimal else problem.solve()
            )
            if instance is None:
                break
            found.append(instance)
            bindings = [
                (fld.relation, tup)
                for fld in instantiation.diversity_fields
                for tup in instance.tuples(fld.relation)
            ]
            if not problem.block(bindings):
                break
        return found
