"""ASE: the analysis and synthesis engine (Section V).

Synthesis is the dual of verification: given the framework specification
S_f, the bundle's app specifications S_a, and a vulnerability property P,
find a model M with M |= S_f ∧ S_a ∧ P.  Each satisfying model is a
concrete exploit scenario; Aluminum-style minimization keeps scenarios
principled (no spurious tuples), and superset blocking enumerates distinct
minimal scenarios.

Statistics mirror Table II: per-run model-to-CNF construction time and SAT
solving time are recorded separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.app_to_spec import BundleSpec
from repro.core.model import BundleModel
from repro.core.vulnerabilities import default_signatures
from repro.core.vulnerabilities.base import ExploitScenario, VulnerabilitySignature
from repro.obs import get_metrics, get_tracer
from repro.relational import ast as rast
from repro.relational.problem import RelationalProblem
from repro.relational.sigs import Module, Sig
from repro.sat import DEFAULT_BACKEND
from repro.sat.solver import BudgetExhausted


@dataclass
class SynthesisStats:
    """Construction vs solving time, per signature and total (Table II).

    Solver counters (conflicts/decisions/propagations) are accumulated
    across every SAT call the signatures triggered, for the pipeline run
    report.  ``exhausted`` marks a run that hit its conflict or wall-clock
    budget and stopped early: the scenario list is a prefix of what an
    unbounded run would have found.

    The reuse counters quantify shared-encoding savings: ``translations``
    counts relational-to-CNF translations actually performed,
    ``translations_avoided`` the per-signature translations a shared run
    skipped, ``clauses_shared`` the already-present clauses each warm query
    reused instead of re-adding, and ``learned_carried`` the learned
    clauses alive in the solver when each subsequent signature started."""

    construction_seconds: float = 0.0
    solving_seconds: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solver_calls: int = 0
    translations: int = 0
    translations_avoided: int = 0
    clauses_shared: int = 0
    learned_carried: int = 0
    exhausted: bool = False
    # Which solver backend produced these numbers ("reference"/"fast");
    # "mixed" after merging blocks from different backends, "" when
    # unknown (stats deserialized from an older cache entry).
    backend: str = ""
    per_signature: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def merge(self, other: "SynthesisStats") -> None:
        """Fold another stats block into this one (pipeline roll-up)."""
        self.construction_seconds += other.construction_seconds
        self.solving_seconds += other.solving_seconds
        self.num_vars += other.num_vars
        self.num_clauses += other.num_clauses
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.solver_calls += other.solver_calls
        self.translations += other.translations
        self.translations_avoided += other.translations_avoided
        self.clauses_shared += other.clauses_shared
        self.learned_carried += other.learned_carried
        self.exhausted = self.exhausted or other.exhausted
        if not self.backend:
            self.backend = other.backend
        elif other.backend and other.backend != self.backend:
            self.backend = "mixed"
        # Sum numeric fields per key: a signature appearing in both blocks
        # (repeated runs, re-merged stats) must accumulate, not clobber.
        for name, values in other.per_signature.items():
            mine = self.per_signature.setdefault(name, {})
            for key, value in values.items():
                mine[key] = mine.get(key, 0.0) + value

    def to_dict(self) -> Dict[str, object]:
        return {
            "construction_seconds": self.construction_seconds,
            "solving_seconds": self.solving_seconds,
            "num_vars": self.num_vars,
            "num_clauses": self.num_clauses,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "solver_calls": self.solver_calls,
            "translations": self.translations,
            "translations_avoided": self.translations_avoided,
            "clauses_shared": self.clauses_shared,
            "learned_carried": self.learned_carried,
            "exhausted": self.exhausted,
            "backend": self.backend,
            "per_signature": self.per_signature,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SynthesisStats":
        return SynthesisStats(
            construction_seconds=data.get("construction_seconds", 0.0),
            solving_seconds=data.get("solving_seconds", 0.0),
            num_vars=data.get("num_vars", 0),
            num_clauses=data.get("num_clauses", 0),
            conflicts=data.get("conflicts", 0),
            decisions=data.get("decisions", 0),
            propagations=data.get("propagations", 0),
            solver_calls=data.get("solver_calls", 0),
            translations=data.get("translations", 0),
            translations_avoided=data.get("translations_avoided", 0),
            clauses_shared=data.get("clauses_shared", 0),
            learned_carried=data.get("learned_carried", 0),
            exhausted=bool(data.get("exhausted", False)),
            backend=str(data.get("backend", "")),
            per_signature={
                name: dict(values)
                for name, values in dict(
                    data.get("per_signature", {})
                ).items()
            },
        )


@dataclass
class SynthesisResult:
    scenarios: List[ExploitScenario]
    stats: SynthesisStats

    def by_vulnerability(self) -> Dict[str, List[ExploitScenario]]:
        grouped: Dict[str, List[ExploitScenario]] = {}
        for scenario in self.scenarios:
            grouped.setdefault(scenario.vulnerability, []).append(scenario)
        return grouped

    def vulnerable_apps(self, vulnerability: Optional[str] = None) -> List[str]:
        apps = set()
        for scenario in self.scenarios:
            if vulnerability and scenario.vulnerability != vulnerability:
                continue
            if scenario.victim_app:
                apps.add(scenario.victim_app)
        return sorted(apps)


class AnalysisAndSynthesisEngine:
    """Runs every registered vulnerability signature against a bundle.

    ``conflict_budget`` caps the total CDCL conflicts each signature run
    may spend; ``time_budget_seconds`` caps its wall clock (checked
    between solver calls -- a single call is bounded by the conflict
    budget, not preempted).  When either budget runs out the run
    *degrades* instead of failing: the scenarios found so far are
    returned and ``stats.exhausted`` is set, so pathological bundles and
    SAT blow-ups yield partial results rather than sinking the pipeline.

    ``shared_encoding`` (the default) translates the framework + bundle
    base once per bundle and runs every signature as an assumption-gated
    query against one persistent solver; per-signature mode re-encodes
    per signature.  Both modes produce identical scenarios (minimization
    is canonical), differing only in where the work happens.
    """

    def __init__(
        self,
        signatures: Optional[Sequence[VulnerabilitySignature]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
        conflict_budget: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
        shared_encoding: bool = True,
        solver_backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.signatures = (
            list(signatures) if signatures is not None else default_signatures()
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal
        self.conflict_budget = conflict_budget
        self.time_budget_seconds = time_budget_seconds
        self.shared_encoding = shared_encoding
        # Pure wall-clock knob: backends are verified byte-identical on
        # scenarios, so this never participates in cache keys.
        self.solver_backend = solver_backend
        #: The shared-encoding :class:`RelationalProblem` of the most
        #: recent :meth:`run_shared` call, kept addressable so a resident
        #: caller (the ``repro serve`` session) can keep the solver --
        #: learned clauses, saved trail, phase state -- warm between
        #: requests and report its size as telemetry.  ``None`` until the
        #: first shared run; per-signature runs leave it untouched.
        self.last_problem: Optional[RelationalProblem] = None

    def run(self, bundle: BundleModel) -> SynthesisResult:
        if self.shared_encoding:
            return self.run_shared(bundle)
        stats = SynthesisStats()
        scenarios: List[ExploitScenario] = []
        for signature in self.signatures:
            result = self.run_signature(bundle, signature)
            scenarios.extend(result.scenarios)
            stats.merge(result.stats)
        return SynthesisResult(scenarios=scenarios, stats=stats)

    # ------------------------------------------------------------------
    # Shared-encoding mode
    # ------------------------------------------------------------------
    def run_shared(self, bundle: BundleModel) -> SynthesisResult:
        """Run every signature against one shared, selector-gated problem.

        The framework spec and bundle embedding are built and translated
        once; each signature's goal, signature-field multiplicities, and
        any facts it declares are attached under a fresh selector literal
        (:meth:`RelationalProblem.add_gated_formula`).  Anonymous-atom
        scopes are merged across signatures and their sig membership is
        left free in the bounds; under each signature's selector, its own
        scoped atoms are forced in and every tuple mentioning a foreign
        scoped atom is forced out -- restoring exactly the per-signature
        bounds.  Enumeration then runs per signature under assumptions
        ``[own selector, -other selectors]`` on the one warm solver, with
        diversity/superset blocking clauses gated by the active selector
        so they stay inert for the signatures that follow.
        """
        tracer = get_tracer()
        stats = SynthesisStats()
        scenarios: List[ExploitScenario] = []
        with tracer.span(
            "ase.bundle",
            apps=len(bundle.apps),
            signatures=len(self.signatures),
        ):
            start = time.perf_counter()
            with tracer.span("ase.construct", shared=True):
                spec = BundleSpec(bundle)
                problem, groups, selectors, base_clauses = self._build_shared(
                    spec
                )
            construction = time.perf_counter() - start
            solve_start = time.perf_counter()
            exhausted_any = False
            for index, ((signature, inst), selector) in enumerate(
                zip(groups, selectors)
            ):
                sig_start = time.perf_counter()
                deadline = (
                    sig_start + self.time_budget_seconds
                    if self.time_budget_seconds is not None
                    else None
                )
                if self.conflict_budget is not None:
                    # A fresh per-signature window over the cumulative cap.
                    problem.conflict_budget = (
                        problem.stats.conflicts + self.conflict_budget
                    )
                if index > 0:
                    stats.clauses_shared += base_clauses
                    stats.learned_carried += problem.num_learnt
                    # Phases saved from the previous signature's models
                    # bias this signature's witnesses toward them,
                    # inflating the minimization walk; polarity resets to
                    # prefer-false, learned clauses stay.
                    problem.reset_phases()
                # Deactivated selectors first, in reversed allocation
                # order, the active one last: consecutive signatures then
                # share an assumption prefix of still-deactivated
                # selectors, so a trail-saving backend keeps their
                # field-row clamp propagations seated across the switch
                # instead of replaying them.  Canonical minimization
                # makes the enumerated scenarios independent of
                # assumption order, so this is a pure solver-work
                # optimization.
                assumptions = [
                    -other
                    for other in reversed(selectors)
                    if other != selector
                ] + [selector]
                with tracer.span("ase.solve", signature=signature.name):
                    found, exhausted = self._enumerate(
                        problem,
                        inst,
                        deadline=deadline,
                        assumptions=assumptions,
                        gate=selector,
                    )
                scenarios.extend(inst.decode(instance) for instance in found)
                exhausted_any = exhausted_any or exhausted
                stats.per_signature[signature.name] = {
                    "construction_seconds": 0.0,
                    "solving_seconds": time.perf_counter() - sig_start,
                    "scenarios": float(len(found)),
                    "exhausted": float(exhausted),
                }
            solving = time.perf_counter() - solve_start
        stats.construction_seconds = construction
        stats.solving_seconds = solving
        stats.num_vars = problem.stats.num_vars
        stats.num_clauses = problem.stats.num_clauses
        stats.conflicts = problem.stats.conflicts
        stats.decisions = problem.stats.decisions
        stats.propagations = problem.stats.propagations
        stats.solver_calls = problem.stats.solver_calls
        stats.translations = 1
        stats.translations_avoided = max(0, len(groups) - 1)
        stats.exhausted = exhausted_any
        stats.backend = self.solver_backend
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"ase.backend.{self.solver_backend}").inc()
            metrics.counter("ase.signature_runs").inc(len(groups))
            metrics.counter("ase.scenarios").inc(len(scenarios))
            metrics.counter("ase.translations").inc(stats.translations)
            metrics.counter("ase.translations_avoided").inc(
                stats.translations_avoided
            )
            metrics.counter("ase.clauses_shared").inc(stats.clauses_shared)
            metrics.counter("ase.learned_carried").inc(stats.learned_carried)
            if exhausted_any:
                metrics.counter("ase.budget_exhausted").inc()
            metrics.histogram("ase.num_vars").observe(stats.num_vars)
            metrics.histogram("ase.num_clauses").observe(stats.num_clauses)
            metrics.histogram("ase.construction_seconds").observe(construction)
            metrics.histogram("ase.solving_seconds").observe(solving)
        self.last_problem = problem
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def _build_shared(self, spec: BundleSpec):
        """Instantiate every signature into one module and gate each one.

        Returns ``(problem, [(signature, instantiation)], selectors,
        base_clauses)`` where ``base_clauses`` is the clause count of the
        shared base translation (the clauses each warm query reuses).
        """
        module = spec.module
        merged_scopes: Dict[Sig, int] = {}
        groups: List[Tuple[VulnerabilitySignature, object]] = []
        own_fields: List[List] = []
        own_facts: List[List[rast.Formula]] = []
        for signature in self.signatures:
            fields_before = len(module.fields)
            facts_before = len(module._facts)
            inst = signature.instantiate(spec)
            own_fields.append(list(module.fields[fields_before:]))
            # Plugin-declared facts belong to the signature's gated group,
            # not the shared base: pull them back out of the module.
            own_facts.append(list(module._facts[facts_before:]))
            del module._facts[facts_before:]
            for sig, count in inst.extra_scopes.items():
                merged_scopes[sig] = max(merged_scopes.get(sig, 0), count)
            groups.append((signature, inst))
        exclude = [fld for fields in own_fields for fld in fields]
        bounds, base = module.build(
            extra=merged_scopes, float_anon=True, exclude_fields=exclude
        )
        # Allocation only: the base is asserted after the groups, and
        # skipped entirely when every group folds to FALSE (a trivially
        # vulnerability-free bundle costs what per-signature mode pays).
        problem = RelationalProblem(
            bounds, rast.TRUE_F, backend=self.solver_backend
        )
        atom_home: Dict[object, Sig] = {}
        for sig in merged_scopes:
            for atom in module.anon_atoms_of(sig):
                atom_home[atom] = sig
        selectors: List[int] = []
        group_atoms: List[set] = []
        live: List[Tuple[int, List[Tuple]]] = []
        for (signature, inst), fields, facts in zip(
            groups, own_fields, own_facts
        ):
            parts: List[rast.Formula] = []
            for fld in fields:
                constraint = Module.field_constraint(fld)
                if constraint is not None:
                    parts.append(constraint)
            parts.extend(facts)
            parts.append(inst.goal)
            own_atoms: set = set()
            require: List[Tuple] = []
            for sig, count in inst.extra_scopes.items():
                for atom in module.anon_atoms_of(sig)[:count]:
                    own_atoms.add(atom)
                    require.append((sig.relation, (atom,)))
                    for ancestor in sig.ancestors():
                        require.append((ancestor.relation, (atom,)))
            # Rows touching another signature's anonymous atoms are
            # forced false whenever this group is the active one (owner
            # clamps + typing below), so the gated translation may fold
            # them to FALSE outright: the group then costs what a
            # standalone per-signature translation over its own universe
            # would.
            mask = [
                (relation, tup)
                for relation, tup in problem.primary_vars
                if any(
                    atom in atom_home and atom not in own_atoms
                    for atom in tup
                )
            ]
            selector = problem.add_gated_formula(
                rast.and_all(parts), mask=mask
            )
            selectors.append(selector)
            group_atoms.append(own_atoms)
            if selector in problem.dead_gates:
                continue  # (-selector) already forbids activating it
            # A group's field relations are referenced only by its own
            # gated translation (the base excludes them), so while the
            # group is switched off nothing constrains their rows.  Left
            # free, every warm query re-decides the whole deactivated
            # tail after the trail is unwound -- exactly the per-query
            # work the saved assumption prefix is meant to amortise.
            # Clamping each row false unless the owning selector is true
            # turns those decisions into propagations at the ``-sel``
            # assumption's own level, which the saved prefix keeps across
            # queries (and across active-signature switches, given the
            # canonical assumption order in :meth:`run_shared`).  Models
            # are unchanged: nothing can force a deactivated field row
            # true, so prefer-false minimization already pins them false.
            # Dead groups skip the clamp (via the ``continue`` above):
            # their gated translation folded away, so their rows are
            # referenced by nothing and stay false without help -- and a
            # trivially vulnerability-free bundle keeps its near-empty
            # CNF instead of paying thousands of clamp clauses.
            problem.add_absent_unless(
                selector,
                [
                    (relation, tup)
                    for relation, tup in problem.primary_vars
                    if relation in {fld.relation for fld in fields}
                ],
            )
            live.append((selector, require))
        # Anonymous-atom membership rows get the same owner-side clamp
        # as field rows: an atom exists only while a group scoping it is
        # active, so its sig-membership row is absent unless one of its
        # owning selectors is true.  Gating on the owners (rather than
        # forbidding foreign atoms under the *active* selector, as a
        # cold query would) anchors the membership rows -- and, through
        # the ungated typing clauses below, the whole cascade of
        # dependent base rows -- at the deactivated selectors' own
        # assumption levels.  Those levels sit below the active
        # selector's in the canonical assumption order, so re-seating
        # the active signature (after a blocking clause, or on a
        # signature switch) no longer replays the foreign-universe
        # propagation.
        # (Skipped entirely when every group folded away: with no base
        # and no live translation, nothing references the membership
        # rows and every query dies on its own dead gate.)
        if live:
            atom_owners: Dict[object, List[int]] = {}
            for selector, atoms in zip(selectors, group_atoms):
                for atom in atoms:
                    atom_owners.setdefault(atom, []).append(selector)
            for atom, sig in atom_home.items():
                problem.add_absent_unless(
                    atom_owners[atom], [(sig.relation, (atom,))]
                )
        base_clauses = 0
        if live:
            base_start = problem.stats.num_clauses
            problem.add_formula(base)
            base_clauses = problem.stats.num_clauses - base_start
            # Ungated typing: every base-referenced free row mentioning
            # an anonymous atom implies that atom's sig-membership row.
            # The owner clamps above only bind the handful of membership
            # rows; unit propagation zeroes every dependent row.  Rows
            # the base never mentions need no typing clause:
            # nothing can force them true (every group masks foreign
            # rows out of its own translation), so prefer-false
            # minimization pins them false unaided.
            referenced = problem.referenced_vars(start=base_start)
            dependents: Dict[Tuple, List[Tuple]] = {}
            for (relation, tup), var in problem.primary_vars.items():
                if var not in referenced:
                    continue
                for atom in tup:
                    sig = atom_home.get(atom)
                    if sig is not None:
                        member = (sig.relation, (atom,))
                        if (relation, tup) != member:
                            dependents.setdefault(member, []).append(
                                (relation, tup)
                            )
            for member, rows in dependents.items():
                problem.add_typing_tuples(member, rows)
            for selector, require in live:
                problem.add_gated_tuples(selector, require=require)
        return problem, groups, selectors, base_clauses

    def run_signature(
        self, bundle: BundleModel, signature: VulnerabilitySignature
    ) -> SynthesisResult:
        """Run a single signature against the bundle.

        The per-signature unit of work the parallel pipeline fans out:
        independent of every other signature (modules are mutated by
        instantiation, so each run builds a fresh embedding)."""
        tracer = get_tracer()
        stats = SynthesisStats()
        with tracer.span(
            "ase.signature",
            signature=signature.name,
            apps=len(bundle.apps),
        ):
            start = time.perf_counter()
            deadline = (
                start + self.time_budget_seconds
                if self.time_budget_seconds is not None
                else None
            )
            with tracer.span("ase.construct", signature=signature.name):
                spec = BundleSpec(bundle)
                instantiation = signature.instantiate(spec)
                problem = spec.module.solve_problem(
                    goal=instantiation.goal,
                    extra=instantiation.extra_scopes,
                    backend=self.solver_backend,
                )
            if self.conflict_budget is not None:
                problem.conflict_budget = self.conflict_budget
            construction = time.perf_counter() - start
            solve_start = time.perf_counter()
            with tracer.span("ase.solve", signature=signature.name):
                found, exhausted = self._enumerate(
                    problem, instantiation, deadline=deadline
                )
            solving = time.perf_counter() - solve_start
            scenarios = [instantiation.decode(instance) for instance in found]
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ase.signature_runs").inc()
            metrics.counter("ase.scenarios").inc(len(found))
            metrics.counter("ase.translations").inc()
            if exhausted:
                metrics.counter("ase.budget_exhausted").inc()
            metrics.histogram("ase.num_vars").observe(problem.stats.num_vars)
            metrics.histogram("ase.num_clauses").observe(
                problem.stats.num_clauses
            )
            metrics.histogram("ase.construction_seconds").observe(construction)
            metrics.histogram("ase.solving_seconds").observe(solving)
        stats.construction_seconds = construction
        stats.solving_seconds = solving
        stats.num_vars = problem.stats.num_vars
        stats.num_clauses = problem.stats.num_clauses
        stats.conflicts = problem.stats.conflicts
        stats.decisions = problem.stats.decisions
        stats.propagations = problem.stats.propagations
        stats.solver_calls = problem.stats.solver_calls
        stats.translations = 1
        stats.exhausted = exhausted
        stats.backend = self.solver_backend
        stats.per_signature[signature.name] = {
            "construction_seconds": construction,
            "solving_seconds": solving,
            "scenarios": float(len(found)),
            "exhausted": float(exhausted),
        }
        return SynthesisResult(scenarios=scenarios, stats=stats)

    def _enumerate(
        self,
        problem,
        instantiation,
        deadline: Optional[float] = None,
        assumptions: Sequence[int] = (),
        gate: Optional[int] = None,
    ) -> Tuple[List, bool]:
        """Diversity-driven enumeration: each scenario must re-bind at
        least one role field; without diversity fields, fall back to plain
        minimal/model enumeration.

        Returns ``(instances, exhausted)``: enumeration stops early --
        with whatever was found so far -- when the problem's conflict
        budget runs out (:class:`BudgetExhausted` from any solver call) or
        the wall-clock ``deadline`` passes between solver calls.
        """
        found: List = []

        def out_of_time() -> bool:
            return deadline is not None and time.perf_counter() >= deadline

        try:
            if not instantiation.diversity_fields:
                source = (
                    problem.minimal_solutions(
                        limit=self.scenarios_per_signature,
                        assumptions=assumptions,
                        gate=gate,
                    )
                    if self.minimal
                    else problem.solutions(
                        limit=self.scenarios_per_signature,
                        assumptions=assumptions,
                        gate=gate,
                    )
                )
                for instance in source:
                    found.append(instance)
                    if (
                        out_of_time()
                        and len(found) < self.scenarios_per_signature
                    ):
                        return found, True
                return found, False
            while len(found) < self.scenarios_per_signature:
                if out_of_time():
                    return found, True
                instance = (
                    problem.minimal_solution(assumptions=assumptions)
                    if self.minimal
                    else problem.solve(assumptions=assumptions)
                )
                if instance is None:
                    break
                found.append(instance)
                bindings = [
                    (fld.relation, tup)
                    for fld in instantiation.diversity_fields
                    for tup in instance.tuples(fld.relation)
                ]
                if not problem.block(bindings, gate=gate):
                    break
        except BudgetExhausted:
            return found, True
        return found, False
