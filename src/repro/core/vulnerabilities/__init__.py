"""Vulnerability signature registry (SEPAR's plugin extension point).

The first five built-in signatures match the paper's prototype: Activity/
Service launch, Intent hijack, privilege escalation, and information
leakage (Section III).  Four further axiomatized multi-step signatures
scale the threat model: permission re-delegation chains of arbitrary
length, content-provider read/write leakage, dynamically-registered
receiver hijack, and multi-app collusion.  ``register`` lets users
contribute additional signatures at any time; ``default_signatures``
instantiates the built-in set.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.core.vulnerabilities.collusion import CollusionSignature
from repro.core.vulnerabilities.dynamic_receiver import (
    DynamicReceiverHijackSignature,
)
from repro.core.vulnerabilities.escalation import PrivilegeEscalationSignature
from repro.core.vulnerabilities.hijack import IntentHijackSignature
from repro.core.vulnerabilities.launch import (
    ActivityLaunchSignature,
    ServiceLaunchSignature,
)
from repro.core.vulnerabilities.leak import InformationLeakSignature
from repro.core.vulnerabilities.provider_leak import ProviderLeakSignature
from repro.core.vulnerabilities.redelegation import (
    PermissionRedelegationSignature,
)

_REGISTRY: Dict[str, Type[VulnerabilitySignature]] = {}


def register(signature_cls: Type[VulnerabilitySignature]) -> Type[VulnerabilitySignature]:
    """Register a signature class (usable as a decorator)."""
    name = signature_cls.name
    if not name or name == "abstract":
        raise ValueError("signature classes must define a concrete name")
    if name in _REGISTRY and _REGISTRY[name] is not signature_cls:
        raise ValueError(f"a different signature named {name!r} is registered")
    _REGISTRY[name] = signature_cls
    return signature_cls


def registered() -> Dict[str, Type[VulnerabilitySignature]]:
    return dict(_REGISTRY)


def lookup(name: str) -> Type[VulnerabilitySignature]:
    return _REGISTRY[name]


def default_signatures() -> List[VulnerabilitySignature]:
    """Fresh instances of the built-in signature set (paper's five plus
    the four scaled multi-step signatures)."""
    return [
        IntentHijackSignature(),
        ActivityLaunchSignature(),
        ServiceLaunchSignature(),
        InformationLeakSignature(),
        PrivilegeEscalationSignature(),
        PermissionRedelegationSignature(),
        ProviderLeakSignature(),
        DynamicReceiverHijackSignature(),
        CollusionSignature(),
    ]


for _cls in (
    IntentHijackSignature,
    ActivityLaunchSignature,
    ServiceLaunchSignature,
    InformationLeakSignature,
    PrivilegeEscalationSignature,
    PermissionRedelegationSignature,
    ProviderLeakSignature,
    DynamicReceiverHijackSignature,
    CollusionSignature,
):
    register(_cls)

__all__ = [
    "ExploitScenario",
    "SignatureInstantiation",
    "VulnerabilitySignature",
    "IntentHijackSignature",
    "ActivityLaunchSignature",
    "ServiceLaunchSignature",
    "InformationLeakSignature",
    "PrivilegeEscalationSignature",
    "PermissionRedelegationSignature",
    "ProviderLeakSignature",
    "DynamicReceiverHijackSignature",
    "CollusionSignature",
    "register",
    "registered",
    "lookup",
    "default_signatures",
]
