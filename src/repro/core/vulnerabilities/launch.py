"""Activity/Service launch signatures (the paper's Listing 5).

A malicious component launches an exported victim component by sending it
an explicit Intent the victim is not expecting.  The victim has a data-flow
path rooted at its exported interface (``paths.source = ICC``), so the
launch can trigger unauthorized, permission-guarded work with
attacker-controlled payload.
"""

from __future__ import annotations


from repro.android.components import ComponentKind
from repro.android.resources import Resource
from repro.core.app_to_spec import BundleSpec
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.relational import ast as rast


class _LaunchSignature(VulnerabilitySignature):
    """Shared shape; subclasses fix the victim kind (Listing 5 is the
    Service variant; per the listing, the malicious component is an
    Activity)."""

    victim_kind: ComponentKind

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw
        victim_sig = {
            ComponentKind.SERVICE: fw.service,
            ComponentKind.ACTIVITY: fw.activity,
            ComponentKind.RECEIVER: fw.receiver,
        }[self.victim_kind]

        sig = m.one_sig(f"Generated{self.victim_kind.value}Launch")
        launched = m.field(sig, "launchedCmp", fw.component, "one")
        mal_cmp = m.field(sig, "malCmp", fw.component, "one")
        mal_intent = m.field(sig, "malIntent", fw.intent, "one")

        v = sig.expr
        launched_e = v.join(launched.expr)
        mal_e = v.join(mal_cmp.expr)
        intent_e = v.join(mal_intent.expr)
        icc = fw.resource_expr(Resource.ICC)

        goal = rast.and_all(
            [
                # disj launchedCmp, malCmp
                rast.no(launched_e & mal_e),
                # malIntent.sender = malCmp
                intent_e.join(fw.int_sender.expr).eq(mal_e),
                # launchedCmp in setExplicitIntent[malIntent]: the malicious
                # Intent explicitly addresses (and reaches) the victim; the
                # framework delivery fact enforces exported/same-app.
                intent_e.join(fw.int_receiver.expr).eq(launched_e),
                # no launchedCmp.app & malCmp.app
                fw.different_apps(launched_e, mal_e),
                # launchedCmp.app in device.apps
                fw.on_device(launched_e),
                # not (malCmp.app in device.apps)
                ~fw.on_device(mal_e),
                # some launchedCmp.paths && a path starts at the ICC surface
                rast.some(launched_e.join(fw.cmp_paths.expr)),
                rast.some(
                    launched_e.join(fw.cmp_paths.expr).join(fw.path_source.expr)
                    & icc
                ),
                # some malIntent.extra -- and the payload is data an
                # attacker can actually obtain in this bundle (e.g. the
                # hijacked LOCATION of the running example) when any exists.
                rast.some(intent_e.join(fw.int_extra.expr)),
                payload_constraint(spec, intent_e),
                # victim kind; malicious component is an Activity (Listing 5)
                launched_e.in_(victim_sig.expr),
                mal_e.in_(fw.activity.expr),
            ]
        )

        def decode(instance) -> ExploitScenario:
            victim = self.role_atom(instance, launched)
            attacker = self.role_atom(instance, mal_cmp)
            intent_atom = self.role_atom(instance, mal_intent)
            intent_attrs = (
                spec.intent_attributes(instance, intent_atom)
                if intent_atom
                else None
            )
            extras = (
                ", ".join(sorted(r.value for r in intent_attrs["extras"]))
                if intent_attrs
                else ""
            )
            return ExploitScenario(
                vulnerability=self.name,
                roles={
                    "victim": victim,
                    "malicious_component": attacker,
                    "attack_intent": intent_atom,
                },
                intent=intent_attrs,
                description=(
                    f"A malicious component ({attacker}) can launch the "
                    f"exported {self.victim_kind.value} {victim} with an "
                    f"explicit Intent carrying [{extras}], triggering its "
                    f"ICC-rooted sensitive path."
                ),
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={
                fw.application: 1,
                fw.activity: 1,
                fw.intent: 1,
            },
            decode=decode,
            diversity_fields=[launched],
        )


def payload_constraint(spec: BundleSpec, intent_e: rast.Expr) -> rast.Formula:
    """Restrict a synthesized Intent's extras to resources an attacker can
    actually obtain in this bundle (keeps minimization deterministic)."""
    available = set()
    for app in spec.bundle.apps:
        for intent in app.intents:
            available |= set(intent.extras)
        for comp in app.components:
            available |= {p.source for p in comp.paths}
    available -= {Resource.ICC}
    if not available:
        return rast.TRUE_F
    fw = spec.fw
    payload_pool = None
    for res in sorted(available, key=lambda r: r.value):
        expr = fw.resource_expr(res)
        payload_pool = expr if payload_pool is None else payload_pool + expr
    return intent_e.join(fw.int_extra.expr).in_(payload_pool)


class ServiceLaunchSignature(_LaunchSignature):
    name = "service_launch"
    victim_kind = ComponentKind.SERVICE


class ActivityLaunchSignature(_LaunchSignature):
    name = "activity_launch"
    victim_kind = ComponentKind.ACTIVITY
