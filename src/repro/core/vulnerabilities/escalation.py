"""Privilege escalation signature.

An exported component on the device exposes a permission-guarded capability
(its entry points reach a call that requires permission P) but does not
enforce P on its callers -- neither in the manifest nor with a reachable
``checkCallingPermission``.  A malicious app that does not hold P can then
exercise the capability by messaging the component (the paper's Ermete SMS
finding: ``ComposeActivity`` hands WRITE_SMS to everyone).
"""

from __future__ import annotations

from repro.core.app_to_spec import BundleSpec
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.relational import ast as rast


class PrivilegeEscalationSignature(VulnerabilitySignature):
    name = "privilege_escalation"

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw

        sig = m.one_sig("GeneratedPrivilegeEscalation")
        vuln_cmp = m.field(sig, "vulnCmp", fw.component, "one")
        mal_cmp = m.field(sig, "malCmp", fw.component, "one")
        mal_intent = m.field(sig, "malIntent", fw.intent, "one")
        escalated = m.field(sig, "escalatedPermission", fw.permission, "one")

        v = sig.expr
        vuln_e = v.join(vuln_cmp.expr)
        mal_e = v.join(mal_cmp.expr)
        intent_e = v.join(mal_intent.expr)
        perm_e = v.join(escalated.expr)

        goal = rast.and_all(
            [
                rast.no(vuln_e & mal_e),
                fw.on_device(vuln_e),
                rast.some(vuln_e & fw.exported.expr),
                # The victim exposes the permission-guarded capability...
                perm_e.in_(vuln_e.join(fw.cmp_exposed.expr)),
                # ...without enforcing the permission on callers.
                rast.no(perm_e & vuln_e.join(fw.cmp_permissions.expr)),
                # The attacker's app does not hold the permission...
                fw.different_apps(vuln_e, mal_e),
                ~fw.on_device(mal_e),
                rast.no(
                    perm_e
                    & mal_e.join(fw.cmp_app.expr).join(fw.app_permissions.expr)
                ),
                # ...yet reaches the victim with an Intent.
                intent_e.join(fw.int_sender.expr).eq(mal_e),
                intent_e.join(fw.int_receiver.expr).eq(vuln_e),
            ]
        )

        def decode(instance) -> ExploitScenario:
            victim = self.role_atom(instance, vuln_cmp)
            attacker = self.role_atom(instance, mal_cmp)
            intent_atom = self.role_atom(instance, mal_intent)
            perm_atom = self.role_atom(instance, escalated)
            permission = (
                perm_atom[len("perm:"):] if perm_atom else None
            )
            intent_attrs = (
                spec.intent_attributes(instance, intent_atom)
                if intent_atom
                else None
            )
            return ExploitScenario(
                vulnerability=self.name,
                roles={
                    "victim": victim,
                    "malicious_component": attacker,
                    "attack_intent": intent_atom,
                    "escalated_permission": permission,
                },
                intent=intent_attrs,
                description=(
                    f"{victim} exposes the {permission}-guarded capability "
                    f"to callers without that permission; a permission-less "
                    f"app ({attacker}) escalates through it."
                ),
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={
                fw.application: 1,
                fw.activity: 1,
                fw.intent: 1,
            },
            decode=decode,
            diversity_fields=[vuln_cmp, escalated],
        )
