"""Permission re-delegation chain signature.

A deputy app holds a dangerous permission P and exercises the guarded
capability from a *terminal* component; an exported *entry* component --
which does not enforce P on its callers -- reaches that terminal over a
chain of ICC calls of arbitrary length k.  A malicious app without P then
drives the capability by messaging the entry point: the deputy re-delegates
P transitively (Felt et al.'s confused deputy, generalised to chains; the
permission-flow axioms follow the Betarte/Cristia formalizations of the
Android permission model).

The ICC call graph enters the problem as an exact-bound helper relation
(:func:`~repro.core.icc_graph.call_edges`); the chain is its transitive
closure, so length-k chains cost no extra atoms.
"""

from __future__ import annotations

from repro.android.permissions import ProtectionLevel, protection_level
from repro.android.resources import Resource
from repro.core.app_to_spec import BundleSpec
from repro.core.framework_spec import permission_atom
from repro.core.icc_graph import call_edges
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.relational import ast as rast


def dangerous_exposed_permissions(bundle) -> list:
    """Dangerous-level permissions some bundle component exercises
    (their atoms are guaranteed in the embedding's vocabulary)."""
    exposed = set()
    for comp in bundle.all_components():
        exposed |= comp.uses_permissions
    return sorted(
        p for p in exposed
        if protection_level(p) is ProtectionLevel.DANGEROUS
    )


class PermissionRedelegationSignature(VulnerabilitySignature):
    name = "permission_redelegation"

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw

        edges = sorted(call_edges(spec.bundle))
        dangerous = dangerous_exposed_permissions(spec.bundle)
        if not edges or not dangerous:
            return self.impossible()

        sig = m.one_sig("GeneratedPermissionRedelegation")
        entry_cmp = m.field(sig, "entryCmp", fw.component, "one")
        term_cmp = m.field(sig, "terminalCmp", fw.component, "one")
        mal_cmp = m.field(sig, "malCmp", fw.component, "one")
        mal_intent = m.field(sig, "malIntent", fw.intent, "one")
        delegated = m.field(sig, "delegatedPermission", fw.permission, "one")

        # Extracted facts as exact-bound constants: the bundle's ICC call
        # graph and the dangerous permissions exercised within it.
        calls = m.helper_relation("callEdge", 2, edges)
        dang = m.helper_relation(
            "dangerousPerm", 1, [(permission_atom(p),) for p in dangerous]
        )

        v = sig.expr
        entry_e = v.join(entry_cmp.expr)
        term_e = v.join(term_cmp.expr)
        mal_e = v.join(mal_cmp.expr)
        intent_e = v.join(mal_intent.expr)
        perm_e = v.join(delegated.expr)
        icc = fw.resource_expr(Resource.ICC)

        goal = rast.and_all(
            [
                # disj entryCmp, terminalCmp, malCmp
                rast.no(entry_e & term_e),
                rast.no(entry_e & mal_e),
                rast.no(term_e & mal_e),
                fw.on_device(entry_e),
                fw.on_device(term_e),
                # The chain's mouth is exported...
                rast.some(entry_e & fw.exported.expr),
                # ...and reaches the terminal over >= 1 ICC call hops.
                term_e.in_(entry_e.join(calls.to_expr().closure())),
                # The delegated permission is dangerous-level; the
                # terminal exercises the capability it guards, its app
                # actually holds it (delegation, not mere escalation)...
                perm_e.in_(dang.to_expr()),
                perm_e.in_(term_e.join(fw.cmp_exposed.expr)),
                perm_e.in_(
                    term_e.join(fw.cmp_app.expr).join(fw.app_permissions.expr)
                ),
                # ...the capability is drivable from the ICC surface...
                rast.some(
                    term_e.join(fw.cmp_paths.expr).join(fw.path_source.expr)
                    & icc
                ),
                # ...and neither end of the chain enforces P on callers.
                rast.no(perm_e & entry_e.join(fw.cmp_permissions.expr)),
                rast.no(perm_e & term_e.join(fw.cmp_permissions.expr)),
                # The attacker's app lacks P yet reaches the entry point.
                fw.different_apps(entry_e, mal_e),
                ~fw.on_device(mal_e),
                rast.no(
                    perm_e
                    & mal_e.join(fw.cmp_app.expr).join(fw.app_permissions.expr)
                ),
                intent_e.join(fw.int_sender.expr).eq(mal_e),
                intent_e.join(fw.int_receiver.expr).eq(entry_e),
                mal_e.in_(fw.activity.expr),
            ]
        )

        def decode(instance) -> ExploitScenario:
            entry = self.role_atom(instance, entry_cmp)
            terminal = self.role_atom(instance, term_cmp)
            attacker = self.role_atom(instance, mal_cmp)
            intent_atom = self.role_atom(instance, mal_intent)
            perm_atom = self.role_atom(instance, delegated)
            permission = perm_atom[len("perm:"):] if perm_atom else None
            intent_attrs = (
                spec.intent_attributes(instance, intent_atom)
                if intent_atom
                else None
            )
            return ExploitScenario(
                vulnerability=self.name,
                roles={
                    "victim": entry,
                    "terminal_component": terminal,
                    "malicious_component": attacker,
                    "attack_intent": intent_atom,
                    "escalated_permission": permission,
                },
                intent=intent_attrs,
                description=(
                    f"A permission-less app ({attacker}) drives {entry}, "
                    f"which reaches {terminal} over a chain of ICC calls; "
                    f"{terminal} exercises its app's {permission} without "
                    f"either end enforcing it -- the permission is "
                    f"re-delegated along the chain."
                ),
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={
                fw.application: 1,
                fw.activity: 1,
                fw.intent: 1,
            },
            decode=decode,
            diversity_fields=[entry_cmp, term_cmp, delegated],
        )
