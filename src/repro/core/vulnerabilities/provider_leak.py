"""Content-provider read/write leakage signature.

Sensitive data is written into a content provider (an insert/update
resolver operation whose payload carries a non-ICC source resource) and
then escapes, through either of two drains:

- **write leakage**: the provider itself relays its ICC input to a public
  sink (e.g. it persists rows to world-readable external storage);
- **read leakage**: a component of a *different* app queries the provider
  and relays the result (ICC input from the provider's protection domain)
  to a public sink.

Provider ICC is addressed by URI authority rather than Intent resolution,
so the access edges enter the problem as exact-bound helper relations
computed from the extracted resolver operations
(:func:`~repro.core.icc_graph.provider_write_edges` /
:func:`~repro.core.icc_graph.provider_read_edges`).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.android.resources import Resource, SOURCES
from repro.core.app_to_spec import BundleSpec
from repro.core.icc_graph import provider_read_edges, provider_write_edges
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.relational import ast as rast


def written_payload(bundle, writer: str, provider: str) -> FrozenSet[Resource]:
    """The sensitive resources ``writer`` writes toward ``provider``."""
    sensitive = SOURCES - {Resource.ICC}
    provider_model = bundle.component(provider)
    payload = set()
    for app in bundle.apps:
        for access in app.provider_accesses:
            if access.sender != writer:
                continue
            if access.operation not in ("insert", "update"):
                continue
            if provider_model.authority is not None and access.authority not in (
                None,
                provider_model.authority,
            ):
                continue
            payload |= access.payload & sensitive
    return frozenset(payload)


class ProviderLeakSignature(VulnerabilitySignature):
    name = "provider_leak"

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw

        write_pairs = sorted(provider_write_edges(spec.bundle))
        read_pairs = sorted(provider_read_edges(spec.bundle))
        if not write_pairs:
            # Both drains require a sensitive write into some provider.
            return self.impossible()

        sig = m.one_sig("GeneratedProviderLeak")
        writer_cmp = m.field(sig, "writerCmp", fw.component, "one")
        provider_cmp = m.field(sig, "providerCmp", fw.component, "one")
        drain_cmp = m.field(sig, "drainCmp", fw.component, "one")

        writes = m.helper_relation("providerWriteEdge", 2, write_pairs)
        reads = m.helper_relation("providerReadEdge", 2, read_pairs)

        v = sig.expr
        writer_e = v.join(writer_cmp.expr)
        prov_e = v.join(provider_cmp.expr)
        drain_e = v.join(drain_cmp.expr)
        icc = fw.resource_expr(Resource.ICC)
        public_sink = fw.sink_resources.expr - icc

        write_case = drain_e.eq(prov_e) & self._drain_path(
            fw, prov_e, icc, public_sink
        )
        read_case = rast.and_all(
            [
                prov_e.in_(drain_e.join(reads.to_expr())),
                fw.different_apps(drain_e, writer_e),
                rast.no(drain_e & prov_e),
                self._drain_path(fw, drain_e, icc, public_sink),
            ]
        )

        goal = rast.and_all(
            [
                rast.no(writer_e & prov_e),
                fw.on_device(writer_e),
                fw.on_device(prov_e),
                fw.on_device(drain_e),
                prov_e.in_(fw.provider.expr),
                # Sensitive data enters the provider...
                prov_e.in_(writer_e.join(writes.to_expr())),
                # ...and escapes through the provider's own public sink
                # (write leakage) or a foreign reader's (read leakage).
                write_case | read_case,
            ]
        )

        def decode(instance) -> ExploitScenario:
            writer = self.role_atom(instance, writer_cmp)
            provider = self.role_atom(instance, provider_cmp)
            drain = self.role_atom(instance, drain_cmp)
            direction = "write" if drain == provider else "read"
            payload = (
                written_payload(spec.bundle, writer, provider)
                if writer and provider
                else frozenset()
            )
            extras = ", ".join(sorted(r.value for r in payload))
            escape = (
                f"{provider} relays it to a public sink"
                if direction == "write"
                else f"{drain} (a different app) reads it back and relays "
                f"it to a public sink"
            )
            return ExploitScenario(
                vulnerability=self.name,
                roles={
                    "victim": provider,
                    "writer_component": writer,
                    "sink_component": drain,
                    "operation": direction,
                },
                intent=None,
                description=(
                    f"Sensitive data [{extras}] written by {writer} into "
                    f"content provider {provider} escapes: {escape}."
                ),
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={},
            decode=decode,
            diversity_fields=[writer_cmp, provider_cmp, drain_cmp],
        )

    @staticmethod
    def _drain_path(fw, cmp_e, icc, public_sink) -> rast.Formula:
        p = rast.Variable("pleak_p")
        return rast.some_(
            p,
            cmp_e.join(fw.cmp_paths.expr),
            p.join(fw.path_source.expr).eq(icc)
            & p.join(fw.path_sink.expr).in_(public_sink),
        )
