"""The vulnerability plugin interface (SEPAR's plugin-based architecture).

Each known inter-app vulnerability is distilled into a formally-specified
signature: an Alloy-style singleton signature whose ``one``-multiplicity
fields name the participating elements (the victim component, the
postulated malicious component, the attack Intent, ...), plus a signature
fact capturing the semantics of the exploit.  Solving for an instance of
the conjoined bundle + framework + signature constraints *synthesizes* a
concrete exploit scenario; the field bindings in the instance are the
scenario's roles.

Users extend SEPAR by subclassing :class:`VulnerabilitySignature` and
registering it (:func:`repro.core.vulnerabilities.register`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.app_to_spec import BundleSpec
from repro.relational import ast as rast
from repro.relational.instance import Instance
from repro.relational.sigs import Field, Sig


@dataclass
class ExploitScenario:
    """One synthesized exploit: the output of the analysis engine."""

    vulnerability: str
    roles: Dict[str, str]  # role name -> witness atom
    intent: Optional[Dict] = None  # attack/vulnerable Intent attributes
    malicious_filter: Optional[Dict] = None  # synthesized hijacking filter
    description: str = ""

    @property
    def victim_component(self) -> Optional[str]:
        return self.roles.get("victim")

    @property
    def victim_app(self) -> Optional[str]:
        victim = self.victim_component
        if victim is None:
            return None
        return victim.split("/", 1)[0]


@dataclass
class SignatureInstantiation:
    """What a plugin contributes to one solve: the goal conjunction, the
    anonymous-atom scopes, a decoder from instances to scenarios, and the
    role fields over which enumeration should diversify (each successive
    scenario must re-bind at least one of them -- typically producing one
    scenario per victim)."""

    goal: rast.Formula
    extra_scopes: Dict[Sig, int]
    decode: Callable[[Instance], ExploitScenario]
    diversity_fields: List[Field] = field(default_factory=list)


class VulnerabilitySignature(abc.ABC):
    """Base class for vulnerability signatures."""

    #: Stable identifier; used in reports, policies, and the registry.
    name: str = "abstract"

    @abc.abstractmethod
    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        """Declare the signature into ``spec.module`` and return the goal.

        Called once per analysis run on a freshly built
        :class:`~repro.core.app_to_spec.BundleSpec` (modules are mutated in
        place, so instantiations are never shared between plugins)."""

    # Shared helpers -----------------------------------------------------
    @staticmethod
    def role_atom(instance: Instance, fld: Field) -> Optional[str]:
        tuples = instance.tuples(fld.relation)
        for _, value in tuples:
            return value
        return None

    @staticmethod
    def impossible() -> SignatureInstantiation:
        """An instantiation whose goal is the FALSE constant.

        Returned when the extracted facts already rule the signature out
        (no call edges, no dynamic filters, ...): the constant folds at
        translation, so the shared-encoding path dead-gates the group and
        per-signature mode gets a trivially unsatisfiable problem -- both
        for free, with no signature atoms added to the universe."""
        return SignatureInstantiation(
            goal=rast.FALSE_F,
            extra_scopes={},
            decode=lambda instance: None,
            diversity_fields=[],
        )
