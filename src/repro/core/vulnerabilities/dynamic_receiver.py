"""Dynamically-registered receiver hijack signature.

A receiver registered from code (``registerReceiver``) is reachable by any
sender for the lifetime of the registration and -- unlike a manifest
receiver -- cannot be closed off with ``exported="false"``.  When the
dynamic registration carries no broadcast permission and the receiver's
handler does sensitive work rooted at its ICC surface, a not-yet-installed
app can spoof the broadcast: an implicit Intent matching the dynamic filter
triggers the handler with attacker-controlled payload.

The signature quantifies over the ``DynamicFilter`` classification the
bundle embedding pins per extracted filter; the set of dynamic filter atoms
also enters as an exact-bound helper relation so that bundles without any
dynamic registration fold the goal away outright.
"""

from __future__ import annotations

from repro.android.resources import Resource
from repro.core.app_to_spec import BundleSpec
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.core.vulnerabilities.launch import payload_constraint
from repro.relational import ast as rast


def dynamic_filter_atoms(bundle) -> list:
    """Atoms of filters registered in code, as pinned by the embedding."""
    atoms = []
    for app in bundle.apps:
        for comp in app.components:
            for fi, filt in enumerate(comp.intent_filters):
                if filt.dynamic:
                    atoms.append(f"{comp.name}#f{fi}")
    return sorted(atoms)


class DynamicReceiverHijackSignature(VulnerabilitySignature):
    name = "dynamic_receiver_hijack"

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw

        dyn_atoms = dynamic_filter_atoms(spec.bundle)
        if not dyn_atoms:
            return self.impossible()

        sig = m.one_sig("GeneratedDynamicReceiverHijack")
        vict_cmp = m.field(sig, "victimCmp", fw.component, "one")
        dyn_filter = m.field(sig, "dynFilter", fw.intent_filter, "one")
        mal_cmp = m.field(sig, "malCmp", fw.component, "one")
        mal_intent = m.field(sig, "malIntent", fw.intent, "one")

        dyn = m.helper_relation(
            "dynFilterAtom", 1, [(a,) for a in dyn_atoms]
        )

        v = sig.expr
        vict_e = v.join(vict_cmp.expr)
        filter_e = v.join(dyn_filter.expr)
        mal_e = v.join(mal_cmp.expr)
        intent_e = v.join(mal_intent.expr)
        icc = fw.resource_expr(Resource.ICC)

        goal = rast.and_all(
            [
                rast.no(vict_e & mal_e),
                # The victim is a receiver on the device whose dynamic
                # registration left it reachable by everyone...
                vict_e.in_(fw.receiver.expr),
                fw.on_device(vict_e),
                rast.some(vict_e & fw.exported.expr),
                filter_e.in_(vict_e.join(fw.cmp_filters.expr)),
                filter_e.in_(fw.dynamic_filters.expr),
                filter_e.in_(dyn.to_expr()),
                # ...with no broadcast permission guarding the handler...
                rast.no(vict_e.join(fw.cmp_permissions.expr)),
                # ...and sensitive work rooted at its ICC surface.
                rast.some(
                    vict_e.join(fw.cmp_paths.expr).join(fw.path_source.expr)
                    & icc
                ),
                # The spoofing app is not yet installed and broadcasts an
                # implicit Intent the dynamic filter matches.
                fw.different_apps(vict_e, mal_e),
                ~fw.on_device(mal_e),
                mal_e.in_(fw.activity.expr),
                intent_e.join(fw.int_sender.expr).eq(mal_e),
                rast.no(intent_e.join(fw.int_receiver.expr)),
                fw.matches_filter(intent_e, filter_e),
                rast.some(intent_e.join(fw.int_extra.expr)),
                payload_constraint(spec, intent_e),
            ]
        )

        def decode(instance) -> ExploitScenario:
            victim = self.role_atom(instance, vict_cmp)
            filter_atom = self.role_atom(instance, dyn_filter)
            attacker = self.role_atom(instance, mal_cmp)
            intent_atom = self.role_atom(instance, mal_intent)
            intent_attrs = (
                spec.intent_attributes(instance, intent_atom)
                if intent_atom
                else None
            )
            filter_attrs = (
                spec.filter_attributes(instance, filter_atom)
                if filter_atom
                else None
            )
            action = intent_attrs["action"] if intent_attrs else None
            return ExploitScenario(
                vulnerability=self.name,
                roles={
                    "victim": victim,
                    "dynamic_filter": filter_atom,
                    "malicious_component": attacker,
                    "attack_intent": intent_atom,
                },
                intent=intent_attrs,
                malicious_filter=filter_attrs,
                description=(
                    f"{victim} registers a broadcast receiver from code "
                    f"without a permission guard; a spoofed broadcast "
                    f"(action {action!r}) from a malicious app ({attacker}) "
                    f"triggers its ICC-rooted sensitive path."
                ),
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={
                fw.application: 1,
                fw.activity: 1,
                fw.intent: 1,
            },
            decode=decode,
            diversity_fields=[vict_cmp, dyn_filter],
        )
