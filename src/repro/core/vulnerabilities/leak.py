"""Inter-component information leakage signature.

Sensitive data (a non-ICC source resource) flows out of one component as an
Intent payload and into another component whose ICC-rooted path ends in a
public sink (network, SMS, external storage, log, ...).  Unlike the launch
and hijack signatures this one composes *real* components -- the leak
exists entirely within the installed bundle.

Leaks may be *transitive* (the paper's OwnCloud finding flows "through a
chain of Intent message passing"): the signature walks the reflexive
transitive closure of the bundle's relay edges -- components that forward
their ICC input onward -- which enter the problem as an exact-bound helper
relation derived from the extracted facts.
"""

from __future__ import annotations

from repro.android.resources import Resource
from repro.core.app_to_spec import BundleSpec
from repro.core.icc_graph import relay_edges
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.relational import ast as rast


class InformationLeakSignature(VulnerabilitySignature):
    name = "information_leak"

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw
        icc = fw.resource_expr(Resource.ICC)

        sig = m.one_sig("GeneratedInformationLeak")
        src_cmp = m.field(sig, "srcCmp", fw.component, "one")
        first_hop = m.field(sig, "firstHop", fw.component, "one")
        dst_cmp = m.field(sig, "dstCmp", fw.component, "one")
        leak_intent = m.field(sig, "leakIntent", fw.intent, "one")

        # The relay graph, pinned as constants from the extracted models.
        relay = m.helper_relation(
            "relayEdge", 2, sorted(relay_edges(spec.bundle))
        )

        v = sig.expr
        src_e = v.join(src_cmp.expr)
        hop_e = v.join(first_hop.expr)
        dst_e = v.join(dst_cmp.expr)
        intent_e = v.join(leak_intent.expr)

        sensitive = fw.source_resources.expr - icc
        public_sink = fw.sink_resources.expr - icc

        f = rast.Variable("leak_f")
        delivered = intent_e.join(fw.int_receiver.expr).eq(hop_e) | rast.some_(
            f,
            hop_e.join(fw.cmp_filters.expr),
            fw.matches_filter(intent_e, f),
        )

        goal = rast.and_all(
            [
                rast.no(src_e & dst_e),
                fw.on_device(src_e),
                fw.on_device(dst_e),
                # The Intent leaves srcCmp carrying sensitive data.
                intent_e.join(fw.int_sender.expr).eq(src_e),
                rast.some(intent_e.join(fw.int_extra.expr) & sensitive),
                # It reaches a first hop (explicitly, or via a matching
                # filter on an exported/same-app component)...
                delivered,
                rast.no(hop_e & src_e),
                rast.some(hop_e & fw.exported.expr)
                | hop_e.join(fw.cmp_app.expr).eq(src_e.join(fw.cmp_app.expr)),
                # ...from which the payload flows along relay edges to the
                # draining component (reflexive closure: zero or more hops).
                dst_e.in_(
                    hop_e.join(relay.to_expr().reflexive_closure())
                ),
                # dstCmp relays its ICC input to a public sink.
                self._relay_path(fw, dst_e, icc, public_sink),
            ]
        )

        def decode(instance) -> ExploitScenario:  # noqa: D401
            return self._decode(
                spec, instance, src_cmp, first_hop, dst_cmp, leak_intent
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={},
            decode=decode,
            diversity_fields=[src_cmp, dst_cmp],
        )

    @staticmethod
    def _relay_path(fw, dst_e, icc, public_sink) -> rast.Formula:
        p = rast.Variable("leak_p")
        return rast.some_(
            p,
            dst_e.join(fw.cmp_paths.expr),
            p.join(fw.path_source.expr).eq(icc)
            & p.join(fw.path_sink.expr).in_(public_sink),
        )

    def _decode(self, spec, instance, src_cmp, first_hop, dst_cmp, leak_intent):
        source = self.role_atom(instance, src_cmp)
        hop = self.role_atom(instance, first_hop)
        dest = self.role_atom(instance, dst_cmp)
        intent_atom = self.role_atom(instance, leak_intent)
        intent_attrs = (
            spec.intent_attributes(instance, intent_atom) if intent_atom else None
        )
        extras = (
            ", ".join(sorted(r.value for r in intent_attrs["extras"]))
            if intent_attrs
            else ""
        )
        return ExploitScenario(
            vulnerability=self.name,
            roles={
                "victim": source,
                "source_component": source,
                "first_hop": hop,
                "sink_component": dest,
                "leak_intent": intent_atom,
            },
            intent=intent_attrs,
            description=(
                f"Sensitive data [{extras}] flows from {source} via "
                f"Intent {intent_atom} into {hop}"
                + (f", onward through relays to {dest}" if hop != dest else "")
                + ", which relays its ICC input to a public sink."
            ),
        )
