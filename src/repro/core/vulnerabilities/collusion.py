"""Multi-app collusion signature.

Two apps jointly exfiltrate sensitive data through an intermediary: a
*source* component hands a sensitive payload to an *intermediary* in a
second app, which forwards its ICC input onward (one or more relay hops)
until a *sink* component in a third app drains it to a public sink.  Each
app in isolation looks innocuous -- the source merely shares data, the
intermediary merely forwards, the sink merely uploads -- which is exactly
why single-app analyses miss the attack and SEPAR's compositional bundle
analysis is required.

Structurally this specializes the information-leak signature to three
pairwise-distinct applications, so the sharing/forwarding/draining roles
provably cross app boundaries; the relay graph enters as an exact-bound
helper relation (a second copy under its own name -- shared-mode modules
require helper names to be unique per signature).
"""

from __future__ import annotations

from repro.android.resources import Resource
from repro.core.app_to_spec import BundleSpec
from repro.core.icc_graph import relay_edges
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    SignatureInstantiation,
    VulnerabilitySignature,
)
from repro.relational import ast as rast


class CollusionSignature(VulnerabilitySignature):
    name = "app_collusion"

    def instantiate(self, spec: BundleSpec) -> SignatureInstantiation:
        m = spec.module
        fw = spec.fw

        edges = sorted(relay_edges(spec.bundle))
        if len(spec.bundle.apps) < 3 or not edges:
            # Three pairwise-distinct installed apps and at least one
            # forwarding hop are structural prerequisites.
            return self.impossible()

        sig = m.one_sig("GeneratedAppCollusion")
        src_cmp = m.field(sig, "srcCmp", fw.component, "one")
        mid_cmp = m.field(sig, "midCmp", fw.component, "one")
        dst_cmp = m.field(sig, "dstCmp", fw.component, "one")
        col_intent = m.field(sig, "colIntent", fw.intent, "one")

        relay = m.helper_relation("collusionRelay", 2, edges)

        v = sig.expr
        src_e = v.join(src_cmp.expr)
        mid_e = v.join(mid_cmp.expr)
        dst_e = v.join(dst_cmp.expr)
        intent_e = v.join(col_intent.expr)
        icc = fw.resource_expr(Resource.ICC)
        sensitive = fw.source_resources.expr - icc
        public_sink = fw.sink_resources.expr - icc

        f = rast.Variable("col_f")
        delivered = intent_e.join(fw.int_receiver.expr).eq(mid_e) | rast.some_(
            f,
            mid_e.join(fw.cmp_filters.expr),
            fw.matches_filter(intent_e, f),
        )

        goal = rast.and_all(
            [
                # Three roles in three different installed apps.
                rast.no(src_e & mid_e),
                rast.no(mid_e & dst_e),
                rast.no(src_e & dst_e),
                fw.different_apps(src_e, mid_e),
                fw.different_apps(mid_e, dst_e),
                fw.different_apps(src_e, dst_e),
                fw.on_device(src_e),
                fw.on_device(mid_e),
                fw.on_device(dst_e),
                # The source shares a sensitive payload...
                intent_e.join(fw.int_sender.expr).eq(src_e),
                rast.some(intent_e.join(fw.int_extra.expr) & sensitive),
                # ...the exported intermediary receives it...
                delivered,
                rast.some(mid_e & fw.exported.expr),
                # ...and forwards it (>= 1 relay hops) to the sink app,
                # which drains its ICC input to a public sink.
                dst_e.in_(mid_e.join(relay.to_expr().closure())),
                self._drain_path(fw, dst_e, icc, public_sink),
            ]
        )

        def decode(instance) -> ExploitScenario:
            source = self.role_atom(instance, src_cmp)
            middle = self.role_atom(instance, mid_cmp)
            dest = self.role_atom(instance, dst_cmp)
            intent_atom = self.role_atom(instance, col_intent)
            intent_attrs = (
                spec.intent_attributes(instance, intent_atom)
                if intent_atom
                else None
            )
            extras = (
                ", ".join(sorted(r.value for r in intent_attrs["extras"]))
                if intent_attrs
                else ""
            )
            return ExploitScenario(
                vulnerability=self.name,
                roles={
                    "victim": source,
                    "source_component": source,
                    "intermediary": middle,
                    "sink_component": dest,
                    "collusion_intent": intent_atom,
                },
                intent=intent_attrs,
                description=(
                    f"Colluding apps exfiltrate [{extras}]: {source} shares "
                    f"it with {middle} (a second app), which relays it to "
                    f"{dest} (a third app) draining to a public sink."
                ),
            )

        return SignatureInstantiation(
            goal=goal,
            extra_scopes={},
            decode=decode,
            diversity_fields=[src_cmp, mid_cmp, dst_cmp],
        )

    @staticmethod
    def _drain_path(fw, dst_e, icc, public_sink) -> rast.Formula:
        p = rast.Variable("col_p")
        return rast.some_(
            p,
            dst_e.join(fw.cmp_paths.expr),
            p.join(fw.path_source.expr).eq(icc)
            & p.join(fw.path_sink.expr).in_(public_sink),
        )
