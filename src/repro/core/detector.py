"""Concrete vulnerability detection over app models.

The SAT-based synthesis engine produces *scenarios* -- witnesses with
bindings for postulated malicious elements.  For large-scale counting
(which of 4,000 apps harbor each vulnerability class, RQ2) SEPAR only needs
the *decision*: does a scenario exist for this victim?  This module
evaluates exactly the same signature semantics directly over the
:class:`~repro.core.model.BundleModel`, in plain Python.  Tests
cross-validate it against the SAT pipeline on small bundles; the RQ2
benchmark uses it to sweep the full corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.android.components import ComponentKind
from repro.android.resources import Resource, SINKS, SOURCES
from repro.core.model import BundleModel, ComponentModel, IntentModel

SENSITIVE_SOURCES = SOURCES - {Resource.ICC}
PUBLIC_SINKS = SINKS - {Resource.ICC}


def _forward_closure(edges: Set[tuple], start: str) -> Set[str]:
    """Nodes reachable from ``start`` over >= 1 edge hops (the strict
    transitive closure the chain signatures take)."""
    adjacency: Dict[str, Set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
    seen: Set[str] = set()
    stack = list(adjacency.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency.get(node, ()))
    return seen


@dataclass
class DetectionReport:
    """Vulnerable components per vulnerability class."""

    findings: Dict[str, Set[str]] = field(default_factory=dict)
    leak_pairs: Set[tuple] = field(default_factory=set)  # (src, sink) pairs

    def components(self, vulnerability: str) -> Set[str]:
        return self.findings.get(vulnerability, set())

    def apps(self, vulnerability: str) -> Set[str]:
        return {
            name.split("/", 1)[0] for name in self.components(vulnerability)
        }

    def add(self, vulnerability: str, component: str) -> None:
        self.findings.setdefault(vulnerability, set()).add(component)

    def to_dict(self) -> Dict[str, object]:
        """Canonical form for run reports and findings files (sorted)."""
        return {
            "findings": {
                vuln: sorted(comps)
                for vuln, comps in sorted(self.findings.items())
            },
            "leak_pairs": sorted(list(pair) for pair in self.leak_pairs),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "DetectionReport":
        return DetectionReport(
            findings={
                vuln: set(comps)
                for vuln, comps in data.get("findings", {}).items()
            },
            leak_pairs={tuple(pair) for pair in data.get("leak_pairs", ())},
        )


class SeparDetector:
    """Decision-procedure twin of the synthesis signatures."""

    def detect(self, bundle: BundleModel) -> DetectionReport:
        report = DetectionReport()
        components = bundle.all_components()
        intents = bundle.all_intents()
        by_name = {c.name: c for c in components}

        for intent in intents:
            self._check_hijack(intent, report)
        for comp in components:
            self._check_launch(comp, report)
            self._check_escalation(comp, report)
            self._check_dynamic_receiver(comp, report)
        self._check_leaks(bundle, components, intents, by_name, report)
        self._check_redelegation(bundle, components, by_name, report)
        self._check_provider_leak(bundle, by_name, report)
        self._check_collusion(bundle, components, intents, by_name, report)
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _check_hijack(intent: IntentModel, report: DetectionReport) -> None:
        """Implicit Intent with an action and a sensitive payload: a filter
        listing its attributes intercepts it."""
        if intent.explicit or intent.passive:
            return
        if intent.action is None or not intent.extras:
            return
        report.add("intent_hijack", intent.sender)

    @staticmethod
    def _check_launch(comp: ComponentModel, report: DetectionReport) -> None:
        """Exported component with an ICC-rooted sensitive path."""
        if not comp.exported or not comp.reachable:
            return
        if comp.kind not in (ComponentKind.SERVICE, ComponentKind.ACTIVITY):
            return
        if not any(p.source is Resource.ICC for p in comp.paths):
            return
        name = (
            "service_launch"
            if comp.kind is ComponentKind.SERVICE
            else "activity_launch"
        )
        report.add(name, comp.name)

    @staticmethod
    def _check_escalation(comp: ComponentModel, report: DetectionReport) -> None:
        """Exported component exposing unenforced permission-guarded work.

        Narrowed the way the paper's counts imply: the unenforced
        permission must be *dangerous*-level, and the capability must be
        drivable from the component's ICC surface (an ICC-rooted path
        exists), i.e. a caller actually escalates through it."""
        from repro.android.permissions import ProtectionLevel, protection_level

        if not comp.exported or not comp.reachable:
            return
        leaked = {
            p
            for p in comp.uses_permissions - comp.permissions
            if protection_level(p) is ProtectionLevel.DANGEROUS
        }
        if not leaked:
            return
        if not any(p.source is Resource.ICC for p in comp.paths):
            return
        report.add("privilege_escalation", comp.name)

    def _check_leaks(
        self,
        bundle: BundleModel,
        components: List[ComponentModel],
        intents: List[IntentModel],
        by_name: Dict[str, ComponentModel],
        report: DetectionReport,
    ) -> None:
        """Sensitive payload delivered to a component that relays its ICC
        input to a public sink."""
        relays = [
            c
            for c in components
            if c.reachable
            and any(
                p.source is Resource.ICC and p.sink in PUBLIC_SINKS
                for p in c.paths
            )
        ]
        relay_names = {c.name for c in relays}
        for intent in intents:
            sensitive = intent.extras & SENSITIVE_SOURCES
            if not sensitive:
                continue
            sender = by_name.get(intent.sender)
            if sender is None:
                continue
            first_hops = {
                c.name
                for c in components
                if c.name != intent.sender
                and c.reachable
                and self._deliverable(intent, sender, c)
            }
            if not first_hops:
                continue
            # Transitive propagation: the payload keeps flowing through
            # ICC->ICC relays (the paper's OwnCloud chain) until it hits a
            # component that drains ICC input into a public sink.
            from repro.core.icc_graph import transitive_receivers

            reached = transitive_receivers(bundle, first_hops)
            for name in reached & relay_names:
                if name == intent.sender:
                    continue
                report.add("information_leak", intent.sender)
                report.add("information_leak", name)
                report.leak_pairs.add((intent.sender, name))
        # Provider-directed leaks: tainted resolver payloads reaching a
        # provider whose operations relay ICC input to a public sink.
        providers = [
            c
            for c in components
            if c.kind is ComponentKind.PROVIDER and c.reachable
        ]
        for app in bundle.apps:
            for access in app.provider_accesses:
                sensitive = access.payload & SENSITIVE_SOURCES
                if not sensitive:
                    continue
                sender = by_name.get(access.sender)
                if sender is None:
                    continue
                for provider in providers:
                    if provider.authority is not None and access.authority not in (
                        None,
                        provider.authority,
                    ):
                        continue
                    if not provider.exported and provider.app != sender.app:
                        continue
                    if not any(
                        p.source is Resource.ICC and p.sink in PUBLIC_SINKS
                        for p in provider.paths
                    ):
                        continue
                    report.add("information_leak", access.sender)
                    report.add("information_leak", provider.name)
                    report.leak_pairs.add((access.sender, provider.name))

    @staticmethod
    def _check_dynamic_receiver(
        comp: ComponentModel, report: DetectionReport
    ) -> None:
        """Receiver registered from code with an unguarded matchable filter
        and sensitive work rooted at its ICC surface."""
        if comp.kind is not ComponentKind.RECEIVER:
            return
        if not comp.exported or not comp.reachable:
            return
        if comp.permissions:
            return
        if not any(f.dynamic and f.actions for f in comp.intent_filters):
            return
        if not any(p.source is Resource.ICC for p in comp.paths):
            return
        report.add("dynamic_receiver_hijack", comp.name)

    @staticmethod
    def _check_redelegation(
        bundle: BundleModel,
        components: List[ComponentModel],
        by_name: Dict[str, ComponentModel],
        report: DetectionReport,
    ) -> None:
        """Exported entry reaching, over >= 1 ICC call hops, a terminal
        that exercises its app's dangerous permission with neither end
        enforcing it."""
        from repro.android.permissions import ProtectionLevel, protection_level
        from repro.core.icc_graph import call_edges

        edges = call_edges(bundle)
        if not edges:
            return
        app_perms = {app.package: app.uses_permissions for app in bundle.apps}
        terminals: Dict[str, Set[str]] = {}
        for comp in components:
            if not comp.reachable:
                continue
            if not any(p.source is Resource.ICC for p in comp.paths):
                continue
            delegated = {
                p
                for p in comp.uses_permissions - comp.permissions
                if protection_level(p) is ProtectionLevel.DANGEROUS
                and p in app_perms.get(comp.app, frozenset())
            }
            if delegated:
                terminals[comp.name] = delegated
        if not terminals:
            return
        for entry in components:
            if not entry.exported or not entry.reachable:
                continue
            reached = _forward_closure(edges, entry.name)
            for name in reached:
                if name == entry.name:
                    continue
                delegated = terminals.get(name)
                if not delegated:
                    continue
                if not (delegated - entry.permissions):
                    continue
                report.add("permission_redelegation", entry.name)
                report.add("permission_redelegation", name)

    @staticmethod
    def _check_provider_leak(
        bundle: BundleModel,
        by_name: Dict[str, ComponentModel],
        report: DetectionReport,
    ) -> None:
        """Sensitive write into a provider that escapes via the provider's
        own public sink or a foreign reader's."""
        from repro.core.icc_graph import provider_read_edges, provider_write_edges

        def drains(comp: ComponentModel) -> bool:
            return comp.reachable and any(
                p.source is Resource.ICC and p.sink in PUBLIC_SINKS
                for p in comp.paths
            )

        readers: Dict[str, Set[str]] = {}
        for reader_name, provider_name in provider_read_edges(bundle):
            readers.setdefault(provider_name, set()).add(reader_name)
        for writer_name, provider_name in provider_write_edges(bundle):
            writer = by_name.get(writer_name)
            provider = by_name.get(provider_name)
            if writer is None or provider is None or not provider.reachable:
                continue
            if provider.name == writer.name:
                continue
            if drains(provider):
                report.add("provider_leak", writer.name)
                report.add("provider_leak", provider.name)
            for reader_name in readers.get(provider_name, ()):
                reader = by_name.get(reader_name)
                if reader is None or reader.name == provider.name:
                    continue
                if reader.app == writer.app or not drains(reader):
                    continue
                report.add("provider_leak", writer.name)
                report.add("provider_leak", provider.name)
                report.add("provider_leak", reader.name)

    def _check_collusion(
        self,
        bundle: BundleModel,
        components: List[ComponentModel],
        intents: List[IntentModel],
        by_name: Dict[str, ComponentModel],
        report: DetectionReport,
    ) -> None:
        """Sensitive payload crossing three apps: source -> exported
        intermediary -> (relay chain) -> draining sink component."""
        from repro.core.icc_graph import relay_edges

        if len(bundle.apps) < 3:
            return
        edges = relay_edges(bundle)
        if not edges:
            return
        drains = {
            c.name
            for c in components
            if c.reachable
            and any(
                p.source is Resource.ICC and p.sink in PUBLIC_SINKS
                for p in c.paths
            )
        }
        for intent in intents:
            if not (intent.extras & SENSITIVE_SOURCES):
                continue
            sender = by_name.get(intent.sender)
            if sender is None or not sender.reachable:
                continue
            for mid in components:
                if mid.name == sender.name or mid.app == sender.app:
                    continue
                if not mid.exported or not mid.reachable:
                    continue
                if not self._deliverable(intent, sender, mid):
                    continue
                for dst_name in _forward_closure(edges, mid.name):
                    dst = by_name.get(dst_name)
                    if dst is None or dst_name not in drains:
                        continue
                    if dst.app in (sender.app, mid.app):
                        continue
                    report.add("app_collusion", sender.name)
                    report.add("app_collusion", mid.name)
                    report.add("app_collusion", dst.name)

    @staticmethod
    def _deliverable(
        intent: IntentModel, sender: ComponentModel, receiver: ComponentModel
    ) -> bool:
        same_app = sender.app == receiver.app
        if not receiver.exported and not same_app:
            return False
        if intent.passive:
            return receiver.name in intent.passive_targets
        if intent.explicit:
            return intent.target == receiver.name
        from repro.android.intents import Intent as RtIntent
        from repro.android.intents import IntentFilter as RtFilter
        from repro.android.intents import filter_matches

        rt_intent = RtIntent(
            sender=intent.sender,
            action=intent.action,
            categories=intent.categories,
            data_type=intent.data_type,
            data_scheme=intent.data_scheme,
        )
        for filt in receiver.intent_filters:
            if not filt.actions:
                continue
            rt_filter = RtFilter(
                actions=frozenset(filt.actions),
                categories=frozenset(filt.categories),
                data_types=frozenset(filt.data_types),
                data_schemes=frozenset(filt.data_schemes),
            )
            if filter_matches(rt_intent, rt_filter):
                return True
        return False
