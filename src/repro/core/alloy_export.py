"""Rendering bundle specifications as Alloy source text.

SEPAR's pipeline materializes its models in the Alloy language (the paper
shows them in Listings 3-5); translation of captured app models into Alloy
is done with a template engine (FreeMarker in the prototype).  This module
is that exporter: it renders the framework meta-model declarations, each
app's module (the Listing 4 form), and a vulnerability-signature skeleton,
producing text loadable by the real Alloy Analyzer.

The export is *documentation-faithful*, not a second analysis path: the
relational engine consumes the in-memory form directly.
"""

from __future__ import annotations

from typing import List

from repro.android.components import ComponentKind
from repro.core.model import AppModel, BundleModel, ComponentModel, IntentModel

_KIND_SIG = {
    ComponentKind.ACTIVITY: "Activity",
    ComponentKind.SERVICE: "Service",
    ComponentKind.RECEIVER: "Receiver",
    ComponentKind.PROVIDER: "Provider",
}


def _ident(name: str) -> str:
    """Mangle arbitrary names (package/Component, dotted actions) into
    Alloy identifiers."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() else "_")
    ident = "".join(out)
    if ident and ident[0].isdigit():
        ident = "_" + ident
    return ident


FRAMEWORK_MODULE = """\
module androidDeclaration

abstract sig Component {
  app : one Application,
  intentFilters : set IntentFilter,
  permissions : set Permission,
  exposedPermissions : set Permission,
  paths : set Path
}
sig Activity, Service, Receiver, Provider extends Component {}

sig Application { usesPermissions : set Permission }
one sig Device { apps : set Application }

sig IntentFilter {
  actions : some Action,
  categories : set Category,
  dataType : set DataType,
  dataScheme : set DataScheme
}

sig Intent {
  sender : one Component,
  receiver : lone Component,
  action : lone Action,
  categories : set Category,
  dataType : lone DataType,
  dataScheme : lone DataScheme,
  extra : set Resource
}

sig Path { source : one Resource, sink : one Resource }

sig Action, Category, DataType, DataScheme, Permission {}
abstract sig Resource {}
sig SourceResource, SinkResource in Resource {}

fact IFandComponent { all i : IntentFilter | one i.~intentFilters }
fact NoIFforProviders { no i : IntentFilter | i.~intentFilters in Provider }
fact PathAndComponent { all p : Path | one p.~paths }
fact Delivery {
  all i : Intent | all c : i.receiver |
    c in Exported or c.app = i.sender.app
}
sig Exported in Component {}
"""


def render_framework() -> str:
    """The meta-model module (the paper's Listing 3)."""
    return FRAMEWORK_MODULE


def _render_component(app: AppModel, comp: ComponentModel) -> List[str]:
    lines: List[str] = []
    cname = _ident(comp.name)
    filter_names = [f"{cname}_f{i}" for i in range(len(comp.intent_filters))]
    path_names = [f"{cname}_p{i}" for i in range(len(comp.paths))]

    lines.append(f"one sig {cname} extends {_KIND_SIG[comp.kind]} {{}} {{")
    lines.append(f"  app in {_ident(app.package)}")
    if filter_names:
        lines.append(f"  intentFilters = {' + '.join(filter_names)}")
    else:
        lines.append("  no intentFilters")
    if path_names:
        lines.append(f"  paths = {' + '.join(path_names)}")
    else:
        lines.append("  no paths")
    if comp.permissions:
        perms = " + ".join(_ident(p) for p in sorted(comp.permissions))
        lines.append(f"  permissions = {perms}")
    else:
        lines.append("  no permissions")
    if comp.uses_permissions:
        exposed = " + ".join(_ident(p) for p in sorted(comp.uses_permissions))
        lines.append(f"  exposedPermissions = {exposed}")
    lines.append("}")

    for fname, filt in zip(filter_names, comp.intent_filters):
        lines.append(f"one sig {fname} extends IntentFilter {{}} {{")
        lines.append(
            "  actions = " + " + ".join(_ident(a) for a in sorted(filt.actions))
        )
        if filt.categories:
            lines.append(
                "  categories = "
                + " + ".join(_ident(c) for c in sorted(filt.categories))
            )
        if filt.data_schemes:
            lines.append(
                "  dataScheme = "
                + " + ".join(_ident(s) for s in sorted(filt.data_schemes))
            )
        if filt.data_types:
            lines.append(
                "  dataType = "
                + " + ".join(_ident(t) for t in sorted(filt.data_types))
            )
        lines.append("}")

    for pname, path in zip(path_names, comp.paths):
        lines.append(f"one sig {pname} extends Path {{}} {{")
        lines.append(f"  source = {path.source.value}")
        lines.append(f"  sink = {path.sink.value}")
        lines.append("}")
    return lines


def _render_intent(intent: IntentModel) -> List[str]:
    lines = [f"one sig {_ident(intent.entity_id)} extends Intent {{}} {{"]
    lines.append(f"  sender = {_ident(intent.sender)}")
    if intent.target:
        lines.append(f"  receiver = {_ident(intent.target)}")
    else:
        lines.append("  no receiver")
    if intent.action:
        lines.append(f"  action = {_ident(intent.action)}")
    else:
        lines.append("  no action")
    if intent.categories:
        lines.append(
            "  categories = "
            + " + ".join(_ident(c) for c in sorted(intent.categories))
        )
    else:
        lines.append("  no categories")
    lines.append(
        f"  dataType = {_ident(intent.data_type)}"
        if intent.data_type
        else "  no dataType"
    )
    lines.append(
        f"  dataScheme = {_ident(intent.data_scheme)}"
        if intent.data_scheme
        else "  no dataScheme"
    )
    if intent.extras:
        lines.append(
            "  extra = "
            + " + ".join(r.value for r in sorted(intent.extras, key=lambda r: r.value))
        )
    else:
        lines.append("  no extra")
    lines.append("}")
    return lines


def render_app(app: AppModel) -> str:
    """One app's Alloy module (the paper's Listing 4)."""
    lines = [
        f"// module for app {app.package}",
        "open androidDeclaration",
        "",
        f"one sig {_ident(app.package)} extends Application {{}} {{",
    ]
    if app.uses_permissions:
        lines.append(
            "  usesPermissions = "
            + " + ".join(_ident(p) for p in sorted(app.uses_permissions))
        )
    else:
        lines.append("  no usesPermissions")
    lines.append("}")
    lines.append("")
    for comp in app.components:
        lines.extend(_render_component(app, comp))
        lines.append("")
    for intent in app.intents:
        lines.extend(_render_intent(intent))
        lines.append("")
    return "\n".join(lines)


SERVICE_LAUNCH_SIGNATURE = """\
sig GeneratedServiceLaunch {
  disj launchedCmp, malCmp : one Component,
  malIntent : Intent
} {
  malIntent.sender = malCmp
  malIntent.receiver = launchedCmp
  no launchedCmp.app & malCmp.app
  launchedCmp.app in Device.apps
  not (malCmp.app in Device.apps)
  some launchedCmp.paths && some (launchedCmp.paths.source & ICC)
  some malIntent.extra
  launchedCmp in Service
  malCmp in Activity
}
run { some GeneratedServiceLaunch }
"""


def render_service_launch_signature() -> str:
    """The Listing 5 vulnerability signature."""
    return SERVICE_LAUNCH_SIGNATURE


def render_bundle(bundle: BundleModel) -> str:
    """The full analyzable specification for a bundle."""
    parts = [render_framework()]
    for app in bundle.apps:
        parts.append(render_app(app))
    return "\n\n".join(parts)
