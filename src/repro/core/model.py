"""Architectural app specifications -- AME's output, ASE's input.

These dataclasses are the Python rendering of the Alloy app modules of the
paper's Listing 4: components with their Intent filters, enforced
permissions and sensitive data-flow paths; Intents with their attributes
and payload resources.  They are deliberately architectural -- no bytecode
detail survives extraction -- which is what keeps the downstream formal
analysis tractable at real-world scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.android.components import ComponentKind
from repro.android.resources import Resource


@dataclass(frozen=True)
class IntentFilterModel:
    """An extracted Intent filter: one exposure surface of a component."""

    actions: FrozenSet[str]
    categories: FrozenSet[str] = frozenset()
    data_types: FrozenSet[str] = frozenset()
    data_schemes: FrozenSet[str] = frozenset()
    dynamic: bool = False  # registered in code rather than the manifest


@dataclass(frozen=True)
class PathModel:
    """A sensitive data-flow path within a component: source -> sink."""

    source: Resource
    sink: Resource


@dataclass(frozen=True)
class IntentModel:
    """An extracted Intent entity.

    One entity per (allocation site, resolved action value) pair: when
    constant propagation disambiguates a property to several values, AME
    generates a separate entity for each, as each contributes a different
    event message.
    """

    entity_id: str
    sender: str  # qualified component reference package/Component
    target: Optional[str] = None  # explicit recipient, if any
    action: Optional[str] = None
    categories: FrozenSet[str] = frozenset()
    data_type: Optional[str] = None
    data_scheme: Optional[str] = None
    extras: FrozenSet[Resource] = frozenset()
    extra_keys: FrozenSet[str] = frozenset()
    wants_result: bool = False
    passive: bool = False  # a result Intent (startActivityForResult reply)
    passive_targets: FrozenSet[str] = frozenset()
    addressed_kind: Optional[ComponentKind] = None  # kind of the ICC send API

    @property
    def explicit(self) -> bool:
        return self.target is not None


@dataclass(frozen=True)
class ProviderAccessModel:
    """A ContentResolver operation: ICC addressed by URI authority."""

    sender: str  # qualified component
    operation: str  # query / insert / update / delete
    authority: Optional[str]
    payload: FrozenSet[Resource] = frozenset()  # taints of the passed data


@dataclass(frozen=True)
class ComponentModel:
    """An extracted component."""

    name: str  # qualified: package/Component
    kind: ComponentKind
    app: str
    exported: bool
    intent_filters: Tuple[IntentFilterModel, ...] = ()
    permissions: FrozenSet[str] = frozenset()  # enforced on callers
    paths: Tuple[PathModel, ...] = ()
    uses_permissions: FrozenSet[str] = frozenset()  # exercised by its code
    reachable: bool = True  # entry points reachable from the framework
    authority: Optional[str] = None  # Content Providers only
    reads_extra_keys: FrozenSet[str] = frozenset()  # Intent payload keys read

    @property
    def short_name(self) -> str:
        return self.name.split("/", 1)[1] if "/" in self.name else self.name


@dataclass
class AppModel:
    """The full extracted specification of one app."""

    package: str
    uses_permissions: FrozenSet[str] = frozenset()
    components: List[ComponentModel] = field(default_factory=list)
    intents: List[IntentModel] = field(default_factory=list)
    provider_accesses: List[ProviderAccessModel] = field(default_factory=list)
    extraction_seconds: float = 0.0
    apk_size_kb: int = 0
    repository: str = "unknown"

    def component(self, qualified_name: str) -> ComponentModel:
        for comp in self.components:
            if comp.name == qualified_name:
                return comp
        raise KeyError(f"no component {qualified_name!r} in {self.package}")

    def public_components(self) -> List[ComponentModel]:
        return [c for c in self.components if c.exported]

    @property
    def num_filters(self) -> int:
        return sum(len(c.intent_filters) for c in self.components)


@dataclass
class BundleModel:
    """A set of app models jointly installed on one device -- the unit of
    compositional analysis."""

    apps: List[AppModel] = field(default_factory=list)

    def all_components(self) -> List[ComponentModel]:
        return [c for app in self.apps for c in app.components]

    def all_intents(self) -> List[IntentModel]:
        return [i for app in self.apps for i in app.intents]

    def component(self, qualified_name: str) -> ComponentModel:
        for app in self.apps:
            for comp in app.components:
                if comp.name == qualified_name:
                    return comp
        raise KeyError(f"no component {qualified_name!r} in bundle")

    def app_of(self, qualified_name: str) -> AppModel:
        package = qualified_name.split("/", 1)[0]
        for app in self.apps:
            if app.package == package:
                return app
        raise KeyError(f"no app {package!r} in bundle")

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "apps": len(self.apps),
            "components": len(self.all_components()),
            "intents": len(self.all_intents()),
            "intent_filters": sum(a.num_filters for a in self.apps),
        }
