"""Policy derivation: exploit scenarios to event-condition-action rules.

From each synthesized scenario SEPAR derives a fine-grained ECA policy at
the level of event messaging (Section VI).  The paper's running-example
policy is::

    { event: ICC received,
      condition: [{Intent.extra: LOCATION}, {Intent.receiver: MessageSender}],
      action: user prompt }

Conditions are matched by the policy decision point against intercepted ICC
events at runtime; the default action routes to a user prompt, and a policy
may be hardened to outright denial.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.android.resources import Resource
from repro.core.app_to_spec import BundleSpec
from repro.core.model import BundleModel
from repro.core.vulnerabilities.base import ExploitScenario


class PolicyAction(enum.Enum):
    PROMPT = "user_prompt"
    DENY = "deny"


class PolicyEvent(enum.Enum):
    ICC_RECEIVE = "icc_receive"
    ICC_SEND = "icc_send"


@dataclass(frozen=True)
class IccEvent:
    """A runtime ICC occurrence presented to the PDP."""

    sender: str  # qualified component
    receiver: Optional[str]  # resolved recipient (None while unresolved)
    action: Optional[str] = None
    extras: FrozenSet[Resource] = frozenset()
    sender_permissions: FrozenSet[str] = frozenset()

    @property
    def sender_app(self) -> str:
        return self.sender.split("/", 1)[0]


@dataclass(frozen=True)
class ECAPolicy:
    """One synthesized event-condition-action rule."""

    event: PolicyEvent
    vulnerability: str
    action: PolicyAction = PolicyAction.PROMPT
    description: str = ""
    # Conditions (all present ones must hold for the policy to fire):
    receiver: Optional[str] = None
    sender: Optional[str] = None
    intent_action: Optional[str] = None
    extras_any: FrozenSet[Resource] = frozenset()
    allowed_receivers: Optional[FrozenSet[str]] = None
    sender_lacks_permission: Optional[str] = None

    def matches(self, event_kind: PolicyEvent, event: IccEvent) -> bool:
        """Does this intercepted event violate the policy's condition?

        Total over partially-populated events: ``action``, ``extras`` and
        ``sender_permissions`` may be ``None`` on events built outside the
        PEP (an absent field simply fails any condition requiring it).
        """
        if event_kind is not self.event:
            return False
        if self.receiver is not None and event.receiver != self.receiver:
            return False
        if self.sender is not None and event.sender != self.sender:
            return False
        if self.intent_action is not None and event.action != self.intent_action:
            return False
        if self.extras_any and not (
            self.extras_any & (event.extras or frozenset())
        ):
            return False
        if self.allowed_receivers is not None:
            if event.receiver is None or event.receiver in self.allowed_receivers:
                return False
        if self.sender_lacks_permission is not None:
            if self.sender_lacks_permission in (
                event.sender_permissions or frozenset()
            ):
                return False
        return True


def derive_policies(
    scenarios: Iterable[ExploitScenario],
    bundle: BundleModel,
    spec: Optional[BundleSpec] = None,
) -> List[ECAPolicy]:
    """Turn synthesized scenarios into the preventive policy set."""
    if spec is None:
        spec = BundleSpec(bundle)
    policies: List[ECAPolicy] = []
    seen = set()
    for scenario in scenarios:
        policy = _derive_one(scenario, bundle, spec)
        if policy is None:
            continue
        key = (
            policy.event,
            policy.receiver,
            policy.sender,
            policy.intent_action,
            policy.extras_any,
            policy.allowed_receivers,
            policy.sender_lacks_permission,
            policy.vulnerability,
        )
        if key in seen:
            continue
        seen.add(key)
        policies.append(policy)
    return policies


def _derive_one(
    scenario: ExploitScenario, bundle: BundleModel, spec: BundleSpec
) -> Optional[ECAPolicy]:
    vuln = scenario.vulnerability
    intent = scenario.intent or {}
    if vuln in ("service_launch", "activity_launch"):
        victim = scenario.victim_component
        if victim is None:
            return None
        return ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability=vuln,
            receiver=victim,
            extras_any=frozenset(intent.get("extras", frozenset())),
            description=(
                f"Every Intent delivering "
                f"{sorted(r.value for r in intent.get('extras', frozenset()))} "
                f"to {victim} must be approved by the user."
            ),
        )
    if vuln == "intent_hijack":
        sender = scenario.roles.get("victim")
        action = intent.get("action")
        if sender is None:
            return None
        entity_id = scenario.roles.get("vulnerable_intent")
        allowed: FrozenSet[str] = frozenset()
        for app in bundle.apps:
            for model_intent in app.intents:
                if model_intent.entity_id == entity_id:
                    allowed = frozenset(
                        spec.matching_bundle_receivers(model_intent)
                    )
        return ECAPolicy(
            event=PolicyEvent.ICC_SEND,
            vulnerability=vuln,
            sender=sender,
            intent_action=action,
            allowed_receivers=allowed,
            description=(
                f"Implicit Intents with action {action!r} sent by {sender} "
                f"may only reach {sorted(allowed)}; delivery elsewhere "
                f"requires user approval."
            ),
        )
    if vuln == "information_leak":
        sink_cmp = scenario.roles.get("sink_component")
        extras = frozenset(intent.get("extras", frozenset())) & (
            frozenset(Resource) - {Resource.ICC}
        )
        if sink_cmp is None:
            return None
        return ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability=vuln,
            receiver=sink_cmp,
            extras_any=extras,
            description=(
                f"Delivering sensitive payload "
                f"{sorted(r.value for r in extras)} to {sink_cmp} (which "
                f"relays ICC input to a public sink) requires user approval."
            ),
        )
    if vuln in ("privilege_escalation", "permission_redelegation"):
        victim = scenario.victim_component
        permission = scenario.roles.get("escalated_permission")
        if victim is None or permission is None:
            return None
        return ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability=vuln,
            receiver=victim,
            sender_lacks_permission=permission,
            description=(
                f"Callers of {victim} must hold {permission}; requests from "
                f"apps without it require user approval."
                if vuln == "privilege_escalation"
                else f"Callers of {victim} must hold {permission}; the "
                f"capability it guards is re-delegated down an ICC chain, "
                f"so requests from apps without it require user approval."
            ),
        )
    if vuln == "provider_leak":
        provider = scenario.roles.get("victim")
        writer = scenario.roles.get("writer_component")
        if provider is None or writer is None:
            return None
        from repro.core.vulnerabilities.provider_leak import written_payload

        extras = written_payload(bundle, writer, provider)
        return ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability=vuln,
            receiver=provider,
            extras_any=extras,
            description=(
                f"Writing sensitive payload "
                f"{sorted(r.value for r in extras)} into content provider "
                f"{provider} (whose contents escape to a public sink) "
                f"requires user approval."
            ),
        )
    if vuln == "dynamic_receiver_hijack":
        victim = scenario.victim_component
        action = intent.get("action")
        if victim is None:
            return None
        return ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability=vuln,
            receiver=victim,
            intent_action=action,
            description=(
                f"Broadcasts with action {action!r} delivered to the "
                f"dynamically-registered receiver {victim} require user "
                f"approval (the registration carries no permission guard)."
            ),
        )
    if vuln == "app_collusion":
        intermediary = scenario.roles.get("intermediary")
        extras = frozenset(intent.get("extras", frozenset())) & (
            frozenset(Resource) - {Resource.ICC}
        )
        if intermediary is None:
            return None
        return ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability=vuln,
            receiver=intermediary,
            extras_any=extras,
            description=(
                f"Delivering sensitive payload "
                f"{sorted(r.value for r in extras)} to {intermediary} "
                f"(which colluding apps relay to a public sink in a third "
                f"app) requires user approval."
            ),
        )
    return None
