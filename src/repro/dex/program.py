"""Methods, classes, and whole programs.

A :class:`DexProgram` is the code half of an APK: the set of classes the
app defines.  Component classes are linked to manifest entries by name.
Lifecycle methods (``onCreate``, ``onStartCommand``, ``onReceive``,
``onBind``, ``onActivityResult``, ...) are the framework-invoked entry
points AME starts its analyses from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dex.instructions import Goto, If, Instr

# Framework-invoked entry points, and whether their first parameter is the
# received Intent (the ICC data source for taint analysis).
LIFECYCLE_METHODS: Dict[str, bool] = {
    "onCreate": True,
    "onStart": True,
    "onStartCommand": True,
    "onBind": True,
    "onReceive": True,
    "onActivityResult": True,
    "onNewIntent": True,
    # Content-provider entry points carry no Intent.
    "query": False,
    "insert": False,
    "update": False,
    "delete": False,
}


@dataclass
class DexMethod:
    """A method body: named parameters plus a straight-line instruction list
    with explicit branch targets."""

    name: str
    params: Tuple[str, ...] = ()
    instructions: List[Instr] = field(default_factory=list)
    class_name: str = ""  # filled when attached to a class

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        limit = len(self.instructions)
        for idx, instr in enumerate(self.instructions):
            if isinstance(instr, (Goto, If)) and not (0 <= instr.target <= limit):
                raise ValueError(
                    f"branch target {instr.target} out of range in "
                    f"{self.class_name}.{self.name}[{idx}]"
                )

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    @property
    def is_entry_point(self) -> bool:
        return self.name in LIFECYCLE_METHODS

    @property
    def receives_intent(self) -> bool:
        return LIFECYCLE_METHODS.get(self.name, False) and bool(self.params)


@dataclass
class DexClass:
    """A class: a name, an optional superclass, and its methods."""

    name: str
    superclass: str = "Object"
    methods: List[DexMethod] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [m.name for m in self.methods]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate method names in class {self.name}")
        for method in self.methods:
            method.class_name = self.name

    def add_method(self, method: DexMethod) -> DexMethod:
        if any(m.name == method.name for m in self.methods):
            raise ValueError(f"duplicate method {method.name} in {self.name}")
        method.class_name = self.name
        self.methods.append(method)
        return method

    def method(self, name: str) -> DexMethod:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(f"no method {name!r} in class {self.name}")

    def has_method(self, name: str) -> bool:
        return any(m.name == name for m in self.methods)


@dataclass
class DexProgram:
    """The code of one app: its classes, indexed by name."""

    classes: List[DexClass] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.classes]
        if len(names) != len(set(names)):
            raise ValueError("duplicate class names in program")
        self._by_name = {c.name: c for c in self.classes}

    def add_class(self, cls: DexClass) -> DexClass:
        if cls.name in self._by_name:
            raise ValueError(f"duplicate class {cls.name}")
        self.classes.append(cls)
        self._by_name[cls.name] = cls
        return cls

    def cls(self, name: str) -> DexClass:
        return self._by_name[name]

    def has_class(self, name: str) -> bool:
        return name in self._by_name

    def lookup(self, signature: str) -> Optional[DexMethod]:
        """Resolve ``Class.method`` to an app-defined method, if any."""
        class_name, _, method_name = signature.rpartition(".")
        cls = self._by_name.get(class_name)
        if cls is None or not cls.has_method(method_name):
            return None
        return cls.method(method_name)

    def all_methods(self) -> Iterable[DexMethod]:
        for cls in self.classes:
            yield from cls.methods

    def instruction_count(self) -> int:
        return sum(len(m.instructions) for m in self.all_methods())
