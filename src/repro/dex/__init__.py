"""A compact Dalvik-like register bytecode IR.

Real SEPAR consumes dalvik bytecode inside APK files.  This reproduction
defines a register-based intermediate representation with the instruction
shapes the paper's analyses care about -- string constants, moves, object
allocation, virtual/static invokes (platform API and app-internal), heap
field accesses, branches -- plus classes, methods, and whole programs.
AME's control-flow, call-graph, constant-propagation, alias, and taint
analyses all run over this IR for real.

- :mod:`repro.dex.instructions` -- the instruction set.
- :mod:`repro.dex.program` -- methods, classes, programs.
- :mod:`repro.dex.builder` -- a fluent method assembler used by the
  benchmark suites and the synthetic corpus generator.
"""

from repro.dex.instructions import (
    ConstString,
    Goto,
    IGet,
    IPut,
    If,
    Invoke,
    Move,
    NewInstance,
    Return,
    SGet,
    SPut,
)
from repro.dex.program import DexClass, DexMethod, DexProgram
from repro.dex.builder import MethodBuilder

__all__ = [
    "ConstString",
    "Goto",
    "IGet",
    "IPut",
    "If",
    "Invoke",
    "Move",
    "NewInstance",
    "Return",
    "SGet",
    "SPut",
    "DexClass",
    "DexMethod",
    "DexProgram",
    "MethodBuilder",
]
