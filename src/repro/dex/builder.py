"""A fluent assembler for IR method bodies.

Used throughout the benchmark suites and the synthetic corpus generator to
write app code compactly::

    m = (MethodBuilder("onStartCommand", params=("p0",))
         .new_instance("v0", "Intent")
         .const_string("v1", "showLoc")
         .invoke("Intent.setAction", receiver="v0", args=("v1",))
         .invoke("Context.startService", args=("v0",))
         .ret()
         .build())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dex.instructions import (
    ConstString,
    Goto,
    IGet,
    IPut,
    If,
    Instr,
    Invoke,
    Move,
    NewInstance,
    Return,
    SGet,
    SPut,
)
from repro.dex.program import DexMethod


class MethodBuilder:
    """Accumulates instructions; labels support forward branches."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self._name = name
        self._params = tuple(params)
        self._instructions: List[Instr] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[Tuple[int, str]] = []

    # -- plumbing -------------------------------------------------------
    def _emit(self, instr: Instr) -> "MethodBuilder":
        self._instructions.append(instr)
        return self

    def label(self, name: str) -> "MethodBuilder":
        """Define a label at the next instruction index."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    # -- instructions ----------------------------------------------------
    def const_string(self, dest: str, value: str) -> "MethodBuilder":
        return self._emit(ConstString(dest, value))

    def move(self, dest: str, src: str) -> "MethodBuilder":
        return self._emit(Move(dest, src))

    def new_instance(self, dest: str, type_name: str) -> "MethodBuilder":
        return self._emit(NewInstance(dest, type_name))

    def invoke(
        self,
        signature: str,
        receiver: Optional[str] = None,
        args: Sequence[str] = (),
        dest: Optional[str] = None,
    ) -> "MethodBuilder":
        return self._emit(Invoke(signature, receiver, tuple(args), dest))

    def iget(self, dest: str, obj: str, field_name: str) -> "MethodBuilder":
        return self._emit(IGet(dest, obj, field_name))

    def iput(self, obj: str, field_name: str, src: str) -> "MethodBuilder":
        return self._emit(IPut(obj, field_name, src))

    def sget(self, dest: str, class_field: str) -> "MethodBuilder":
        return self._emit(SGet(dest, class_field))

    def sput(self, class_field: str, src: str) -> "MethodBuilder":
        return self._emit(SPut(class_field, src))

    def if_goto(self, cond: str, label: str) -> "MethodBuilder":
        self._fixups.append((len(self._instructions), label))
        return self._emit(If(cond, -1))

    def goto(self, label: str) -> "MethodBuilder":
        self._fixups.append((len(self._instructions), label))
        return self._emit(Goto(-1))

    def ret(self, src: Optional[str] = None) -> "MethodBuilder":
        return self._emit(Return(src))

    # -- finish ----------------------------------------------------------
    def build(self) -> DexMethod:
        instructions = list(self._instructions)
        for index, label in self._fixups:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r}")
            target = self._labels[label]
            old = instructions[index]
            if isinstance(old, If):
                instructions[index] = If(old.cond, target)
            else:
                instructions[index] = Goto(target)
        if not instructions or not isinstance(instructions[-1], (Return, Goto)):
            instructions.append(Return())
        return DexMethod(self._name, self._params, instructions)
