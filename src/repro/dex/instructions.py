"""The IR instruction set.

Registers are named strings (``v0``, ``v1``, ...; parameters conventionally
``p0``, ``p1``, ...).  Branch targets are instruction indices within the
owning method.  Conditional branches carry an opaque condition register:
the paper's analysis is deliberately *not* path-sensitive (Section IV), so
no instruction encodes what the condition tests -- only that control may
flow both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class Instr:
    """Base class for IR instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class ConstString(Instr):
    """``dest := "value"`` -- the anchor for string constant propagation."""

    dest: str
    value: str


@dataclass(frozen=True)
class Move(Instr):
    """``dest := src`` (register copy)."""

    dest: str
    src: str


@dataclass(frozen=True)
class NewInstance(Instr):
    """``dest := new TypeName()`` -- Intent/IntentFilter/etc. allocation."""

    dest: str
    type_name: str


@dataclass(frozen=True)
class Invoke(Instr):
    """A method call, platform API or app-internal.

    ``signature`` is ``Class.method`` -- platform classes (``Intent``,
    ``SmsManager``, ``Context``, ...) denote framework APIs; any class
    defined by the enclosing program denotes an app-internal call.
    ``receiver`` is the register holding the receiver object (None for
    static calls), ``args`` the argument registers, ``dest`` the optional
    result register.
    """

    signature: str
    receiver: Optional[str] = None
    args: Tuple[str, ...] = ()
    dest: Optional[str] = None

    @property
    def class_name(self) -> str:
        return self.signature.rsplit(".", 1)[0]

    @property
    def method_name(self) -> str:
        return self.signature.rsplit(".", 1)[1]


@dataclass(frozen=True)
class IGet(Instr):
    """``dest := obj.field`` (instance field read)."""

    dest: str
    obj: str
    field_name: str


@dataclass(frozen=True)
class IPut(Instr):
    """``obj.field := src`` (instance field write)."""

    obj: str
    field_name: str
    src: str


@dataclass(frozen=True)
class SGet(Instr):
    """``dest := Class.field`` (static field read)."""

    dest: str
    class_field: str


@dataclass(frozen=True)
class SPut(Instr):
    """``Class.field := src`` (static field write)."""

    class_field: str
    src: str


@dataclass(frozen=True)
class If(Instr):
    """Conditional branch on an opaque condition: may fall through or jump."""

    cond: str
    target: int


@dataclass(frozen=True)
class Goto(Instr):
    """Unconditional jump."""

    target: int


@dataclass(frozen=True)
class Return(Instr):
    """Method return, optionally carrying a value register."""

    src: Optional[str] = None


def defined_register(instr: Instr) -> Optional[str]:
    """The register an instruction writes, if any."""
    if isinstance(instr, (ConstString, Move, NewInstance, IGet, SGet)):
        return instr.dest
    if isinstance(instr, Invoke):
        return instr.dest
    return None


def used_registers(instr: Instr) -> Tuple[str, ...]:
    """The registers an instruction reads."""
    if isinstance(instr, Move):
        return (instr.src,)
    if isinstance(instr, Invoke):
        regs = tuple(instr.args)
        if instr.receiver is not None:
            regs = (instr.receiver,) + regs
        return regs
    if isinstance(instr, IGet):
        return (instr.obj,)
    if isinstance(instr, IPut):
        return (instr.obj, instr.src)
    if isinstance(instr, SPut):
        return (instr.src,)
    if isinstance(instr, If):
        return (instr.cond,)
    if isinstance(instr, Return) and instr.src is not None:
        return (instr.src,)
    return ()
