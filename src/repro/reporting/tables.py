"""ASCII table and histogram rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with column auto-sizing."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(
                cell.ljust(widths[i]) if i < len(widths) else cell
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_histogram(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart for figure-style output."""
    if not values:
        return title
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
