"""ASCII rendering of synthesized exploit scenarios.

The paper presents each solver instance as a diagram (the Section V
figure): the postulated malicious elements, the victim components, and the
Intent edges between them.  This renderer produces the textual analogue
for any :class:`~repro.core.vulnerabilities.base.ExploitScenario`.
"""

from __future__ import annotations

from typing import List

from repro.core.vulnerabilities.base import ExploitScenario


def _box(lines: List[str]) -> List[str]:
    width = max(len(l) for l in lines)
    top = "+" + "-" * (width + 2) + "+"
    body = [f"| {l.ljust(width)} |" for l in lines]
    return [top] + body + [top]


def render_scenario(scenario: ExploitScenario) -> str:
    """A boxed, arrowed rendering of one scenario."""
    out: List[str] = [f"=== synthesized scenario: {scenario.vulnerability} ==="]

    attacker = scenario.roles.get("malicious_component") or scenario.roles.get(
        "thief"
    )
    victim = scenario.victim_component
    intent = scenario.intent or {}

    if attacker:
        attacker_lines = [f"malicious: {attacker}", "app NOT on device"]
        if scenario.malicious_filter:
            actions = ", ".join(sorted(scenario.malicious_filter["actions"]))
            attacker_lines.append(f"declares filter [actions: {actions}]")
        out.extend(_box(attacker_lines))

    if intent:
        action = intent.get("action")
        extras = ", ".join(sorted(r.value for r in intent.get("extras", ())))
        arrow_label = f"Intent(action={action!r}"
        if extras:
            arrow_label += f", extra=[{extras}]"
        arrow_label += ")"
        direction = "v" if attacker else "|"
        out.append(f"      |  {arrow_label}")
        out.append(f"      {direction}")

    if victim:
        victim_lines = [f"victim: {victim}", "app on device"]
        sink = scenario.roles.get("sink_component")
        if sink and sink != victim:
            victim_lines.append(f"relays into: {sink}")
        permission = scenario.roles.get("escalated_permission")
        if permission:
            victim_lines.append(f"exposes: {permission} (unenforced)")
        out.extend(_box(victim_lines))

    out.append("")
    out.append(scenario.description)
    return "\n".join(out)


def render_scenarios(scenarios: List[ExploitScenario]) -> str:
    return "\n\n".join(render_scenario(s) for s in scenarios)
