"""Plain-text rendering of the reproduced tables and figures."""

from repro.reporting.tables import render_table, render_histogram

__all__ = ["render_table", "render_histogram"]
