"""Intent and Intent-filter extraction (Section IV, "Intent Extraction").

Walks the reachable code of each manifest component, resolves the Intents
it constructs and sends through ICC APIs, and resolves each Intent's
attributes (action, categories, data, extras keys, explicit target) through
the value analysis.  Where constant propagation disambiguates a property to
several values, a separate Intent entity is generated per value, since each
contributes a different event message.

Also implements:

- **Algorithm 1** (passive-Intent target resolution): a result Intent sent
  back through ``setResult`` carries no addressing information; its targets
  are the senders of Intents that requested a result from this component.
- **Dynamic Intent-filter registration** (``registerReceiver``): collected
  into :attr:`ExtractionResult.dynamic_filters` but *not* merged into the
  app model by default -- SEPAR's extractor does not handle dynamically
  registered Broadcast Receivers (the paper's only DroidBench misses);
  the extension flag in :mod:`repro.statics.extractor` opts in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.android.apk import Apk
from repro.android.components import ComponentKind
from repro.android.intents import IntentFilter
from repro.core.model import IntentFilterModel, IntentModel
from repro.dex.instructions import Invoke
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import ObjVal, ValueAnalysis

# ICC send APIs -> (component kind addressed, requests a result?)
ICC_SEND_APIS: Dict[str, Tuple[ComponentKind, bool]] = {
    "Context.startService": (ComponentKind.SERVICE, False),
    "Context.startActivity": (ComponentKind.ACTIVITY, False),
    "Context.startActivityForResult": (ComponentKind.ACTIVITY, True),
    "Context.bindService": (ComponentKind.SERVICE, True),
    "Context.sendBroadcast": (ComponentKind.RECEIVER, False),
    "Context.sendOrderedBroadcast": (ComponentKind.RECEIVER, False),
}

# ContentResolver operations address providers by URI authority.
RESOLVER_APIS = {
    "ContentResolver.query",
    "ContentResolver.insert",
    "ContentResolver.update",
    "ContentResolver.delete",
}

SET_RESULT_API = "Activity.setResult"
REGISTER_RECEIVER_API = "Context.registerReceiver"

_TARGET_SETTERS = {"Intent.setClass", "Intent.setClassName", "Intent.setComponent"}


@dataclass
class IntentSite:
    """Accumulated attributes of one Intent allocation site."""

    obj: ObjVal
    actions: Set[str] = field(default_factory=set)
    categories: Set[str] = field(default_factory=set)
    data_types: Set[str] = field(default_factory=set)
    data_schemes: Set[str] = field(default_factory=set)
    targets: Set[str] = field(default_factory=set)
    extra_keys: Set[str] = field(default_factory=set)
    senders: Set[str] = field(default_factory=set)  # qualified component names
    kinds: Set[ComponentKind] = field(default_factory=set)  # addressed kinds
    wants_result: bool = False
    passive: bool = False
    sent: bool = False


@dataclass
class DynamicFilterReg:
    """A ``registerReceiver`` occurrence."""

    receiver_class: str
    filter_model: IntentFilterModel
    component: str  # qualified component whose code registers it


@dataclass
class ResolverCall:
    """A ContentResolver operation (provider ICC)."""

    sender: str  # qualified component
    operation: str  # query/insert/update/delete
    authority: Optional[str]
    site: Tuple[str, int] = ("", -1)  # (method, instruction index)


@dataclass
class ExtractionResult:
    sites: Dict[Tuple[str, int], IntentSite]
    intents: List[IntentModel]
    dynamic_filters: List[DynamicFilterReg]
    resolver_calls: List[ResolverCall]


class IntentExtraction:
    """Runs over one app's call graph + value analysis."""

    def __init__(
        self,
        apk: Apk,
        callgraph: CallGraph,
        values: ValueAnalysis,
        all_roots: bool = False,
    ) -> None:
        self.apk = apk
        self.callgraph = callgraph
        self.values = values
        self.all_roots = all_roots
        self.sites: Dict[Tuple[str, int], IntentSite] = {}
        self.filter_sites: Dict[Tuple[str, int], IntentFilterModel] = {}
        self._filter_attrs: Dict[Tuple[str, int], Dict[str, Set[str]]] = {}
        self.dynamic_filters: List[DynamicFilterReg] = []
        self.resolver_calls: List[ResolverCall] = []

    # ------------------------------------------------------------------
    def run(
        self,
        extras_taint: Optional[Dict[Tuple[str, int], Set]] = None,
    ) -> ExtractionResult:
        component_methods = self._methods_per_component()
        # Pass 1: attribute accumulation over all reachable code.
        all_reachable = set().union(*component_methods.values()) if component_methods else set()
        for method in self.callgraph.program.all_methods():
            if method.qualified_name not in all_reachable:
                continue
            cfg = self.callgraph.cfgs[method.qualified_name]
            live = cfg.reachable_instructions()
            for idx in sorted(live):
                instr = method.instructions[idx]
                if isinstance(instr, Invoke):
                    self._record_attributes(method.qualified_name, idx, instr)
        # Pass 2: ICC send sites, attributed to the owning components.
        for component, methods in component_methods.items():
            for method_name in methods:
                method = self.callgraph.program.lookup(method_name)
                if method is None:
                    continue
                cfg = self.callgraph.cfgs[method_name]
                live = cfg.reachable_instructions()
                for idx in sorted(live):
                    instr = method.instructions[idx]
                    if isinstance(instr, Invoke):
                        self._record_send(component, method_name, idx, instr)
        intents = self._materialize(extras_taint or {})
        return ExtractionResult(
            sites=self.sites,
            intents=intents,
            dynamic_filters=self.dynamic_filters,
            resolver_calls=self.resolver_calls,
        )

    def _methods_per_component(self) -> Dict[str, FrozenSet[str]]:
        result = {}
        for comp in self.apk.manifest.components:
            qualified = self.apk.manifest.qualified(comp)
            result[qualified] = self.callgraph.reachable_methods_of_component(
                comp.name, all_roots=self.all_roots
            )
        return result

    # ------------------------------------------------------------------
    def _site_of(self, obj: ObjVal) -> IntentSite:
        site = self.sites.get(obj.site)
        if site is None:
            site = IntentSite(obj)
            self.sites[obj.site] = site
        return site

    def _record_attributes(self, method: str, idx: int, instr: Invoke) -> None:
        sig = instr.signature
        if sig.startswith("Intent.") and instr.receiver is not None:
            for obj in self.values.receiver_objects(method, idx, instr.receiver):
                if obj.type_name != "Intent":
                    continue
                site = self._site_of(obj)
                self._apply_intent_setter(site, method, idx, instr)
        elif sig.startswith("IntentFilter.") and instr.receiver is not None:
            for obj in self.values.receiver_objects(method, idx, instr.receiver):
                if obj.type_name != "IntentFilter":
                    continue
                attrs = self._filter_attrs.setdefault(
                    obj.site,
                    {"actions": set(), "categories": set(), "types": set(),
                     "schemes": set()},
                )
                arg_strings = (
                    self.values.strings_of(method, idx, instr.args[0])
                    if instr.args
                    else []
                )
                if sig == "IntentFilter.addAction":
                    attrs["actions"].update(arg_strings)
                elif sig == "IntentFilter.addCategory":
                    attrs["categories"].update(arg_strings)
                elif sig == "IntentFilter.addDataType":
                    attrs["types"].update(arg_strings)
                elif sig == "IntentFilter.addDataScheme":
                    attrs["schemes"].update(arg_strings)

    def _apply_intent_setter(
        self, site: IntentSite, method: str, idx: int, instr: Invoke
    ) -> None:
        sig = instr.signature
        args = instr.args

        def strings(ai: int) -> List[str]:
            return self.values.strings_of(method, idx, args[ai]) if len(args) > ai else []

        if sig == "Intent.setAction":
            site.actions.update(strings(0))
        elif sig == "Intent.addCategory":
            site.categories.update(strings(0))
        elif sig == "Intent.setType":
            site.data_types.update(strings(0))
        elif sig == "Intent.setData":
            for uri in strings(0):
                scheme = uri.split("://", 1)[0] if "://" in uri else uri
                site.data_schemes.add(scheme)
        elif sig == "Intent.setDataAndType":
            for uri in strings(0):
                scheme = uri.split("://", 1)[0] if "://" in uri else uri
                site.data_schemes.add(scheme)
            site.data_types.update(strings(1))
        elif sig in _TARGET_SETTERS:
            site.targets.update(strings(0))
        elif sig == "Intent.putExtra":
            site.extra_keys.update(strings(0))

    # ------------------------------------------------------------------
    def _record_send(
        self, component: str, method: str, idx: int, instr: Invoke
    ) -> None:
        sig = instr.signature
        if sig in ICC_SEND_APIS:
            kind, wants_result = ICC_SEND_APIS[sig]
            if not instr.args:
                return
            for obj in self.values.receiver_objects(method, idx, instr.args[0]):
                if obj.type_name != "Intent":
                    continue
                site = self._site_of(obj)
                site.senders.add(component)
                site.kinds.add(kind)
                site.sent = True
                site.wants_result = site.wants_result or wants_result
        elif sig == SET_RESULT_API:
            if not instr.args:
                return
            for obj in self.values.receiver_objects(method, idx, instr.args[0]):
                if obj.type_name != "Intent":
                    continue
                site = self._site_of(obj)
                site.senders.add(component)
                site.passive = True
                site.sent = True
        elif sig == REGISTER_RECEIVER_API:
            self._record_dynamic_registration(component, method, idx, instr)
        elif sig in RESOLVER_APIS:
            authority = None
            if instr.args:
                for uri in self.values.strings_of(method, idx, instr.args[0]):
                    if uri.startswith("content://"):
                        authority = uri[len("content://"):].split("/", 1)[0]
            self.resolver_calls.append(
                ResolverCall(
                    sender=component,
                    operation=sig.rsplit(".", 1)[1],
                    authority=authority,
                    site=(method, idx),
                )
            )

    def _record_dynamic_registration(
        self, component: str, method: str, idx: int, instr: Invoke
    ) -> None:
        if len(instr.args) < 2:
            return
        receiver_classes = [
            o.type_name
            for o in self.values.receiver_objects(method, idx, instr.args[0])
        ]
        for fobj in self.values.receiver_objects(method, idx, instr.args[1]):
            attrs = self._filter_attrs.get(fobj.site)
            if attrs is None or not attrs["actions"]:
                continue
            model = IntentFilterModel(
                actions=frozenset(attrs["actions"]),
                categories=frozenset(attrs["categories"]),
                data_types=frozenset(attrs["types"]),
                data_schemes=frozenset(attrs["schemes"]),
                dynamic=True,
            )
            for receiver_class in receiver_classes or ["<anonymous>"]:
                self.dynamic_filters.append(
                    DynamicFilterReg(receiver_class, model, component)
                )

    # ------------------------------------------------------------------
    def _materialize(
        self, extras_taint: Dict[Tuple[str, int], Set]
    ) -> List[IntentModel]:
        """Explode accumulated sites into Intent entities.

        One entity per (sender, action, target, data_type, data_scheme)
        combination -- single-valued attributes are exploded, set-valued
        ones (categories, extras) are kept as sets.  ``extras_taint``
        supplies the resources the taint analysis saw flowing into each
        site's payload (the ``extra`` field of the Alloy Intent model).
        """
        intents: List[IntentModel] = []
        counter = 0
        for key in sorted(self.sites):
            site = self.sites[key]
            if not site.sent:
                continue
            carried = frozenset(extras_taint.get(key, ()))
            actions = sorted(site.actions) or [None]
            targets = sorted(site.targets) or [None]
            types = sorted(site.data_types) or [None]
            schemes = sorted(site.data_schemes) or [None]
            kinds = sorted(site.kinds, key=lambda k: k.value) or [None]
            for sender in sorted(site.senders):
              for kind in kinds:
                for action in actions:
                    for target in targets:
                        for dtype in types:
                            for scheme in schemes:
                                counter += 1
                                intents.append(
                                    IntentModel(
                                        entity_id=f"{self.apk.package}:intent{counter}",
                                        sender=sender,
                                        target=self._qualify(target),
                                        action=action,
                                        categories=frozenset(site.categories),
                                        data_type=dtype,
                                        data_scheme=scheme,
                                        extras=carried,
                                        extra_keys=frozenset(site.extra_keys),
                                        wants_result=site.wants_result,
                                        passive=site.passive,
                                        addressed_kind=kind,
                                    )
                                )
        return intents

    def _qualify(self, target: Optional[str]) -> Optional[str]:
        if target is None:
            return None
        if "/" in target:
            return target
        return f"{self.apk.package}/{target}"


def update_passive_intent_targets(
    intents: List[IntentModel],
) -> List[IntentModel]:
    """Algorithm 1: for each passive Intent ``p``, add to its target set the
    senders of Intents that request a result and target ``p``'s sender."""
    updated: List[IntentModel] = []
    for p in intents:
        if not p.passive:
            updated.append(p)
            continue
        targets = set(p.passive_targets)
        for i in intents:
            if i is p or not i.wants_result:
                continue
            if i.target is not None and i.target == p.sender:
                targets.add(i.sender)
        updated.append(
            IntentModel(
                entity_id=p.entity_id,
                sender=p.sender,
                target=p.target,
                action=p.action,
                categories=p.categories,
                data_type=p.data_type,
                data_scheme=p.data_scheme,
                extras=p.extras,
                extra_keys=p.extra_keys,
                wants_result=p.wants_result,
                passive=True,
                passive_targets=frozenset(targets),
                addressed_kind=p.addressed_kind,
            )
        )
    return updated
