"""Intra-procedural control-flow graphs.

Basic blocks are maximal straight-line instruction runs; edges follow
fall-through, unconditional ``Goto``, and both arms of ``If``.  The CFG
also answers instruction-level reachability, which the benchmark suites
exercise through DroidBench's unreachable-but-vulnerable components
(reporting a leak in dead code is a false positive)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.dex.instructions import Goto, If, Return
from repro.dex.program import DexMethod


@dataclass
class BasicBlock:
    index: int
    start: int  # first instruction index (inclusive)
    end: int  # last instruction index (exclusive)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def instruction_indices(self) -> range:
        return range(self.start, self.end)


class ControlFlowGraph:
    """CFG of one method."""

    def __init__(self, method: DexMethod) -> None:
        self.method = method
        self.blocks: List[BasicBlock] = []
        self._block_of_instr: Dict[int, int] = {}
        self._build()

    def _leaders(self) -> List[int]:
        instrs = self.method.instructions
        leaders: Set[int] = {0} if instrs else set()
        for idx, instr in enumerate(instrs):
            if isinstance(instr, (Goto, If)):
                if instr.target < len(instrs):
                    leaders.add(instr.target)
                if idx + 1 < len(instrs):
                    leaders.add(idx + 1)
            elif isinstance(instr, Return) and idx + 1 < len(instrs):
                leaders.add(idx + 1)
        return sorted(leaders)

    def _build(self) -> None:
        instrs = self.method.instructions
        if not instrs:
            return
        leaders = self._leaders()
        boundaries = leaders + [len(instrs)]
        for bi in range(len(leaders)):
            block = BasicBlock(bi, boundaries[bi], boundaries[bi + 1])
            self.blocks.append(block)
            for ii in block.instruction_indices:
                self._block_of_instr[ii] = bi
        for block in self.blocks:
            last = instrs[block.end - 1]
            if isinstance(last, Goto):
                if last.target < len(instrs):
                    self._edge(block.index, self._block_of_instr[last.target])
            elif isinstance(last, If):
                if last.target < len(instrs):
                    self._edge(block.index, self._block_of_instr[last.target])
                if block.end < len(instrs):
                    self._edge(block.index, self._block_of_instr[block.end])
            elif isinstance(last, Return):
                pass
            elif block.end < len(instrs):
                self._edge(block.index, self._block_of_instr[block.end])

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
            self.blocks[dst].predecessors.append(src)

    # ------------------------------------------------------------------
    def block_of(self, instruction_index: int) -> BasicBlock:
        return self.blocks[self._block_of_instr[instruction_index]]

    def reachable_blocks(self) -> FrozenSet[int]:
        if not self.blocks:
            return frozenset()
        seen = {0}
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return frozenset(seen)

    def reachable_instructions(self) -> FrozenSet[int]:
        indices: Set[int] = set()
        for bi in self.reachable_blocks():
            indices.update(self.blocks[bi].instruction_indices)
        return frozenset(indices)

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph({self.method.qualified_name}, "
            f"{len(self.blocks)} blocks)"
        )
