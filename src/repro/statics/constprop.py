"""Inter-procedural value analysis: string constants and points-to.

This is the engine behind AME's Intent extraction.  It computes, for every
program point, the set of abstract values each register may hold:

- :class:`StrVal` -- a string constant (the paper's string constant
  propagation; Android code builds Intent actions, categories, and extras
  keys from constant strings by convention);
- :class:`ObjVal` -- an abstract object identified by its allocation site
  (Intent and IntentFilter tracking is points-to over these);
- :class:`IntentParamVal` -- the Intent a component entry point received
  from the framework;
- :data:`UNKNOWN` -- anything the analysis cannot resolve.

The analysis is a forward, flow-sensitive may-analysis per method (worklist
over CFG blocks, union at joins) embedded in a whole-app fixpoint that
flows values across app-internal calls (arguments to parameters, returns to
call-site destinations) and through the heap.  Heap fields are handled the
way the paper describes its on-demand alias analysis: a store to a field
makes the stored values observable at every load of that field (per
allocation site when the base object is resolved, per field name
otherwise), iterated to fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dex.instructions import (
    ConstString,
    IGet,
    IPut,
    Instr,
    Invoke,
    Move,
    NewInstance,
    Return,
    SGet,
    SPut,
)
from repro.dex.program import DexMethod
from repro.statics.callgraph import CallGraph


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StrVal:
    value: str

    def __repr__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class ObjVal:
    """An abstract object named by its allocation site."""

    method: str  # qualified method name
    index: int  # instruction index of the NewInstance
    type_name: str

    @property
    def site(self) -> Tuple[str, int]:
        return (self.method, self.index)

    def __repr__(self) -> str:
        return f"{self.type_name}@{self.method}[{self.index}]"


@dataclass(frozen=True)
class IntentParamVal:
    """The Intent delivered by the framework to a component entry point."""

    component_class: str

    def __repr__(self) -> str:
        return f"<intent-param {self.component_class}>"


class _Unknown:
    _instance: Optional["_Unknown"] = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN"


UNKNOWN = _Unknown()

Value = object  # StrVal | ObjVal | IntentParamVal | _Unknown
ValueSet = FrozenSet[Value]
EMPTY: ValueSet = frozenset()

# Platform getters whose results carry the receiving component's Intent.
_GET_INTENT_APIS = {"Activity.getIntent", "Context.getIntent"}


class ValueAnalysis:
    """Whole-app value analysis over a :class:`CallGraph`."""

    def __init__(self, callgraph: CallGraph, max_rounds: int = 12) -> None:
        self.callgraph = callgraph
        self.program = callgraph.program
        self.max_rounds = max_rounds
        # Global (flow-insensitive) stores discovered so far.
        self._heap_by_site: Dict[Tuple[Tuple[str, int], str], Set[Value]] = {}
        self._heap_by_field: Dict[str, Set[Value]] = {}
        self._statics: Dict[str, Set[Value]] = {}
        self._param_in: Dict[Tuple[str, int], Set[Value]] = {}
        self._returns: Dict[str, Set[Value]] = {}
        # Final result: register states *before* each instruction.
        self.states_before: Dict[Tuple[str, int], Dict[str, ValueSet]] = {}
        self._run()

    # ------------------------------------------------------------------
    def values_before(self, method: str, index: int) -> Dict[str, ValueSet]:
        return self.states_before.get((method, index), {})

    def receiver_objects(self, method: str, index: int, register: str) -> List[ObjVal]:
        state = self.values_before(method, index)
        return [v for v in state.get(register, EMPTY) if isinstance(v, ObjVal)]

    def strings_of(self, method: str, index: int, register: str) -> List[str]:
        state = self.values_before(method, index)
        return sorted(
            v.value for v in state.get(register, EMPTY) if isinstance(v, StrVal)
        )

    # ------------------------------------------------------------------
    def _entry_state(self, method: DexMethod) -> Dict[str, ValueSet]:
        state: Dict[str, ValueSet] = {}
        for pi, param in enumerate(method.params):
            incoming: Set[Value] = set(self._param_in.get((method.qualified_name, pi), ()))
            if pi == 0 and method.receives_intent:
                incoming.add(IntentParamVal(method.class_name))
            if not incoming:
                incoming.add(UNKNOWN)
            state[param] = frozenset(incoming)
        return state

    def _run(self) -> None:
        methods = list(self.program.all_methods())
        for _ in range(self.max_rounds):
            changed = False
            for method in methods:
                changed |= self._analyze_method(method)
            if not changed:
                break

    def _analyze_method(self, method: DexMethod) -> bool:
        cfg = self.callgraph.cfgs[method.qualified_name]
        if not cfg.blocks:
            return False
        entry = self._entry_state(method)
        block_in: Dict[int, Dict[str, ValueSet]] = {0: entry}
        worklist = [0]
        visited_out: Dict[int, Dict[str, ValueSet]] = {}
        changed_global = False
        states_local: Dict[int, Dict[str, ValueSet]] = {}
        reachable = cfg.reachable_blocks()

        while worklist:
            bi = worklist.pop()
            if bi not in reachable:
                continue
            state = dict(block_in.get(bi, {}))
            block = cfg.blocks[bi]
            for ii in block.instruction_indices:
                states_local[ii] = dict(state)
                changed_global |= self._transfer(
                    method, ii, method.instructions[ii], state
                )
            out = state
            prev_out = visited_out.get(bi)
            if prev_out == out:
                continue
            visited_out[bi] = out
            for succ in block.successors:
                merged = self._merge(block_in.get(succ), out)
                if merged != block_in.get(succ):
                    block_in[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)

        # Publish instruction-entry states; report change for the fixpoint.
        for ii, regs in states_local.items():
            key = (method.qualified_name, ii)
            frozen = {r: vs for r, vs in regs.items()}
            if self.states_before.get(key) != frozen:
                self.states_before[key] = frozen
                changed_global = True
        return changed_global

    @staticmethod
    def _merge(
        left: Optional[Dict[str, ValueSet]], right: Dict[str, ValueSet]
    ) -> Dict[str, ValueSet]:
        if left is None:
            return dict(right)
        merged = dict(left)
        for reg, values in right.items():
            merged[reg] = merged.get(reg, EMPTY) | values
        return merged

    # ------------------------------------------------------------------
    def _transfer(
        self,
        method: DexMethod,
        index: int,
        instr: Instr,
        state: Dict[str, ValueSet],
    ) -> bool:
        """Apply one instruction; returns True when a *global* summary
        (heap, parameter, return) changed."""
        changed = False
        if isinstance(instr, ConstString):
            state[instr.dest] = frozenset({StrVal(instr.value)})
        elif isinstance(instr, Move):
            state[instr.dest] = state.get(instr.src, frozenset({UNKNOWN}))
        elif isinstance(instr, NewInstance):
            state[instr.dest] = frozenset(
                {ObjVal(method.qualified_name, index, instr.type_name)}
            )
        elif isinstance(instr, IGet):
            values: Set[Value] = set()
            base = state.get(instr.obj, EMPTY)
            resolved = [v for v in base if isinstance(v, ObjVal)]
            if resolved:
                for obj in resolved:
                    values |= self._heap_by_site.get(
                        (obj.site, instr.field_name), set()
                    )
            values |= self._heap_by_field.get(instr.field_name, set())
            state[instr.dest] = frozenset(values) if values else frozenset({UNKNOWN})
        elif isinstance(instr, IPut):
            stored = set(state.get(instr.src, frozenset({UNKNOWN})))
            base = state.get(instr.obj, EMPTY)
            resolved = [v for v in base if isinstance(v, ObjVal)]
            if resolved:
                for obj in resolved:
                    slot = self._heap_by_site.setdefault(
                        (obj.site, instr.field_name), set()
                    )
                    if not stored <= slot:
                        slot |= stored
                        changed = True
            else:
                slot = self._heap_by_field.setdefault(instr.field_name, set())
                if not stored <= slot:
                    slot |= stored
                    changed = True
        elif isinstance(instr, SGet):
            values = self._statics.get(instr.class_field, set())
            state[instr.dest] = frozenset(values) if values else frozenset({UNKNOWN})
        elif isinstance(instr, SPut):
            stored = set(state.get(instr.src, frozenset({UNKNOWN})))
            slot = self._statics.setdefault(instr.class_field, set())
            if not stored <= slot:
                slot |= stored
                changed = True
        elif isinstance(instr, Invoke):
            changed |= self._transfer_invoke(method, instr, state)
        elif isinstance(instr, Return):
            if instr.src is not None:
                returned = set(state.get(instr.src, frozenset({UNKNOWN})))
                slot = self._returns.setdefault(method.qualified_name, set())
                if not returned <= slot:
                    slot |= returned
                    changed = True
        return changed

    def _transfer_invoke(
        self, method: DexMethod, instr: Invoke, state: Dict[str, ValueSet]
    ) -> bool:
        changed = False
        callee = self._resolve_internal(method, instr)
        if callee is not None:
            # Flow arguments into the callee's parameter summaries.
            for ai, arg in enumerate(instr.args):
                passed = set(state.get(arg, frozenset({UNKNOWN})))
                slot = self._param_in.setdefault((callee.qualified_name, ai), set())
                if not passed <= slot:
                    slot |= passed
                    changed = True
            if instr.dest is not None:
                returned = self._returns.get(callee.qualified_name, set())
                state[instr.dest] = (
                    frozenset(returned) if returned else frozenset({UNKNOWN})
                )
            return changed
        # Platform API.
        if instr.dest is not None:
            if instr.signature in _GET_INTENT_APIS:
                state[instr.dest] = frozenset({IntentParamVal(method.class_name)})
            else:
                state[instr.dest] = frozenset({UNKNOWN})
        return changed

    def _resolve_internal(
        self, method: DexMethod, instr: Invoke
    ) -> Optional[DexMethod]:
        if instr.class_name == "this":
            cls = self.program.cls(method.class_name)
            if cls.has_method(instr.method_name):
                return cls.method(instr.method_name)
            return None
        return self.program.lookup(instr.signature)
