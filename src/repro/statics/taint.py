"""Path extraction: static taint analysis (Section IV, "Path Extraction").

Tracks sensitive data-flow tuples ``<Source, Sink>`` per component over the
flow-permission resources.  The analysis is:

- **flow-sensitive** -- register taint states are propagated along the CFG
  with a worklist, so kills (overwrites) are respected in order;
- **field-sensitive** -- heap taint is keyed by (allocation site, field)
  when the base object resolves, by field name otherwise;
- **context-sensitive** -- app-internal calls are analyzed per calling
  context (the tuple of argument taints), memoized, with a recursion guard
  and an outer fixpoint for heap effects;
- **not path-sensitive** -- branch conditions are opaque, exactly as the
  paper chooses for scalability.

The ICC mechanism augments sources and sinks: data read out of a received
Intent is ICC-source-tainted, and data placed into a sent Intent's extras
reaches the ICC sink (and is recorded as the Intent's carried resources,
the ``extra`` field of the paper's Alloy Intent model)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.android.apk import Apk
from repro.android.permissions import SINK_API_MAP, SOURCE_API_MAP
from repro.android.resources import Resource
from repro.core.model import PathModel
from repro.dex.instructions import (
    ConstString,
    IGet,
    IPut,
    Instr,
    Invoke,
    Move,
    NewInstance,
    Return,
    SGet,
    SPut,
)
from repro.dex.program import DexMethod
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import IntentParamVal, ObjVal, ValueAnalysis
from repro.statics.intent_extraction import (
    ICC_SEND_APIS,
    RESOLVER_APIS,
    SET_RESULT_API,
)

TaintSet = FrozenSet[Resource]
EMPTY_TAINT: TaintSet = frozenset()

# Intent payload read APIs: receiving ICC data.
_EXTRA_GETTERS = {
    "Intent.getStringExtra",
    "Intent.getExtra",
    "Intent.getExtras",
    "Intent.getIntExtra",
    "Intent.getParcelableExtra",
    "Intent.getData",
}

_MAX_CALL_DEPTH = 24


@dataclass
class TaintResult:
    """Per-component paths plus per-Intent-site carried resources and the
    taints observed flowing into each ContentResolver call site."""

    paths: Dict[str, Set[PathModel]]
    extras_taint: Dict[Tuple[str, int], Set[Resource]]
    resolver_taint: Dict[Tuple[str, int], Set[Resource]]
    reads_extra_keys: Dict[str, Set[str]]  # per component


class TaintAnalysis:
    """Whole-app taint analysis, reported per component."""

    def __init__(
        self, apk: Apk, callgraph: CallGraph, values: ValueAnalysis,
        outer_rounds: int = 3, all_roots: bool = False,
    ) -> None:
        self.apk = apk
        self.callgraph = callgraph
        self.values = values
        self.outer_rounds = outer_rounds
        self.all_roots = all_roots
        self.paths: Dict[str, Set[PathModel]] = {}
        self.extras_taint: Dict[Tuple[str, int], Set[Resource]] = {}
        self.resolver_taint: Dict[Tuple[str, int], Set[Resource]] = {}
        self.reads_extra_keys: Dict[str, Set[str]] = {}
        # Heap taint: per (site, field) when resolvable, else per field name.
        self._heap_site: Dict[Tuple[Tuple[str, int], str], Set[Resource]] = {}
        self._heap_field: Dict[str, Set[Resource]] = {}
        self._statics: Dict[str, Set[Resource]] = {}

    # ------------------------------------------------------------------
    def run(self) -> TaintResult:
        for _ in range(self.outer_rounds):
            before = self._snapshot()
            for comp in self.apk.manifest.components:
                qualified = self.apk.manifest.qualified(comp)
                self._analyze_component(comp.name, qualified)
            if self._snapshot() == before:
                break
        return TaintResult(
            paths=self.paths,
            extras_taint=self.extras_taint,
            resolver_taint=self.resolver_taint,
            reads_extra_keys=self.reads_extra_keys,
        )

    def _snapshot(self):
        return (
            {k: frozenset(v) for k, v in self.paths.items()},
            {k: frozenset(v) for k, v in self.extras_taint.items()},
            {k: frozenset(v) for k, v in self._heap_site.items()},
            {k: frozenset(v) for k, v in self._heap_field.items()},
            {k: frozenset(v) for k, v in self._statics.items()},
        )

    def _analyze_component(self, class_name: str, qualified: str) -> None:
        cls = self.apk.component_class(class_name)
        if cls is None:
            return
        self._current = qualified
        self._memo: Dict[Tuple[str, Tuple[TaintSet, ...]], TaintSet] = {}
        self._in_progress: Set[Tuple[str, Tuple[TaintSet, ...]]] = set()
        self.paths.setdefault(qualified, set())
        provider_entries = {"query", "insert", "update", "delete"}
        for method in cls.methods:
            if method.is_entry_point or self.all_roots:
                if method.name in provider_entries:
                    # Provider operations receive caller-controlled data:
                    # every parameter is ICC-source tainted.
                    params = tuple(
                        frozenset({Resource.ICC}) for _ in method.params
                    )
                else:
                    params = tuple(EMPTY_TAINT for _ in method.params)
                self._analyze_method(method, params, depth=0)

    # ------------------------------------------------------------------
    def _analyze_method(
        self, method: DexMethod, param_taints: Tuple[TaintSet, ...], depth: int
    ) -> TaintSet:
        """Flow-sensitive analysis of one method body under a calling
        context; returns the taint of the returned value."""
        key = (method.qualified_name, param_taints)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress or depth > _MAX_CALL_DEPTH:
            return EMPTY_TAINT  # recursion: converges via the outer rounds
        self._in_progress.add(key)

        cfg = self.callgraph.cfgs[method.qualified_name]
        return_taint: Set[Resource] = set()
        if cfg.blocks:
            entry: Dict[str, TaintSet] = {}
            for pi, param in enumerate(method.params):
                entry[param] = param_taints[pi] if pi < len(param_taints) else EMPTY_TAINT
            block_in: Dict[int, Dict[str, TaintSet]] = {0: entry}
            worklist = [0]
            seen_out: Dict[int, Dict[str, TaintSet]] = {}
            reachable = cfg.reachable_blocks()
            while worklist:
                bi = worklist.pop()
                if bi not in reachable:
                    continue
                state = dict(block_in.get(bi, {}))
                block = cfg.blocks[bi]
                for ii in block.instruction_indices:
                    self._transfer(
                        method, ii, method.instructions[ii], state,
                        return_taint, depth,
                    )
                prev = seen_out.get(bi)
                if prev == state:
                    continue
                seen_out[bi] = dict(state)
                for succ in block.successors:
                    merged = self._merge(block_in.get(succ), state)
                    if merged != block_in.get(succ):
                        block_in[succ] = merged
                        if succ not in worklist:
                            worklist.append(succ)

        self._in_progress.discard(key)
        result = frozenset(return_taint)
        self._memo[key] = result
        return result

    @staticmethod
    def _merge(
        left: Optional[Dict[str, TaintSet]], right: Dict[str, TaintSet]
    ) -> Dict[str, TaintSet]:
        if left is None:
            return dict(right)
        merged = dict(left)
        for reg, taint in right.items():
            merged[reg] = merged.get(reg, EMPTY_TAINT) | taint
        return merged

    # ------------------------------------------------------------------
    def _transfer(
        self,
        method: DexMethod,
        index: int,
        instr: Instr,
        state: Dict[str, TaintSet],
        return_taint: Set[Resource],
        depth: int,
    ) -> None:
        if isinstance(instr, ConstString):
            state[instr.dest] = EMPTY_TAINT
        elif isinstance(instr, Move):
            state[instr.dest] = state.get(instr.src, EMPTY_TAINT)
        elif isinstance(instr, NewInstance):
            state[instr.dest] = EMPTY_TAINT
        elif isinstance(instr, IGet):
            taint: Set[Resource] = set()
            bases = self.values.receiver_objects(
                method.qualified_name, index, instr.obj
            )
            if bases:
                for obj in bases:
                    taint |= self._heap_site.get((obj.site, instr.field_name), set())
            taint |= self._heap_field.get(instr.field_name, set())
            state[instr.dest] = frozenset(taint)
        elif isinstance(instr, IPut):
            stored = state.get(instr.src, EMPTY_TAINT)
            if not stored:
                return
            bases = self.values.receiver_objects(
                method.qualified_name, index, instr.obj
            )
            if bases:
                for obj in bases:
                    self._heap_site.setdefault(
                        (obj.site, instr.field_name), set()
                    ).update(stored)
            else:
                self._heap_field.setdefault(instr.field_name, set()).update(stored)
        elif isinstance(instr, SGet):
            state[instr.dest] = frozenset(self._statics.get(instr.class_field, set()))
        elif isinstance(instr, SPut):
            stored = state.get(instr.src, EMPTY_TAINT)
            if stored:
                self._statics.setdefault(instr.class_field, set()).update(stored)
        elif isinstance(instr, Return):
            if instr.src is not None:
                return_taint |= state.get(instr.src, EMPTY_TAINT)
        elif isinstance(instr, Invoke):
            self._transfer_invoke(method, index, instr, state, depth)

    # ------------------------------------------------------------------
    def _transfer_invoke(
        self,
        method: DexMethod,
        index: int,
        instr: Invoke,
        state: Dict[str, TaintSet],
        depth: int,
    ) -> None:
        sig = instr.signature
        mq = method.qualified_name

        # 1. Sensitive source APIs.
        if sig in SOURCE_API_MAP:
            if instr.dest is not None:
                state[instr.dest] = frozenset({SOURCE_API_MAP[sig]})
            return

        # 2. Reading Intent payload: the ICC source (or a same-app relay).
        if sig in _EXTRA_GETTERS and instr.receiver is not None:
            taint: Set[Resource] = set()
            values = self.values.values_before(mq, index).get(
                instr.receiver, frozenset()
            )
            for value in values:
                if isinstance(value, IntentParamVal):
                    taint.add(Resource.ICC)
                    if instr.args:
                        self.reads_extra_keys.setdefault(
                            self._current, set()
                        ).update(self.values.strings_of(mq, index, instr.args[0]))
                elif isinstance(value, ObjVal) and value.type_name == "Intent":
                    taint |= self.extras_taint.get(value.site, set())
            if instr.dest is not None:
                state[instr.dest] = frozenset(taint)
            return

        # 3. Writing Intent payload.
        if sig == "Intent.putExtra" and instr.receiver is not None:
            if len(instr.args) >= 2:
                stored = state.get(instr.args[1], EMPTY_TAINT)
                arg_values = self.values.values_before(mq, index).get(
                    instr.args[1], frozenset()
                )
                extra: Set[Resource] = set(stored)
                if any(isinstance(v, IntentParamVal) for v in arg_values):
                    extra.add(Resource.ICC)
                if extra:
                    for obj in self.values.receiver_objects(
                        mq, index, instr.receiver
                    ):
                        if obj.type_name == "Intent":
                            self.extras_taint.setdefault(obj.site, set()).update(
                                extra
                            )
            return

        # 4. Sink APIs.
        if sig in SINK_API_MAP:
            sink_resource, data_arg = SINK_API_MAP[sig]
            if data_arg < len(instr.args):
                reg = instr.args[data_arg]
                for resource in state.get(reg, EMPTY_TAINT):
                    self._add_path(resource, sink_resource)
                arg_values = self.values.values_before(mq, index).get(
                    reg, frozenset()
                )
                if any(isinstance(v, IntentParamVal) for v in arg_values):
                    self._add_path(Resource.ICC, sink_resource)
            return

        # 4b. ContentResolver operations: provider-directed ICC.  Tainted
        # arguments (selection strings, values) flow to the ICC sink; the
        # per-call-site record lets the extractor build provider accesses.
        if sig in RESOLVER_APIS:
            merged: Set[Resource] = set()
            for arg in instr.args[1:] or instr.args:
                merged |= state.get(arg, EMPTY_TAINT)
            if merged:
                self.resolver_taint.setdefault((mq, index), set()).update(merged)
                for resource in merged:
                    self._add_path(resource, Resource.ICC)
            if instr.dest is not None:
                # Query results come from another protection domain.
                state[instr.dest] = frozenset({Resource.ICC})
            return

        # 5. ICC sends: data carried by the Intent reaches the ICC sink.
        if (sig in ICC_SEND_APIS or sig == SET_RESULT_API) and instr.args:
            reg = instr.args[0]
            arg_values = self.values.values_before(mq, index).get(reg, frozenset())
            for value in arg_values:
                if isinstance(value, ObjVal) and value.type_name == "Intent":
                    for resource in self.extras_taint.get(value.site, set()):
                        self._add_path(resource, Resource.ICC)
                elif isinstance(value, IntentParamVal):
                    # Forwarding the received Intent verbatim: a transit path.
                    self._add_path(Resource.ICC, Resource.ICC)
            return

        # 6. App-internal calls: context-sensitive descent.
        callee = self._resolve_internal(method, instr)
        if callee is not None:
            arg_taints = tuple(
                state.get(arg, EMPTY_TAINT) for arg in instr.args
            )
            returned = self._analyze_method(callee, arg_taints, depth + 1)
            if instr.dest is not None:
                state[instr.dest] = returned
            return

        # 7. Unmodeled platform call: conservative propagation through the
        # receiver and arguments (covers toString/concat/format chains).
        if instr.dest is not None:
            taint = set()
            if instr.receiver is not None:
                taint |= state.get(instr.receiver, EMPTY_TAINT)
            for arg in instr.args:
                taint |= state.get(arg, EMPTY_TAINT)
            state[instr.dest] = frozenset(taint)

    def _resolve_internal(self, method: DexMethod, instr: Invoke) -> Optional[DexMethod]:
        if instr.class_name == "this":
            cls = self.callgraph.program.cls(method.class_name)
            if cls.has_method(instr.method_name):
                return cls.method(instr.method_name)
            return None
        return self.callgraph.program.lookup(instr.signature)

    def _add_path(self, source: Resource, sink: Resource) -> None:
        self.paths.setdefault(self._current, set()).add(PathModel(source, sink))
