"""Permission extraction (Section IV, "Permission Extraction").

Two questions are answered per component:

1. **Which permissions does the component's code actually exercise?**
   Every reachable platform invoke is tagged through the PScout-style API
   permission map; tags propagate transitively up the call chains to the
   component's entry points (here computed directly as the union over the
   entry-reachable method set, which is the fixpoint of the paper's
   backward reachability tagging).  A component whose entry points carry a
   permission tag *exposes* that permission-guarded capability.

2. **Which permissions does the component enforce on its callers?**
   The manifest's ``permission`` attribute, plus in-code checks:
   ``checkCallingPermission``/``enforceCallingPermission`` calls that are
   actually reachable from an entry point.  A check that is defined but
   never called (the paper's Listing 2, where ``hasPermission`` is
   commented out of the call chain) does not count -- which is precisely
   the vulnerability the running example turns on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.android.apk import Apk
from repro.android.permissions import permissions_for_api
from repro.dex.instructions import Invoke
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import ValueAnalysis

_CHECK_APIS = {
    "Context.checkCallingPermission",
    "Context.enforceCallingPermission",
    "Context.checkCallingOrSelfPermission",
}


@dataclass
class ComponentPermissions:
    exposed: FrozenSet[str]  # permission-guarded capabilities reachable inside
    enforced_in_code: FrozenSet[str]  # reachable checkCallingPermission targets


class PermissionExtraction:
    def __init__(self, apk: Apk, callgraph: CallGraph, values: ValueAnalysis) -> None:
        self.apk = apk
        self.callgraph = callgraph
        self.values = values

    def run(self) -> Dict[str, ComponentPermissions]:
        """Per qualified component name."""
        result: Dict[str, ComponentPermissions] = {}
        for comp in self.apk.manifest.components:
            qualified = self.apk.manifest.qualified(comp)
            reachable = self.callgraph.reachable_methods_of_component(comp.name)
            exposed: Set[str] = set()
            enforced: Set[str] = set()
            for method_name in reachable:
                method = self.callgraph.program.lookup(method_name)
                if method is None:
                    continue
                cfg = self.callgraph.cfgs[method_name]
                live = cfg.reachable_instructions()
                for idx in sorted(live):
                    instr = method.instructions[idx]
                    if not isinstance(instr, Invoke):
                        continue
                    exposed |= permissions_for_api(instr.signature)
                    if instr.signature in _CHECK_APIS and instr.args:
                        enforced.update(
                            self.values.strings_of(method_name, idx, instr.args[0])
                        )
            result[qualified] = ComponentPermissions(
                exposed=frozenset(exposed),
                enforced_in_code=frozenset(enforced),
            )
        return result
