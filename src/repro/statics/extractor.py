"""AME orchestration: APK in, architectural app specification out.

Runs the extraction pipeline per app -- architecture (manifest), value
analysis, Intent extraction, taint-based path extraction, permission
extraction -- and assembles the :class:`~repro.core.model.AppModel`.
Bundle extraction then applies Algorithm 1 (passive-Intent targets)
across the whole app set, since result channels may cross apps.

``handle_dynamic_receivers`` opts into extracting dynamically registered
Broadcast Receiver filters.  It is **off by default**: SEPAR's published
extractor misses these (its only DroidBench misses, Table I); enabling the
flag is this reproduction's documented extension/ablation.
"""

from __future__ import annotations

import time
from typing import List, Set

from repro.android.apk import Apk
from repro.android.components import ComponentKind
from repro.obs import get_metrics, get_tracer
from repro.core.model import (
    AppModel,
    BundleModel,
    ComponentModel,
    IntentFilterModel,
    ProviderAccessModel,
)
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import ValueAnalysis
from repro.statics.intent_extraction import (
    IntentExtraction,
    update_passive_intent_targets,
)
from repro.statics.permission_extraction import PermissionExtraction
from repro.statics.taint import TaintAnalysis


class ModelExtractor:
    """Extracts the formal specification of one app."""

    def __init__(
        self,
        handle_dynamic_receivers: bool = False,
        reachability_pruning: bool = True,
    ) -> None:
        self.handle_dynamic_receivers = handle_dynamic_receivers
        self.reachability_pruning = reachability_pruning

    def extract(self, apk: Apk) -> AppModel:
        tracer = get_tracer()
        with tracer.span("ame.extract", package=apk.package):
            return self._extract(apk, tracer)

    def _extract(self, apk: Apk, tracer) -> AppModel:
        start = time.perf_counter()
        with tracer.span("ame.callgraph"):
            callgraph = CallGraph(apk)
            values = ValueAnalysis(callgraph)

        all_roots = not self.reachability_pruning
        with tracer.span("ame.taint"):
            taint = TaintAnalysis(
                apk, callgraph, values, all_roots=all_roots
            ).run()
        with tracer.span("ame.intents"):
            intents_result = IntentExtraction(
                apk, callgraph, values, all_roots=all_roots
            ).run(extras_taint=taint.extras_taint)
        with tracer.span("ame.permissions"):
            permissions = PermissionExtraction(apk, callgraph, values).run()

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ame.apps_extracted").inc()
            metrics.histogram("ame.cfg_count").observe(len(callgraph.cfgs))
            metrics.histogram("ame.callgraph_edges").observe(
                sum(len(sites) for sites in callgraph.edges.values())
            )
            metrics.histogram("ame.taint_paths").observe(
                sum(len(paths) for paths in taint.paths.values())
            )
            metrics.histogram("ame.intents").observe(
                len(intents_result.intents)
            )

        components = []
        for decl in apk.manifest.components:
            qualified = apk.manifest.qualified(decl)
            filters = [
                IntentFilterModel(
                    actions=frozenset(f.actions),
                    categories=frozenset(f.categories),
                    data_types=frozenset(f.data_types),
                    data_schemes=frozenset(f.data_schemes),
                )
                for f in decl.intent_filters
            ]
            if self.handle_dynamic_receivers and decl.kind is ComponentKind.RECEIVER:
                filters.extend(
                    reg.filter_model
                    for reg in intents_result.dynamic_filters
                    if reg.receiver_class == decl.name
                )
            perm_info = permissions.get(qualified)
            enforced: Set[str] = set()
            if decl.permission:
                enforced.add(decl.permission)
            if perm_info:
                enforced |= set(perm_info.enforced_in_code)
            cls = apk.component_class(decl.name)
            reachable = cls is None or any(m.is_entry_point for m in cls.methods)
            exported = decl.is_public or (
                self.handle_dynamic_receivers
                and any(
                    reg.receiver_class == decl.name
                    for reg in intents_result.dynamic_filters
                )
            )
            components.append(
                ComponentModel(
                    name=qualified,
                    kind=decl.kind,
                    app=apk.package,
                    exported=exported,
                    intent_filters=tuple(filters),
                    permissions=frozenset(enforced),
                    paths=tuple(sorted(
                        taint.paths.get(qualified, set()),
                        key=lambda p: (p.source.value, p.sink.value),
                    )),
                    uses_permissions=(
                        perm_info.exposed if perm_info else frozenset()
                    ),
                    reachable=reachable,
                    authority=decl.authority,
                    reads_extra_keys=frozenset(
                        taint.reads_extra_keys.get(qualified, ())
                    ),
                )
            )

        intents = update_passive_intent_targets(intents_result.intents)
        provider_accesses = [
            ProviderAccessModel(
                sender=call.sender,
                operation=call.operation,
                authority=call.authority,
                payload=frozenset(taint.resolver_taint.get(call.site, ())),
            )
            for call in intents_result.resolver_calls
        ]
        elapsed = time.perf_counter() - start
        return AppModel(
            package=apk.package,
            uses_permissions=frozenset(apk.manifest.uses_permissions),
            components=components,
            intents=intents,
            provider_accesses=provider_accesses,
            extraction_seconds=elapsed,
            apk_size_kb=apk.size_kb or 0,
            repository=apk.repository,
        )


def extract_app(apk: Apk, handle_dynamic_receivers: bool = False) -> AppModel:
    return ModelExtractor(handle_dynamic_receivers).extract(apk)


def extract_bundle(
    apks: List[Apk], handle_dynamic_receivers: bool = False
) -> BundleModel:
    """Extract every app, then resolve passive-Intent targets bundle-wide."""
    extractor = ModelExtractor(handle_dynamic_receivers)
    apps = [extractor.extract(apk) for apk in apks]
    bundle = BundleModel(apps=apps)
    # Algorithm 1 across apps: a result channel may cross app boundaries.
    all_intents = bundle.all_intents()
    updated = update_passive_intent_targets(all_intents)
    by_id = {i.entity_id: i for i in updated}
    for app in bundle.apps:
        app.intents = [by_id.get(i.entity_id, i) for i in app.intents]
    return bundle
