"""The app call graph and framework-entry reachability.

Nodes are app-defined methods; edges are app-internal ``Invoke``
instructions (platform API invokes are leaves handled by the permission
and taint maps).  Roots are the lifecycle entry points of classes that
back manifest components -- code not reachable from any entry point is
dead as far as the framework is concerned, and AME excludes it from
vulnerability evidence (DroidBench's ``startActivity4/5`` cases turn on
exactly this)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.android.apk import Apk
from repro.dex.instructions import Invoke
from repro.dex.program import DexMethod, DexProgram
from repro.statics.cfg import ControlFlowGraph


@dataclass
class CallSite:
    caller: str  # qualified method name
    instruction_index: int
    callee: str  # qualified method name


class CallGraph:
    """Call graph of one app, rooted at component lifecycle methods."""

    def __init__(self, apk: Apk) -> None:
        self.apk = apk
        self.program: DexProgram = apk.program
        self.edges: Dict[str, List[CallSite]] = {}
        self.reverse_edges: Dict[str, List[CallSite]] = {}
        self.cfgs: Dict[str, ControlFlowGraph] = {}
        self._build()

    def _build(self) -> None:
        for method in self.program.all_methods():
            cfg = ControlFlowGraph(method)
            self.cfgs[method.qualified_name] = cfg
            live = cfg.reachable_instructions()
            for idx in sorted(live):
                instr = method.instructions[idx]
                if not isinstance(instr, Invoke):
                    continue
                callee = self._resolve(method, instr)
                if callee is None:
                    continue
                site = CallSite(method.qualified_name, idx, callee.qualified_name)
                self.edges.setdefault(method.qualified_name, []).append(site)
                self.reverse_edges.setdefault(callee.qualified_name, []).append(site)

    def _resolve(self, caller: DexMethod, invoke: Invoke) -> Optional[DexMethod]:
        """App-internal resolution; ``this.m`` resolves within the caller's
        class, ``Class.m`` within the program."""
        if invoke.class_name == "this":
            cls = self.program.cls(caller.class_name)
            if cls.has_method(invoke.method_name):
                return cls.method(invoke.method_name)
            return None
        return self.program.lookup(invoke.signature)

    # ------------------------------------------------------------------
    def entry_points(self) -> List[DexMethod]:
        """Lifecycle methods of classes that back manifest components."""
        component_names = {c.name for c in self.apk.manifest.components}
        entries = []
        for cls in self.program.classes:
            if cls.name not in component_names:
                continue
            for method in cls.methods:
                if method.is_entry_point:
                    entries.append(method)
        return entries

    def reachable_methods(
        self, roots: Optional[Iterable[str]] = None
    ) -> FrozenSet[str]:
        """Methods reachable from the given roots (default: entry points)."""
        if roots is None:
            roots = [m.qualified_name for m in self.entry_points()]
        seen: Set[str] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for site in self.edges.get(node, ()):
                if site.callee not in seen:
                    stack.append(site.callee)
        return frozenset(seen)

    def reachable_methods_of_component(
        self, component_name: str, all_roots: bool = False
    ) -> FrozenSet[str]:
        """Methods reachable from one component's lifecycle entries.

        ``all_roots`` treats *every* method of the component class as a
        root -- the reachability-insensitive view a less careful analyzer
        (DidFail's Epicc front end) operates on."""
        cls = self.apk.component_class(component_name)
        if cls is None:
            return frozenset()
        roots = [
            m.qualified_name
            for m in cls.methods
            if all_roots or m.is_entry_point
        ]
        return self.reachable_methods(roots)

    def callers_of(self, qualified_name: str) -> List[CallSite]:
        return self.reverse_edges.get(qualified_name, [])

    def callees_of(self, qualified_name: str) -> List[CallSite]:
        return self.edges.get(qualified_name, [])
