"""AME: the Android Model Extractor (static analysis over the IR).

The extraction pipeline of Section IV:

- **Architecture extraction** -- manifest components, filters, permissions
  (:mod:`repro.statics.extractor` reads them straight off the manifest).
- **Intent extraction** -- inter-procedural string constant propagation and
  points-to tracking of Intent/IntentFilter allocation sites
  (:mod:`repro.statics.constprop`, :mod:`repro.statics.intent_extraction`),
  including Algorithm 1's passive-Intent target resolution.
- **Path extraction** -- flow-, field-, and context-sensitive (but not
  path-sensitive) taint analysis from sensitive sources to sinks
  (:mod:`repro.statics.taint`).
- **Permission extraction** -- PScout-map tagging plus backward
  reachability to component entry points
  (:mod:`repro.statics.permission_extraction`).

Supporting analyses: control-flow graphs (:mod:`repro.statics.cfg`) and the
app call graph with entry-point reachability (:mod:`repro.statics.callgraph`).
"""

from repro.statics.extractor import ModelExtractor, extract_app, extract_bundle

__all__ = ["ModelExtractor", "extract_app", "extract_bundle"]
