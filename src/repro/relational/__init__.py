"""Bounded relational model finding (the Alloy/Kodkod/Aluminum substrate).

SEPAR's analysis and synthesis engine expresses the Android framework
meta-model, the extracted app specifications, and the vulnerability
signatures in Alloy's first-order relational logic with transitive closure,
then asks a bounded model finder for satisfying instances -- each instance
*is* a synthesized exploit scenario.  This package is a from-scratch
implementation of that tool chain:

- :mod:`repro.relational.universe` -- atoms, relations, and bounds
  (Kodkod-style partial instances: lower/upper tuple sets per relation).
- :mod:`repro.relational.ast` -- relational expressions (join, product,
  transpose, transitive closure, set operators) and first-order formulas
  (quantifiers, multiplicities, comparisons).
- :mod:`repro.relational.translate` -- translation of bounded relational
  formulas into CNF over boolean adjacency matrices, following Kodkod.
- :mod:`repro.relational.instance` -- satisfying instances mapped back to
  relation/tuple form.
- :mod:`repro.relational.problem` -- the solve / enumerate front door.
- :mod:`repro.relational.minimal` -- Aluminum-style minimal-scenario
  generation (minimize the set of tuples present in the instance).
"""

from repro.relational.universe import Universe, Relation, Bounds
from repro.relational.instance import Instance
from repro.relational.problem import RelationalProblem

__all__ = ["Universe", "Relation", "Bounds", "Instance", "RelationalProblem"]
