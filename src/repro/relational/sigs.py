"""Alloy-style signature declarations over the relational core.

This is the surface SEPAR's models are written in: abstract signatures with
extension hierarchies (``abstract sig Component`` with ``sig Activity
extends Component``), singleton signatures for extracted app elements
(``one sig LocationFinder extends Service``), binary fields with
multiplicities (``sender: one Component``), facts, and *partial-instance
pinning* -- the Kodkod trick of injecting statically-extracted facts
directly into relation bounds so the SAT search is confined to the
postulated (malicious) elements.

Usage sketch::

    m = Module()
    component = m.sig("Component", abstract=True)
    service = m.sig("Service", extends=component)
    app = m.sig("Application")
    cmp_app = m.field(component, "app", app, mult="one")
    loc = m.one_sig("LocationFinder", extends=service)
    m.pin(cmp_app, loc, ["App1"])          # bound-level fact
    m.fact(...)                            # formula-level fact
    problem = m.solve_problem(goal, extra={service: 1})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.relational import ast as rast
from repro.relational.problem import RelationalProblem
from repro.sat import DEFAULT_BACKEND
from repro.relational.universe import Bounds, Relation, Universe


class Sig:
    """A signature: a named atom set, possibly extending a parent sig."""

    def __init__(
        self,
        name: str,
        parent: Optional["Sig"] = None,
        abstract: bool = False,
        one: bool = False,
    ) -> None:
        self.name = name
        self.parent = parent
        self.abstract = abstract
        self.one = one
        self.children: List["Sig"] = []
        self.relation = Relation(name, 1)
        self._expr = rast.RelationExpr(self.relation)
        if parent is not None:
            parent.children.append(self)

    @property
    def expr(self) -> rast.Expr:
        return self._expr

    def ancestors(self) -> List["Sig"]:
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def descendants(self) -> List["Sig"]:
        out = []
        stack = list(self.children)
        while stack:
            child = stack.pop()
            out.append(child)
            stack.extend(child.children)
        return out

    def __repr__(self) -> str:
        return f"Sig({self.name})"


class Field:
    """A binary field ``owner.name: mult range``."""

    MULTS = ("one", "lone", "some", "set")

    def __init__(self, owner: Sig, name: str, range_sig: Sig, mult: str = "set") -> None:
        if mult not in self.MULTS:
            raise ValueError(f"unknown field multiplicity {mult!r}")
        self.owner = owner
        self.name = name
        self.range_sig = range_sig
        self.mult = mult
        self.relation = Relation(f"{owner.name}.{name}", 2)
        self._expr = rast.RelationExpr(self.relation)

    @property
    def expr(self) -> rast.Expr:
        return self._expr

    def of(self, subject: rast.Expr) -> rast.Expr:
        """``subject.field`` navigation."""
        return subject.join(self._expr)

    def __repr__(self) -> str:
        return f"Field({self.owner.name}.{self.name}: {self.mult} {self.range_sig.name})"


class SubsetSig:
    """A subset signature: a unary relation contained in a parent sig.

    Unlike extension sigs, subset sigs may overlap each other (Alloy's
    ``sig X in Y``).  Membership of individual atoms can be pinned
    (``exported`` components, source/sink resource classes); unpinned atoms
    are left to the solver, bounded by the parent's atom set.
    """

    def __init__(self, name: str, parent: Sig) -> None:
        self.name = name
        self.parent = parent
        self.relation = Relation(name, 1)
        self._expr = rast.RelationExpr(self.relation)
        self.pinned: Dict[str, bool] = {}

    @property
    def expr(self) -> rast.Expr:
        return self._expr

    def pin(self, atom: str, member: bool = True) -> None:
        existing = self.pinned.get(atom)
        if existing is not None and existing != member:
            raise ValueError(
                f"conflicting membership pins for {atom} in {self.name}"
            )
        self.pinned[atom] = member

    def __repr__(self) -> str:
        return f"SubsetSig({self.name} in {self.parent.name})"


@dataclass
class _Pin:
    field: Field
    owner_atom: str
    values: Tuple[str, ...]


class Module:
    """A collection of sigs, fields, facts, and partial-instance pins."""

    def __init__(self) -> None:
        self._sigs: List[Sig] = []
        self._fields: List[Field] = []
        self._subsets: List[SubsetSig] = []
        self._facts: List[rast.Formula] = []
        self._pins: List[_Pin] = []
        self._atom_names: Dict[Sig, List[str]] = {}
        self._by_name: Dict[str, Sig] = {}

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def sig(
        self,
        name: str,
        extends: Optional[Sig] = None,
        abstract: bool = False,
    ) -> Sig:
        if name in self._by_name:
            raise ValueError(f"duplicate sig {name!r}")
        sig = Sig(name, parent=extends, abstract=abstract)
        self._sigs.append(sig)
        self._by_name[name] = sig
        return sig

    def one_sig(self, name: str, extends: Optional[Sig] = None) -> Sig:
        """A singleton signature; its single atom is named after the sig."""
        if name in self._by_name:
            raise ValueError(f"duplicate sig {name!r}")
        sig = Sig(name, parent=extends, one=True)
        self._sigs.append(sig)
        self._by_name[name] = sig
        self._atom_names[sig] = [name]
        return sig

    def field(self, owner: Sig, name: str, range_sig: Sig, mult: str = "set") -> Field:
        fld = Field(owner, name, range_sig, mult)
        self._fields.append(fld)
        return fld

    def subset_sig(self, name: str, parent: Sig) -> SubsetSig:
        if name in self._by_name:
            raise ValueError(f"duplicate sig {name!r}")
        subset = SubsetSig(name, parent)
        self._subsets.append(subset)
        return subset

    def helper_relation(
        self, name: str, arity: int, tuples: Iterable[Tuple[str, ...]]
    ) -> Relation:
        """An exact-bound derived relation (a Kodkod partial-instance trick):
        facts computed outside the solver -- e.g. the Intent-relay edges a
        transitive-closure formula walks -- enter the problem as constants.
        Atoms must exist in the built universe (one-sig atoms)."""
        if not hasattr(self, "_helpers"):
            self._helpers: List[Tuple[Relation, List[Tuple[str, ...]]]] = []
        relation = Relation(name, arity)
        self._helpers.append((relation, [tuple(t) for t in tuples]))
        return relation

    def fact(self, formula: rast.Formula) -> None:
        self._facts.append(formula)

    def lookup(self, name: str) -> Sig:
        return self._by_name[name]

    @property
    def sigs(self) -> Sequence[Sig]:
        return self._sigs

    @property
    def fields(self) -> Sequence[Field]:
        return self._fields

    # ------------------------------------------------------------------
    # Partial instances
    # ------------------------------------------------------------------
    def pin(self, field: Field, owner: Sig, value_atoms: Iterable[str]) -> None:
        """Fix ``owner_atom.field`` exactly to ``value_atoms`` in the bounds.

        ``owner`` must be a ``one`` sig (the pin addresses its single atom).
        Multiplicity is validated eagerly so extraction bugs surface here
        rather than as mysterious UNSAT results.
        """
        if not owner.one:
            raise ValueError(f"pin target {owner.name} must be a one-sig")
        values = tuple(value_atoms)
        if field.mult == "one" and len(values) != 1:
            raise ValueError(
                f"field {field.name} has multiplicity one; got {len(values)} values"
            )
        if field.mult == "lone" and len(values) > 1:
            raise ValueError(
                f"field {field.name} has multiplicity lone; got {len(values)} values"
            )
        if field.mult == "some" and not values:
            raise ValueError(f"field {field.name} has multiplicity some; got none")
        self._pins.append(_Pin(field, owner.name, values))

    # ------------------------------------------------------------------
    # Atom assignment and bound generation
    # ------------------------------------------------------------------
    def atoms_of(self, sig: Sig) -> List[str]:
        """All atoms of a sig (own plus descendants').

        After :meth:`build` this includes the anonymous atoms assigned
        there; before, it covers one-sig atoms only.
        """
        built = getattr(self, "_last_atom_sets", None)
        if built is not None and sig in built:
            return list(built[sig])
        collected = list(self._atom_names.get(sig, []))
        for child in sig.children:
            collected.extend(self.atoms_of(child))
        return collected

    @staticmethod
    def field_constraint(fld: Field) -> Optional[rast.Formula]:
        """The implicit multiplicity constraint of a field, or None for
        ``set`` fields.  Quantified over the owner sig, so when the owner's
        membership floats (``float_anon`` builds) the grounding guard makes
        the per-atom constraint conditional on actual membership."""
        if fld.mult == "set":
            return None
        var = rast.Variable(f"__{fld.owner.name}_{fld.name}")
        body = rast.MultiplicityFormula(fld.mult, fld.of(var))
        return rast.all_(var, fld.owner.expr, body)

    def anon_atoms_of(self, sig: Sig) -> List[str]:
        """The anonymous atoms :meth:`build` assigned directly to ``sig``
        (not descendants), in scope order.  Empty before the first build."""
        built = getattr(self, "_last_anon", None)
        if not built:
            return []
        return list(built.get(sig, []))

    def build(
        self,
        extra: Optional[Dict[Sig, int]] = None,
        float_anon: bool = False,
        exclude_fields: Iterable[Field] = (),
    ) -> Tuple[Bounds, rast.Formula]:
        """Produce bounds and the implicit constraint formula.

        ``extra`` assigns additional anonymous atoms to (non-one) sigs: these
        are the free elements the synthesizer may populate -- the postulated
        malicious app, component, and Intent.  Sigs not mentioned get no
        anonymous atoms; their contents come entirely from one-sigs.

        With ``float_anon`` the anonymous atoms' sig membership is *not*
        fixed: they enter only the upper bounds of their sig (and its
        ancestors), becoming primary variables.  This lets one shared
        problem host the anonymous scopes of several goals, each goal
        forcing its own atoms in and the foreign ones out under its
        selector literal (see ``RelationalProblem.add_gated_tuples``).
        The extension-hierarchy invariant (child membership implies parent
        membership), free with exact bounds, is re-asserted as implicit
        formulas for floated atoms.

        ``exclude_fields`` suppresses the implicit multiplicity constraint
        for the given fields; callers re-assert them per goal with
        :meth:`field_constraint` (shared-encoding mode gates each goal's
        own signature fields with its selector).
        """
        extra = extra or {}
        exclude = set(exclude_fields)
        # Assign anonymous atoms.
        anon: Dict[Sig, List[str]] = {}
        for sig, count in extra.items():
            if sig.one:
                raise ValueError(f"cannot add anonymous atoms to one-sig {sig.name}")
            if sig.abstract:
                raise ValueError(
                    f"cannot add anonymous atoms to abstract sig {sig.name}"
                )
            anon[sig] = [f"{sig.name}${i}" for i in range(count)]

        universe = Universe()
        atom_sets: Dict[Sig, List[str]] = {}

        def collect(sig: Sig) -> List[str]:
            atoms = list(self._atom_names.get(sig, []))
            atoms.extend(anon.get(sig, []))
            for child in sig.children:
                atoms.extend(collect(child))
            atom_sets[sig] = atoms
            return atoms

        roots = [s for s in self._sigs if s.parent is None]
        for root in roots:
            for atom in collect(root):
                if atom not in universe:
                    universe.add(atom)
        self._last_atom_sets = atom_sets
        self._last_anon = anon
        anon_atoms = {a for atoms in anon.values() for a in atoms}

        implicit: List[rast.Formula] = []
        bounds = Bounds(universe)
        for sig in self._sigs:
            rows = [(a,) for a in atom_sets[sig]]
            if float_anon:
                fixed = [(a,) for a in atom_sets[sig] if a not in anon_atoms]
                bounds.bound(sig.relation, fixed, rows)
            else:
                bounds.bound_exact(sig.relation, rows)
        if float_anon:
            # child in parent, otherwise implied by the exact bounds.
            for sig in self._sigs:
                if sig.parent is not None and any(
                    a in anon_atoms for a in atom_sets[sig]
                ):
                    implicit.append(sig.expr.in_(sig.parent.expr))

        # Field bounds: pinned rows are exact; remaining rows range freely.
        pins_by_field: Dict[Field, Dict[str, Tuple[str, ...]]] = {}
        for pin in self._pins:
            rows = pins_by_field.setdefault(pin.field, {})
            if pin.owner_atom in rows:
                raise ValueError(
                    f"duplicate pin for {pin.field.name} on {pin.owner_atom}"
                )
            rows[pin.owner_atom] = pin.values

        for fld in self._fields:
            owner_atoms = atom_sets[fld.owner]
            range_atoms = atom_sets[fld.range_sig]
            pinned_rows = pins_by_field.get(fld, {})
            lower: List[Tuple[str, str]] = []
            upper: List[Tuple[str, str]] = []
            free_owner_atoms: List[str] = []
            for owner_atom in owner_atoms:
                if owner_atom in pinned_rows:
                    for value in pinned_rows[owner_atom]:
                        lower.append((owner_atom, value))
                        upper.append((owner_atom, value))
                else:
                    free_owner_atoms.append(owner_atom)
                    for value in range_atoms:
                        upper.append((owner_atom, value))
            bounds.bound(fld.relation, lower, upper)
            # Multiplicity constraints apply only to free rows (pinned rows
            # were validated at pin time); translated cheaply per owner atom.
            if fld.mult != "set" and free_owner_atoms and fld not in exclude:
                implicit.append(self.field_constraint(fld))

        for relation, tuples in getattr(self, "_helpers", ()):
            bounds.bound_exact(relation, tuples)

        # Subset sig bounds: pinned-in atoms form the lower bound; pinned-out
        # atoms are excluded from the upper bound; the rest float.
        for subset in self._subsets:
            parent_atoms = atom_sets[subset.parent]
            lower = [(a,) for a in parent_atoms if subset.pinned.get(a) is True]
            upper = [
                (a,) for a in parent_atoms if subset.pinned.get(a) is not False
            ]
            for atom in subset.pinned:
                if atom not in parent_atoms:
                    raise ValueError(
                        f"pinned atom {atom!r} is not in {subset.parent.name}"
                    )
            bounds.bound(subset.relation, lower, upper)

        return bounds, rast.and_all(implicit + self._facts)

    # ------------------------------------------------------------------
    def solve_problem(
        self,
        goal: rast.Formula = rast.TRUE_F,
        extra: Optional[Dict[Sig, int]] = None,
        backend: str = DEFAULT_BACKEND,
    ) -> RelationalProblem:
        """Build bounds and return a solver-ready problem for goal ∧ facts."""
        bounds, implicit = self.build(extra)
        return RelationalProblem(
            bounds, rast.and_all([implicit, goal]), backend=backend
        )
