"""Satisfying instances of relational problems."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from repro.relational.universe import AtomTuple, Bounds, Relation


class Instance:
    """A binding of every bounded relation to a concrete tuple set."""

    def __init__(self, tuples: Dict[Relation, FrozenSet[AtomTuple]]) -> None:
        self._tuples = dict(tuples)

    def tuples(self, relation: Relation) -> FrozenSet[AtomTuple]:
        return self._tuples.get(relation, frozenset())

    def atoms(self, relation: Relation) -> FrozenSet[str]:
        """The unary projection of a relation (its atoms), for unary relations."""
        return frozenset(t[0] for t in self.tuples(relation))

    @property
    def relations(self) -> Iterable[Relation]:
        return self._tuples.keys()

    def positive_size(self) -> int:
        """Total number of tuples across all relations (Aluminum's metric)."""
        return sum(len(ts) for ts in self._tuples.values())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash(tuple(sorted(
            (rel.name, tuple(sorted(ts))) for rel, ts in self._tuples.items()
        )))

    def __repr__(self) -> str:
        populated = sum(1 for ts in self._tuples.values() if ts)
        return f"Instance({populated} populated relations)"

    def describe(self) -> str:
        """Readable multi-line rendering, Alloy-evaluator style."""
        lines = []
        for relation in sorted(self._tuples, key=lambda r: r.name):
            tuples = self._tuples[relation]
            if not tuples:
                continue
            rendered = ", ".join(
                "->".join(tup) for tup in sorted(tuples)
            )
            lines.append(f"{relation.name} = {{{rendered}}}")
        return "\n".join(lines)


def instance_from_model(
    bounds: Bounds,
    primary_vars: Dict[Tuple[Relation, AtomTuple], int],
    model: Dict[int, bool],
) -> Instance:
    """Reconstruct relation tuple sets from a SAT model."""
    tuples: Dict[Relation, set] = {rel: set(bounds.lower(rel)) for rel in bounds.relations}
    for (relation, tup), var in primary_vars.items():
        if model.get(var, False):
            tuples[relation].add(tup)
    return Instance({rel: frozenset(ts) for rel, ts in tuples.items()})
