"""Relational expressions and first-order formulas (the Alloy core).

Expressions denote relations (sets of atom tuples); formulas denote truth
values.  The operator surface mirrors Alloy:

==================  =========================================
Alloy               here
==================  =========================================
``a + b``           ``a + b`` (union)
``a & b``           ``a & b`` (intersection)
``a - b``           ``a - b`` (difference)
``a . b``           ``a.join(b)``
``a -> b``          ``a.product(b)``
``~a``              ``a.transpose()``
``^a``              ``a.closure()``
``*a``              ``a.reflexive_closure()``
``a in b``          ``a.in_(b)``
``a = b``           ``a.eq(b)``
``some a``          ``some(a)`` (similarly ``no``/``one``/``lone``)
``all x: e | F``    ``all_(x, e, F)`` with ``x = Variable("x")``
``F && G``          ``F & G``
``F || G``          ``F | G``
``!F``              ``~F`` or ``not_(F)``
``F => G``          ``F.implies(G)``
==================  =========================================
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.relational.universe import Relation


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expr:
    """Base class for relational expressions."""

    arity: int

    def __add__(self, other: "Expr") -> "Expr":
        return BinaryExpr("union", self, other)

    def __and__(self, other: "Expr") -> "Expr":
        return BinaryExpr("intersection", self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return BinaryExpr("difference", self, other)

    def join(self, other: "Expr") -> "Expr":
        return JoinExpr(self, other)

    def product(self, other: "Expr") -> "Expr":
        return ProductExpr(self, other)

    def transpose(self) -> "Expr":
        return UnaryExpr("transpose", self)

    def closure(self) -> "Expr":
        return UnaryExpr("closure", self)

    def reflexive_closure(self) -> "Expr":
        return UnaryExpr("reflexive_closure", self)

    # -- formula constructors -------------------------------------------
    def in_(self, other: "Expr") -> "Formula":
        return ComparisonFormula("subset", self, other)

    def eq(self, other: "Expr") -> "Formula":
        return ComparisonFormula("equals", self, other)

    def neq(self, other: "Expr") -> "Formula":
        return NotFormula(ComparisonFormula("equals", self, other))


class RelationExpr(Expr):
    """A reference to a declared relation."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.arity = relation.arity

    def __repr__(self) -> str:
        return self.relation.name


class Variable(Expr):
    """A quantified variable; always denotes a singleton unary relation."""

    arity = 1

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


class ConstantExpr(Expr):
    """NONE (empty unary), UNIV (all atoms, unary), IDEN (identity, binary)."""

    def __init__(self, kind: str) -> None:
        if kind not in ("none", "univ", "iden"):
            raise ValueError(f"unknown constant {kind!r}")
        self.kind = kind
        self.arity = 2 if kind == "iden" else 1

    def __repr__(self) -> str:
        return self.kind.upper()


NONE = ConstantExpr("none")
UNIV = ConstantExpr("univ")
IDEN = ConstantExpr("iden")


class BinaryExpr(Expr):
    """Union, intersection, or difference of same-arity expressions."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if left.arity != right.arity:
            raise ValueError(
                f"{op} requires equal arities, got {left.arity} and {right.arity}"
            )
        self.op = op
        self.left = left
        self.right = right
        self.arity = left.arity

    def __repr__(self) -> str:
        symbol = {"union": "+", "intersection": "&", "difference": "-"}[self.op]
        return f"({self.left!r} {symbol} {self.right!r})"


class JoinExpr(Expr):
    """Relational join: matches the last column of left to the first of right."""

    def __init__(self, left: Expr, right: Expr) -> None:
        arity = left.arity + right.arity - 2
        if arity < 1:
            raise ValueError("join of two unary expressions is not a relation")
        self.left = left
        self.right = right
        self.arity = arity

    def __repr__(self) -> str:
        return f"({self.left!r}.{self.right!r})"


class ProductExpr(Expr):
    """Cartesian product (Alloy ``->``)."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right
        self.arity = left.arity + right.arity

    def __repr__(self) -> str:
        return f"({self.left!r} -> {self.right!r})"


class UnaryExpr(Expr):
    """Transpose and closures; defined on binary expressions only."""

    def __init__(self, op: str, operand: Expr) -> None:
        if operand.arity != 2:
            raise ValueError(f"{op} requires a binary expression")
        self.op = op
        self.operand = operand
        self.arity = 2

    def __repr__(self) -> str:
        symbol = {"transpose": "~", "closure": "^", "reflexive_closure": "*"}[self.op]
        return f"{symbol}{self.operand!r}"


class IfExpr(Expr):
    """Conditional expression (Alloy ``cond => e1 else e2``)."""

    def __init__(self, condition: "Formula", then: Expr, else_: Expr) -> None:
        if then.arity != else_.arity:
            raise ValueError("if-then-else branches must have equal arity")
        self.condition = condition
        self.then = then
        self.else_ = else_
        self.arity = then.arity

    def __repr__(self) -> str:
        return f"({self.condition!r} => {self.then!r} else {self.else_!r})"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------
class Formula:
    """Base class for first-order relational formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return NaryFormula("and", (self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return NaryFormula("or", (self, other))

    def __invert__(self) -> "Formula":
        return NotFormula(self)

    def implies(self, other: "Formula") -> "Formula":
        return NaryFormula("or", (NotFormula(self), other))

    def iff(self, other: "Formula") -> "Formula":
        return NaryFormula("and", (self.implies(other), other.implies(self)))


class TrueFormula(Formula):
    def __repr__(self) -> str:
        return "TRUE"


class FalseFormula(Formula):
    def __repr__(self) -> str:
        return "FALSE"


TRUE_F = TrueFormula()
FALSE_F = FalseFormula()


class ComparisonFormula(Formula):
    """Subset or equality between same-arity expressions."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if left.arity != right.arity:
            raise ValueError(
                f"{op} requires equal arities, got {left.arity} and {right.arity}"
            )
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        symbol = {"subset": "in", "equals": "="}[self.op]
        return f"({self.left!r} {symbol} {self.right!r})"


class MultiplicityFormula(Formula):
    """``some`` / ``no`` / ``one`` / ``lone`` applied to an expression."""

    def __init__(self, mult: str, expr: Expr) -> None:
        if mult not in ("some", "no", "one", "lone"):
            raise ValueError(f"unknown multiplicity {mult!r}")
        self.mult = mult
        self.expr = expr

    def __repr__(self) -> str:
        return f"({self.mult} {self.expr!r})"


class NotFormula(Formula):
    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def __repr__(self) -> str:
        return f"!{self.operand!r}"


class NaryFormula(Formula):
    def __init__(self, op: str, operands: Iterable[Formula]) -> None:
        if op not in ("and", "or"):
            raise ValueError(f"unknown connective {op!r}")
        self.op = op
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def __repr__(self) -> str:
        sep = " && " if self.op == "and" else " || "
        return "(" + sep.join(repr(f) for f in self.operands) + ")"


class QuantifiedFormula(Formula):
    """``all|some|no|one|lone var: bound | body``; bound must be unary."""

    def __init__(
        self, quant: str, variable: Variable, bound: Expr, body: Formula
    ) -> None:
        if quant not in ("all", "some", "no", "one", "lone"):
            raise ValueError(f"unknown quantifier {quant!r}")
        if bound.arity != 1:
            raise ValueError("quantification is over unary (set) expressions")
        self.quant = quant
        self.variable = variable
        self.bound = bound
        self.body = body

    def __repr__(self) -> str:
        return f"({self.quant} {self.variable!r}: {self.bound!r} | {self.body!r})"


# ---------------------------------------------------------------------------
# Convenience constructors (module-level, Alloy keyword style)
# ---------------------------------------------------------------------------
def some(expr: Expr) -> Formula:
    return MultiplicityFormula("some", expr)


def no(expr: Expr) -> Formula:
    return MultiplicityFormula("no", expr)


def one(expr: Expr) -> Formula:
    return MultiplicityFormula("one", expr)


def lone(expr: Expr) -> Formula:
    return MultiplicityFormula("lone", expr)


def not_(formula: Formula) -> Formula:
    return NotFormula(formula)


def and_all(formulas: Iterable[Formula]) -> Formula:
    formulas = tuple(formulas)
    if not formulas:
        return TRUE_F
    if len(formulas) == 1:
        return formulas[0]
    return NaryFormula("and", formulas)


def or_all(formulas: Iterable[Formula]) -> Formula:
    formulas = tuple(formulas)
    if not formulas:
        return FALSE_F
    if len(formulas) == 1:
        return formulas[0]
    return NaryFormula("or", formulas)


def all_(variable: Variable, bound: Expr, body: Formula) -> Formula:
    return QuantifiedFormula("all", variable, bound, body)


def some_(variable: Variable, bound: Expr, body: Formula) -> Formula:
    return QuantifiedFormula("some", variable, bound, body)


def no_(variable: Variable, bound: Expr, body: Formula) -> Formula:
    return QuantifiedFormula("no", variable, bound, body)


def one_(variable: Variable, bound: Expr, body: Formula) -> Formula:
    return QuantifiedFormula("one", variable, bound, body)


def lone_(variable: Variable, bound: Expr, body: Formula) -> Formula:
    return QuantifiedFormula("lone", variable, bound, body)


def ite_expr(condition: Formula, then: Expr, else_: Expr) -> Expr:
    return IfExpr(condition, then, else_)


def disjoint(exprs: Sequence[Expr]) -> Formula:
    """Pairwise-empty intersections (Alloy ``disj``)."""
    conjuncts = []
    for i in range(len(exprs)):
        for j in range(i + 1, len(exprs)):
            conjuncts.append(no(exprs[i] & exprs[j]))
    return and_all(conjuncts)
