"""The relational solving front door: solve, enumerate, minimize.

:class:`RelationalProblem` owns a formula plus bounds, translates once, and
exposes:

- :meth:`solve` -- first satisfying instance (or None);
- :meth:`solutions` -- enumeration via blocking clauses;
- :meth:`minimal_solutions` -- Aluminum-style principled scenario
  exploration: every yielded instance is *minimal* (no satisfying instance
  whose positive tuples are a strict subset exists), and later instances are
  never supersets of earlier ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.relational import ast as rast
from repro.relational.instance import Instance, instance_from_model
from repro.relational.translate import TranslationRecord, translate
from repro.relational.universe import AtomTuple, Bounds, Relation
from repro.sat import Solver
from repro.sat.solver import BudgetExhausted


@dataclass
class SolveStats:
    """Timing and size statistics exposed for the RQ3 benchmark harness.

    ``conflicts``/``decisions``/``propagations`` accumulate the CDCL
    counters over every solver call made through this problem (including
    minimization and enumeration re-solves), feeding the pipeline run
    report."""

    translation_seconds: float = 0.0
    solving_seconds: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    num_primary_vars: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solver_calls: int = 0


class RelationalProblem:
    """A relational formula under bounds, ready to solve incrementally.

    ``conflict_budget`` (settable after construction) caps the *total*
    CDCL conflicts spent across every solver call made through this
    problem; once the accumulated ``stats.conflicts`` reach it, further
    solves raise :class:`~repro.sat.solver.BudgetExhausted`.  The partial
    work of the interrupted call is still folded into ``stats``, so
    callers can degrade to the scenarios found so far without losing
    accounting.
    """

    def __init__(self, bounds: Bounds, formula: rast.Formula) -> None:
        self.bounds = bounds
        self.formula = formula
        self.conflict_budget: Optional[int] = None
        self.stats = SolveStats()
        start = time.perf_counter()
        self._record: TranslationRecord = translate(bounds, formula)
        self.stats.translation_seconds = time.perf_counter() - start
        self.stats.num_vars = self._record.cnf.num_vars
        self.stats.num_clauses = self._record.cnf.num_clauses
        self.stats.num_primary_vars = len(self._record.primary_vars)
        self._solver = Solver()
        if self._record.cnf.num_vars:
            self._solver.ensure_var(self._record.cnf.num_vars)
        self._trivially_unsat = self._record.trivially_unsat
        if not self._trivially_unsat:
            if not self._solver.add_clauses(self._record.cnf.clauses):
                self._trivially_unsat = True

    @property
    def primary_vars(self) -> Dict[Tuple[Relation, AtomTuple], int]:
        return self._record.primary_vars

    def _timed_solve(self, assumptions=()):
        """Run the solver, folding wall time and CDCL counters into stats.

        Counters are folded on *every* exit path: a budget miss loses the
        answer, never the accounting.
        """
        remaining: Optional[int] = None
        if self.conflict_budget is not None:
            remaining = self.conflict_budget - self.stats.conflicts
            if remaining <= 0:
                raise BudgetExhausted(self.stats.conflicts)
        start = time.perf_counter()
        try:
            result = self._solver.solve(
                assumptions=assumptions, conflict_budget=remaining
            )
        except BudgetExhausted as exc:
            self.stats.solving_seconds += time.perf_counter() - start
            self.stats.conflicts += exc.conflicts
            self.stats.decisions += exc.decisions
            self.stats.propagations += exc.propagations
            self.stats.solver_calls += 1
            raise
        self.stats.solving_seconds += time.perf_counter() - start
        self.stats.conflicts += result.conflicts
        self.stats.decisions += result.decisions
        self.stats.propagations += result.propagations
        self.stats.solver_calls += 1
        return result

    # ------------------------------------------------------------------
    def solve(self) -> Optional[Instance]:
        """Return one satisfying instance, or None if unsatisfiable."""
        if self._trivially_unsat:
            return None
        result = self._timed_solve()
        if not result.satisfiable:
            return None
        return instance_from_model(self.bounds, self.primary_vars, result.model)

    def solutions(self, limit: Optional[int] = None) -> Iterator[Instance]:
        """Enumerate distinct instances by blocking each found model.

        Distinctness is with respect to primary variables (relation
        contents), not auxiliary Tseitin variables.
        """
        if self._trivially_unsat:
            return
        count = 0
        primary = list(self.primary_vars.values())
        while limit is None or count < limit:
            result = self._timed_solve()
            if not result.satisfiable:
                return
            yield instance_from_model(self.bounds, self.primary_vars, result.model)
            count += 1
            if not primary:
                return  # only one instance distinguishable
            blocking = [(-v if result.model[v] else v) for v in primary]
            if not self._solver.add_clause(blocking):
                return

    # ------------------------------------------------------------------
    def minimal_solutions(self, limit: Optional[int] = None) -> Iterator[Instance]:
        """Aluminum-style enumeration of minimal scenarios.

        Each yielded instance is minimized by iteratively asking the solver
        for a model whose true primary variables form a strict subset of the
        current one (falsified variables stay false -- enforced through
        assumptions -- and at least one true variable flips, enforced by an
        activation-guarded clause).  Found minima are then blocked so later
        scenarios never contain an earlier one.
        """
        if self._trivially_unsat:
            return
        primary = list(self.primary_vars.values())
        count = 0
        while limit is None or count < limit:
            result = self._timed_solve()
            if not result.satisfiable:
                return
            model = result.model
            model = self._minimize(model, primary)
            yield instance_from_model(self.bounds, self.primary_vars, model)
            count += 1
            true_vars = [v for v in primary if model[v]]
            if not true_vars:
                return  # the empty instance is minimal and subsumes everything
            if not self._solver.add_clause([-v for v in true_vars]):
                return

    def minimal_solution(self) -> Optional[Instance]:
        """One satisfying instance, minimized (no enumeration blocking)."""
        if self._trivially_unsat:
            return None
        result = self._timed_solve()
        if not result.satisfiable:
            return None
        primary = list(self.primary_vars.values())
        model = self._minimize(result.model, primary)
        return instance_from_model(self.bounds, self.primary_vars, model)

    def block(self, rel_tuples) -> bool:
        """Forbid the conjunction of the given (relation, tuple) bindings.

        Used for diversity-driven enumeration: after decoding a scenario,
        block its role bindings so the next solve must change at least one
        of them.  Tuples fixed by the lower bound cannot be blocked; if all
        given tuples are fixed, enumeration is exhausted (returns False).
        """
        literals = []
        for relation, tup in rel_tuples:
            var = self.primary_vars.get((relation, tuple(tup)))
            if var is not None:
                literals.append(-var)
        if not literals:
            return False
        return self._solver.add_clause(literals)

    def _minimize(self, model: Dict[int, bool], primary: List[int]) -> Dict[int, bool]:
        """Shrink the model's true primary variables to a minimal set."""
        current = dict(model)
        while True:
            true_vars = [v for v in primary if current[v]]
            false_vars = [v for v in primary if not current[v]]
            if not true_vars:
                return current
            activation = self._solver.num_vars + 1
            self._solver.ensure_var(activation)
            # act -> (some currently-true var is false)
            self._solver.add_clause([-activation] + [-v for v in true_vars])
            assumptions = [activation] + [-v for v in false_vars]
            result = self._timed_solve(assumptions=assumptions)
            if not result.satisfiable:
                # Retire the activation literal and stop: current is minimal.
                self._solver.add_clause([-activation])
                return current
            current = result.model
            self._solver.add_clause([-activation])
