"""The relational solving front door: solve, enumerate, minimize.

:class:`RelationalProblem` owns a formula plus bounds, translates once, and
exposes:

- :meth:`solve` -- first satisfying instance (or None);
- :meth:`solutions` -- enumeration via blocking clauses;
- :meth:`minimal_solutions` -- Aluminum-style principled scenario
  exploration: every yielded instance is *minimal* (no satisfying instance
  whose positive tuples are a strict subset exists), and later instances are
  never supersets of earlier ones.

The problem is *multi-query*: after construction, additional formula groups
can be attached under fresh selector literals (:meth:`add_gated_formula`)
and every query method accepts ``assumptions``, so many mutually exclusive
goals share one persistent solver -- its learned clauses, variable
activities, and clause database stay warm across queries (the standard
assumption-based incremental SAT technique).

Minimization is *canonical*: :meth:`_minimize` computes the unique
lexicographically-least (prefer-false) model over the primary variables in
``(relation name, tuple)`` order.  The result depends only on the formula,
never on the solver's search trajectory, so a warm shared solver and a cold
per-goal solver yield byte-identical minimal scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.relational import ast as rast
from repro.relational.instance import Instance, instance_from_model
from repro.relational.translate import TranslationRecord, Translator
from repro.relational.universe import AtomTuple, Bounds, Relation
from repro.sat import DEFAULT_BACKEND, make_solver
from repro.sat.solver import BudgetExhausted


@dataclass
class SolveStats:
    """Timing and size statistics exposed for the RQ3 benchmark harness.

    ``conflicts``/``decisions``/``propagations`` accumulate the CDCL
    counters over every solver call made through this problem (including
    minimization and enumeration re-solves), feeding the pipeline run
    report."""

    translation_seconds: float = 0.0
    solving_seconds: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    num_primary_vars: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solver_calls: int = 0


class RelationalProblem:
    """A relational formula under bounds, ready to solve incrementally.

    ``conflict_budget`` (settable after construction) caps the *total*
    CDCL conflicts spent across every solver call made through this
    problem; once the accumulated ``stats.conflicts`` reach it, further
    solves raise :class:`~repro.sat.solver.BudgetExhausted`.  The partial
    work of the interrupted call is still folded into ``stats``, so
    callers can degrade to the scenarios found so far without losing
    accounting.  Multi-query callers re-arm the budget between queries by
    setting ``conflict_budget = stats.conflicts + window``.
    """

    def __init__(
        self,
        bounds: Bounds,
        formula: rast.Formula,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.bounds = bounds
        self.formula = formula
        self.backend = backend
        self.conflict_budget: Optional[int] = None
        self.stats = SolveStats()
        start = time.perf_counter()
        self._translator = Translator(bounds)
        ok = self._translator.assert_formula(formula)
        self._record = TranslationRecord(
            cnf=self._translator.cnf,
            primary_vars=self._translator.primary_vars,
            trivially_unsat=not ok,
        )
        self.stats.translation_seconds = time.perf_counter() - start
        self.stats.num_primary_vars = len(self._record.primary_vars)
        # Backend choice is a wall-clock knob only: both backends are
        # verified byte-identical on relational results (the canonical
        # lex-greedy minimization makes minimal scenarios trajectory-
        # independent), so nothing downstream may key on it.
        self._solver = make_solver(backend)
        self._fed_clauses = 0
        self._trivially_unsat = self._record.trivially_unsat
        self._canonical_order: Optional[List[int]] = None
        # Negated activation literals of finished minimizations, assumed
        # false on every later query (prefix-friendly retirement).
        self._retired: List[int] = []
        # assumption literal -> {primary var: value forced while that
        # literal is assumed}.  Positive keys come from gated
        # require/forbid tuples (forced while the selector holds),
        # negative keys from absent-unless clamps (forced while the
        # selector is switched off).
        self._gated_fixed: Dict[int, Dict[int, bool]] = {}
        # selectors whose gated formula folded to FALSE at translation
        self._dead_gates: set = set()
        if self._trivially_unsat:
            # Mirror the historical one-shot behaviour: a trivially
            # unsatisfiable base never feeds the solver.
            self.stats.num_vars = self._record.cnf.num_vars
            self.stats.num_clauses = self._record.cnf.num_clauses
            self._fed_clauses = self._record.cnf.num_clauses
        else:
            self._sync_solver()

    @property
    def primary_vars(self) -> Dict[Tuple[Relation, AtomTuple], int]:
        return self._record.primary_vars

    @property
    def num_learnt(self) -> int:
        """Learned clauses currently retained by the persistent solver."""
        return self._solver.num_learnt

    def reset_phases(self) -> None:
        """Restore prefer-false polarity on the persistent solver.

        Call between unrelated assumption groups: phases saved while
        enumerating one group bias the next group's witnesses toward the
        previous models, which makes minimization walk a dense tail."""
        self._solver.reset_phases()

    def _sync_solver(self) -> None:
        """Feed clauses translated since the last sync into the solver."""
        cnf = self._record.cnf
        self.stats.num_vars = cnf.num_vars
        self.stats.num_clauses = cnf.num_clauses
        if self._trivially_unsat:
            self._fed_clauses = cnf.num_clauses
            return
        if cnf.num_vars:
            self._solver.ensure_var(cnf.num_vars)
        new = cnf.clauses[self._fed_clauses :]
        self._fed_clauses = cnf.num_clauses
        if new and not self._solver.add_clauses(new):
            self._trivially_unsat = True

    # ------------------------------------------------------------------
    # Multi-query API
    # ------------------------------------------------------------------
    def add_gated_formula(self, formula: rast.Formula, mask=None) -> int:
        """Attach ``formula`` under a fresh selector literal and return it.

        The formula's clauses only bind when the selector is assumed true,
        so several goals can share this problem's translation and solver:
        pass ``[selector]`` (plus the negations of the other groups'
        selectors) as ``assumptions`` to the query methods.  Tseitin
        definitions are hash-consed with everything translated before, so
        shared subcircuits cost nothing the second time.

        ``mask`` lists ``(relation, tuple)`` rows to fold to FALSE during
        this translation; only sound when other clauses (typing +
        ``add_gated_tuples`` forbids) already force those rows false
        whenever the selector is assumed.

        Must be called before any solving that allocates solver-side
        auxiliary variables (i.e. attach all groups first, then query).
        """
        if self._solver.num_vars > self._record.cnf.num_vars:
            raise RuntimeError(
                "add_gated_formula must precede solving: the solver has "
                "already allocated auxiliary variables past the CNF"
            )
        start = time.perf_counter()
        selector = self._record.cnf.new_var()
        ok = self._translator.assert_formula_gated(formula, selector, mask=mask)
        if not ok:
            # The emitted unit (-selector) forbids ever activating the
            # group; callers can skip its bookkeeping via dead_gates.
            self._dead_gates.add(selector)
        self.stats.translation_seconds += time.perf_counter() - start
        self._sync_solver()
        return selector

    @property
    def dead_gates(self):
        """Selectors whose gated formula folded to the FALSE constant.

        A query assuming a dead selector is unsatisfiable by the unit
        clause emitted at translation; no further per-group clauses
        (typing, membership units) are needed for it.
        """
        return frozenset(self._dead_gates)

    def add_formula(self, formula: rast.Formula) -> bool:
        """Assert an ungated formula into the shared problem.

        Returns False when the formula folds to the FALSE constant, in
        which case the whole problem becomes trivially unsatisfiable.
        Like :meth:`add_gated_formula`, must precede any solving that
        allocates solver-side auxiliary variables.
        """
        if self._solver.num_vars > self._record.cnf.num_vars:
            raise RuntimeError(
                "add_formula must precede solving: the solver has "
                "already allocated auxiliary variables past the CNF"
            )
        start = time.perf_counter()
        ok = self._translator.assert_formula(formula)
        self.stats.translation_seconds += time.perf_counter() - start
        if not ok:
            self._record.trivially_unsat = True
            self._trivially_unsat = True
        self._sync_solver()
        return ok

    def add_gated_tuples(self, selector: int, require=(), forbid=()) -> None:
        """Force tuple memberships under ``selector``.

        ``require``/``forbid`` are iterables of ``(relation, tuple)``:
        whenever the selector is assumed true, required free tuples must be
        present and forbidden ones absent.  Tuples fixed by the lower bound
        satisfy ``require`` vacuously; a forbidden lower-bound tuple is a
        caller error (it can never be absent) and raises ``ValueError``.
        """
        cnf = self._record.cnf
        fixed = self._gated_fixed.setdefault(selector, {})
        for relation, tup in require:
            var = self.primary_vars.get((relation, tuple(tup)))
            if var is not None:
                cnf.add_clause((-selector, var))
                fixed[var] = True
        for relation, tup in forbid:
            var = self.primary_vars.get((relation, tuple(tup)))
            if var is not None:
                cnf.add_clause((-selector, -var))
                fixed[var] = False
            elif tuple(tup) in self.bounds.lower(relation):
                raise ValueError(
                    f"cannot forbid lower-bound tuple {tup!r} of "
                    f"{relation.name}"
                )
        self._sync_solver()

    def add_absent_unless(self, selectors, rows) -> None:
        """Force free tuple rows absent while every selector is *false*.

        The complement of :meth:`add_gated_tuples`'s ``forbid``: each
        clause is ``(sel_1, ..., sel_m, -var)``, so once the assumptions
        negate all the selectors, every row is propagated false at the
        *last* such assumption's own trail level -- deep in a saved
        assumption prefix, where trail-saving backends keep it across
        queries.  Use it to clamp rows that only the selectors' gated
        formulas can constrain -- otherwise they are free whenever the
        owning groups are switched off, and every warm query re-decides
        them.  ``selectors`` is a single selector or a non-empty
        sequence (a row shared by several groups is absent only while
        all of them are off).  Rows fixed by the lower bound are a
        caller error (they can never be absent) and raise
        ``ValueError``.
        """
        if isinstance(selectors, int):
            selectors = (selectors,)
        else:
            selectors = tuple(selectors)
        if not selectors:
            raise ValueError("add_absent_unless needs at least one selector")
        cnf = self._record.cnf
        # Single-owner rows are semantically fixed whenever ``-selector``
        # is assumed; record them so minimization pins them unprobed.
        # Multi-owner rows would need a conjunction of assumptions to be
        # fixed, which the per-literal map cannot express -- they just
        # take the ordinary witness-false pin, which costs no probe.
        fixed = (
            self._gated_fixed.setdefault(-selectors[0], {})
            if len(selectors) == 1
            else None
        )
        for relation, tup in rows:
            var = self.primary_vars.get((relation, tuple(tup)))
            if var is not None:
                cnf.add_clause(selectors + (-var,))
                if fixed is not None:
                    fixed[var] = False
            elif tuple(tup) in self.bounds.lower(relation):
                raise ValueError(
                    f"cannot clamp lower-bound tuple {tup!r} of "
                    f"{relation.name}"
                )
        self._sync_solver()

    def referenced_vars(self, start: int = 0):
        """Variables occurring in clauses added from index ``start`` on.

        A primary variable absent from this set is unconstrained: no
        clause can ever force it true, so prefer-false minimization pins
        it false without help.  The shared encoding uses this (with
        ``start`` at the base translation's first clause) to skip typing
        clauses for rows the base never mentions.
        """
        seen = set()
        for clause in self._record.cnf.clauses[start:]:
            seen.update(abs(lit) for lit in clause)
        return seen

    def add_typing_tuples(self, member, rows) -> None:
        """Tie free ``rows`` to a free ``member`` tuple, ungated.

        For each ``(relation, tuple)`` in ``rows``, adds the clause
        ``row -> member``: the row can only be present in a model where
        the member tuple is.  Used by the shared encoding to make every
        row mentioning an anonymous atom depend on that atom's sig
        membership, so a signature group only needs to gate the handful
        of membership rows of foreign atoms rather than every row that
        mentions one.  If ``member`` is fixed by the lower bound the
        rows are vacuously typed and nothing is added.
        """
        relation, tup = member
        member_var = self.primary_vars.get((relation, tuple(tup)))
        if member_var is None:
            return
        cnf = self._record.cnf
        for rel, row in rows:
            var = self.primary_vars.get((rel, tuple(row)))
            if var is not None and var != member_var:
                cnf.add_clause((-var, member_var))
        self._sync_solver()

    def _timed_solve(self, assumptions=()):
        """Run the solver, folding wall time and CDCL counters into stats.

        Counters are folded on *every* exit path: a budget miss loses the
        answer, never the accounting.  Retired minimization activations
        are appended to every query's assumptions (see
        :meth:`_minimize`), keeping their pin clauses inert without a
        root-level unit clause.
        """
        remaining: Optional[int] = None
        if self.conflict_budget is not None:
            remaining = self.conflict_budget - self.stats.conflicts
            if remaining <= 0:
                raise BudgetExhausted(self.stats.conflicts)
        if self._retired:
            assumptions = [*assumptions, *self._retired]
        start = time.perf_counter()
        try:
            result = self._solver.solve(
                assumptions=assumptions, conflict_budget=remaining
            )
        except BudgetExhausted as exc:
            self.stats.solving_seconds += time.perf_counter() - start
            self.stats.conflicts += exc.conflicts
            self.stats.decisions += exc.decisions
            self.stats.propagations += exc.propagations
            self.stats.solver_calls += 1
            raise
        self.stats.solving_seconds += time.perf_counter() - start
        self.stats.conflicts += result.conflicts
        self.stats.decisions += result.decisions
        self.stats.propagations += result.propagations
        self.stats.solver_calls += 1
        return result

    @staticmethod
    def _gated(gate: Optional[int], literals: List[int]) -> List[int]:
        """A blocking clause, inert unless ``gate`` is assumed true."""
        return literals if gate is None else [-gate] + literals

    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Instance]:
        """Return one satisfying instance, or None if unsatisfiable."""
        if self._trivially_unsat:
            return None
        result = self._timed_solve(assumptions=assumptions)
        if not result.satisfiable:
            return None
        return instance_from_model(self.bounds, self.primary_vars, result.model)

    def solutions(
        self,
        limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
        gate: Optional[int] = None,
    ) -> Iterator[Instance]:
        """Enumerate distinct instances by blocking each found model.

        Distinctness is with respect to primary variables (relation
        contents), not auxiliary Tseitin variables.  With ``gate`` set,
        blocking clauses are guarded by it, so the enumeration of one
        gated group leaves every other group's model space untouched.
        """
        if self._trivially_unsat:
            return
        count = 0
        primary = list(self.primary_vars.values())
        while limit is None or count < limit:
            result = self._timed_solve(assumptions=assumptions)
            if not result.satisfiable:
                return
            yield instance_from_model(self.bounds, self.primary_vars, result.model)
            count += 1
            if not primary:
                return  # only one instance distinguishable
            # Root-fixed variables take the same value in every model, so
            # their literals in a model-difference clause are permanently
            # false -- strip them (the clause is equivalent, and stays
            # attachable high in a saved trail).
            blocking = [
                (-v if result.model[v] else v)
                for v in primary
                if self._solver.root_value(v) is None
            ]
            if not self._solver.add_clause(self._gated(gate, blocking)):
                return

    # ------------------------------------------------------------------
    def minimal_solutions(
        self,
        limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
        gate: Optional[int] = None,
    ) -> Iterator[Instance]:
        """Aluminum-style enumeration of minimal scenarios.

        Each yielded instance is the canonical minimal model (see
        :meth:`_minimize`); found minima are then blocked -- under
        ``gate`` when given -- so later scenarios never contain an
        earlier one.
        """
        if self._trivially_unsat:
            return
        primary = list(self.primary_vars.values())
        count = 0
        while limit is None or count < limit:
            result = self._timed_solve(assumptions=assumptions)
            if not result.satisfiable:
                return
            model = result.model
            model = self._minimize(model, primary, assumptions=assumptions)
            yield instance_from_model(self.bounds, self.primary_vars, model)
            count += 1
            true_vars = [v for v in primary if model[v]]
            if not true_vars:
                return  # the empty instance is minimal and subsumes everything
            # Literals already implied false whenever the clause is live
            # are stripped before adding: ``-v`` for root-fixed facts
            # (permanently true) and for rows the gate's require tuples
            # force true.  The stripped clause is logically equivalent,
            # but it no longer mentions deeply-seated trail literals, so
            # a trail-saving backend can attach it near the top of the
            # trail instead of unwinding the active selector's seating.
            forced = self._gated_fixed.get(gate, {}) if gate else {}
            free_true = [
                v
                for v in true_vars
                if not forced.get(v, False)
                and self._solver.root_value(v) is not True
            ]
            blocking = self._gated(gate, [-v for v in free_true])
            if not self._solver.add_clause(blocking):
                return

    def minimal_solution(
        self, assumptions: Sequence[int] = ()
    ) -> Optional[Instance]:
        """One satisfying instance, minimized (no enumeration blocking)."""
        if self._trivially_unsat:
            return None
        result = self._timed_solve(assumptions=assumptions)
        if not result.satisfiable:
            return None
        primary = list(self.primary_vars.values())
        model = self._minimize(result.model, primary, assumptions=assumptions)
        return instance_from_model(self.bounds, self.primary_vars, model)

    def block(self, rel_tuples, gate: Optional[int] = None) -> bool:
        """Forbid the conjunction of the given (relation, tuple) bindings.

        Used for diversity-driven enumeration: after decoding a scenario,
        block its role bindings so the next solve must change at least one
        of them.  Tuples fixed by the lower bound cannot be blocked; if all
        given tuples are fixed, enumeration is exhausted (returns False).
        With ``gate`` set, the clause only binds while that selector is
        assumed true.
        """
        literals = []
        for relation, tup in rel_tuples:
            var = self.primary_vars.get((relation, tuple(tup)))
            if var is not None:
                literals.append(-var)
        if not literals:
            return False
        return self._solver.add_clause(self._gated(gate, literals))

    # ------------------------------------------------------------------
    def _canonical_primary(self) -> List[int]:
        """Primary variables in ``(relation name, tuple)`` order.

        This ordering is a pure function of the bounds, so two problems
        over the same bounds minimize in the same order regardless of
        variable numbering or solver state.
        """
        if self._canonical_order is None:
            self._canonical_order = [
                var
                for (_, _), var in sorted(
                    (
                        ((relation.name, tup), var)
                        for (relation, tup), var in self.primary_vars.items()
                    ),
                )
            ]
        return self._canonical_order

    def _minimize(
        self,
        model: Dict[int, bool],
        primary: List[int],
        assumptions: Sequence[int] = (),
    ) -> Dict[int, bool]:
        """Compute the canonical minimal model: the lexicographically least
        (prefer-false) assignment to the primary variables in canonical
        order, among models satisfying the formula plus ``assumptions``.

        Greedy per-variable fixing: walk the canonical order; a variable
        already false in the latest witness is fixed false for free,
        otherwise one solver call decides whether it *can* be false given
        everything fixed before it.  The result is the unique lex-min
        model -- by a first-divergence argument it is also subset-minimal
        (any model with strictly fewer true tuples would have allowed an
        earlier variable to be fixed false) -- and it depends only on the
        formula, never on the incoming ``model`` or the solver trajectory.

        Two mechanics keep the call count near the (small) size of the
        minimal model rather than the variable count:

        - Decided values are pinned with clauses guarded by a throwaway
          activation literal (retired afterwards), so the assumption list
          stays short no matter how many variables the problem has.
        - When the witness tail is dense, a *sparsifying probe* first asks
          whether every remaining witness-true variable can be false
          simultaneously; a satisfying answer replaces the witness with a
          much sparser one, letting the walk skip the tail nearly for
          free.  Phase saving makes warm-solver witnesses dense in
          unconstrained variables; the probe is a pure witness improvement
          and never decides a value, so the returned model is unaffected.
        """
        activation = self._solver.num_vars + 1
        self._solver.ensure_var(activation)
        base = list(assumptions) + [activation]
        order = self._canonical_primary()
        witness = dict(model)
        fix = lambda lit: self._solver.add_clause((-activation, lit))  # noqa: E731
        # Values forced by the assumed selector literals (gated
        # require/forbid tuples under a positive selector, absent-unless
        # clamps under a negated one) are semantically determined -- pin
        # them without probing, and keep the forced-true ones out of
        # sparsifying probes, which would otherwise always come back
        # unsatisfiable.
        forced: Dict[int, bool] = {}
        for lit in assumptions:
            fixed = self._gated_fixed.get(lit)
            if fixed:
                forced.update(fixed)
        sparsify_threshold = 8
        sparsify_attempts = 4
        try:
            index, total = 0, len(order)
            while index < total:
                var = order[index]
                if var in forced:
                    fix(var if forced[var] else -var)
                    index += 1
                    continue
                if not witness.get(var, False):
                    fix(-var)
                    index += 1
                    continue
                rest_true = [
                    u
                    for u in order[index:]
                    if witness.get(u, False) and not forced.get(u, False)
                ]
                if (
                    len(rest_true) >= sparsify_threshold
                    and sparsify_attempts > 0
                ):
                    sparsify_attempts -= 1
                    result = self._timed_solve(
                        assumptions=base + [-u for u in rest_true]
                    )
                    if result.satisfiable:
                        witness = result.model
                        continue  # re-examine var against the new witness
                    # Some of the tail must stay true: probe individually,
                    # and stop re-trying the full tail.
                    sparsify_attempts = 0
                result = self._timed_solve(assumptions=base + [-var])
                if result.satisfiable:
                    witness = result.model
                    fix(-var)
                else:
                    fix(var)
                index += 1
        finally:
            # Retire the activation literal: every later query assumes it
            # false, so the pin clauses become inert.  An assumption
            # (rather than the unit clause ``(-activation,)``) is used
            # deliberately: a unit must bind at the root, which would
            # force a backend with a saved assumption trail to unwind it
            # completely after every minimization.  The two are
            # equivalent on primary-variable projections -- pin clauses
            # only bite under ``activation=True``, and flipping the
            # activation to False relaxes a model without touching
            # primary variables -- so results are unchanged.
            self._retired.append(-activation)
        return witness
