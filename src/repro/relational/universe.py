"""Atoms, relations, and Kodkod-style bounds.

A :class:`Universe` is a finite ordered set of named atoms.  A
:class:`Relation` is a named k-ary relation variable.  :class:`Bounds`
assigns every relation a *lower* bound (tuples that must be present -- the
partial instance) and an *upper* bound (tuples that may be present).  SEPAR
exploits lower bounds heavily: the facts extracted from each app by static
analysis are injected as exact bounds, so only the postulated malicious
elements remain for the SAT solver to fill in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

Atom = str
AtomTuple = Tuple[Atom, ...]


class Universe:
    """An ordered collection of distinct atoms."""

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._atoms: List[Atom] = []
        self._index: Dict[Atom, int] = {}
        for atom in atoms:
            self.add(atom)

    def add(self, atom: Atom) -> Atom:
        """Add an atom; re-adding an existing atom is an error."""
        if atom in self._index:
            raise ValueError(f"duplicate atom {atom!r}")
        self._index[atom] = len(self._atoms)
        self._atoms.append(atom)
        return atom

    def extend(self, atoms: Iterable[Atom]) -> List[Atom]:
        return [self.add(a) for a in atoms]

    def index(self, atom: Atom) -> int:
        try:
            return self._index[atom]
        except KeyError:
            raise KeyError(f"atom {atom!r} not in universe") from None

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._index

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self):
        return iter(self._atoms)

    @property
    def atoms(self) -> Sequence[Atom]:
        return self._atoms

    def __repr__(self) -> str:
        return f"Universe({len(self._atoms)} atoms)"


class Relation:
    """A named relational variable of fixed arity."""

    __slots__ = ("name", "arity")

    def __init__(self, name: str, arity: int) -> None:
        if arity < 1:
            raise ValueError("arity must be at least 1")
        self.name = name
        self.arity = arity

    # Relations participate in expressions; import locally to avoid a cycle.
    def to_expr(self) -> "RelationExpr":  # noqa: F821 - forward ref
        from repro.relational.ast import RelationExpr

        return RelationExpr(self)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity})"


def _check_tuples(
    relation: Relation, universe: Universe, tuples: Iterable[AtomTuple]
) -> FrozenSet[AtomTuple]:
    checked = set()
    for tup in tuples:
        tup = tuple(tup)
        if len(tup) != relation.arity:
            raise ValueError(
                f"tuple {tup!r} has arity {len(tup)}, expected {relation.arity} "
                f"for {relation.name}"
            )
        for atom in tup:
            if atom not in universe:
                raise KeyError(f"atom {atom!r} not in universe")
        checked.add(tup)
    return frozenset(checked)


class Bounds:
    """Lower/upper tuple bounds for every relation in a problem."""

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        self._lower: Dict[Relation, FrozenSet[AtomTuple]] = {}
        self._upper: Dict[Relation, FrozenSet[AtomTuple]] = {}

    def bound(
        self,
        relation: Relation,
        lower: Iterable[AtomTuple],
        upper: Optional[Iterable[AtomTuple]] = None,
    ) -> None:
        """Set bounds; ``upper=None`` makes the bound exact (upper = lower)."""
        low = _check_tuples(relation, self.universe, lower)
        up = low if upper is None else _check_tuples(relation, self.universe, upper)
        if not low <= up:
            raise ValueError(
                f"lower bound of {relation.name} is not contained in its upper bound"
            )
        self._lower[relation] = low
        self._upper[relation] = up

    def bound_exact(self, relation: Relation, tuples: Iterable[AtomTuple]) -> None:
        self.bound(relation, tuples)

    def lower(self, relation: Relation) -> FrozenSet[AtomTuple]:
        return self._lower[relation]

    def upper(self, relation: Relation) -> FrozenSet[AtomTuple]:
        return self._upper[relation]

    @property
    def relations(self) -> Sequence[Relation]:
        return list(self._upper)

    def __contains__(self, relation: Relation) -> bool:
        return relation in self._upper

    def __repr__(self) -> str:
        return f"Bounds({len(self._upper)} relations over {self.universe!r})"


def products(universe_sets: Sequence[Sequence[Atom]]) -> List[AtomTuple]:
    """Cartesian product of atom sets, as a tuple list (bound helper)."""
    result: List[AtomTuple] = [()]
    for atoms in universe_sets:
        result = [prev + (a,) for prev in result for a in atoms]
    return result
