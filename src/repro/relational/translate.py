"""Kodkod-style translation of bounded relational logic to CNF.

Every relation becomes a sparse boolean adjacency matrix over the universe:
tuples in the lower bound map to the TRUE circuit constant, tuples in the
upper bound but not the lower map to fresh SAT variables (the *primary
variables*), and all other tuples are absent (FALSE).  Expressions are
evaluated to matrices by structural recursion; formulas become boolean
circuits which the Tseitin encoder turns into clauses.

Quantifiers are ground out over the upper bound of their bounding
expression, which is sound and complete within the declared bounds --
exactly the finitization the Alloy Analyzer performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sat import tseitin as ts
from repro.sat.cnf import CNF
from repro.relational import ast as rast
from repro.relational.universe import Bounds, Relation

AtomIndexTuple = Tuple[int, ...]


class Matrix:
    """A sparse boolean matrix: tuple of atom indices -> circuit node.

    Missing entries are FALSE.  TRUE/FALSE constants are folded eagerly by
    the circuit factories, so lower-bound tuples cost nothing downstream.
    """

    __slots__ = ("arity", "entries")

    def __init__(self, arity: int, entries: Dict[AtomIndexTuple, ts.Node]) -> None:
        self.arity = arity
        self.entries = {k: v for k, v in entries.items() if v is not ts.FALSE}

    def get(self, key: AtomIndexTuple) -> ts.Node:
        return self.entries.get(key, ts.FALSE)

    def __repr__(self) -> str:
        return f"Matrix(arity={self.arity}, {len(self.entries)} entries)"


@dataclass
class TranslationRecord:
    """Output of :func:`translate`: the CNF plus variable provenance."""

    cnf: CNF
    primary_vars: Dict[Tuple[Relation, Tuple[str, ...]], int]
    trivially_unsat: bool = False

    @property
    def var_to_tuple(self) -> Dict[int, Tuple[Relation, Tuple[str, ...]]]:
        return {v: k for k, v in self.primary_vars.items()}


class Translator:
    """Translates expressions and formulas against fixed bounds."""

    def __init__(self, bounds: Bounds, cnf: Optional[CNF] = None) -> None:
        self.bounds = bounds
        self.universe = bounds.universe
        self.cnf = cnf if cnf is not None else CNF()
        self.encoder = ts.TseitinEncoder(self.cnf)
        self.primary_vars: Dict[Tuple[Relation, Tuple[str, ...]], int] = {}
        self._rel_matrices: Dict[Relation, Matrix] = {}
        self._allocate()

    def _allocate(self) -> None:
        idx = self.universe.index
        for relation in self.bounds.relations:
            lower = self.bounds.lower(relation)
            upper = self.bounds.upper(relation)
            entries: Dict[AtomIndexTuple, ts.Node] = {}
            for tup in sorted(upper):
                key = tuple(idx(a) for a in tup)
                if tup in lower:
                    entries[key] = ts.TRUE
                else:
                    var = self.cnf.new_var()
                    self.primary_vars[(relation, tup)] = var
                    entries[key] = ts.var(var)
            self._rel_matrices[relation] = Matrix(relation.arity, entries)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, expr: rast.Expr, env: Optional[Dict[rast.Variable, int]] = None
    ) -> Matrix:
        env = env or {}
        return self._eval(expr, env)

    def _eval(self, expr: rast.Expr, env: Dict[rast.Variable, int]) -> Matrix:
        if isinstance(expr, rast.RelationExpr):
            if expr.relation not in self._rel_matrices:
                raise KeyError(f"relation {expr.relation.name} has no bounds")
            return self._rel_matrices[expr.relation]
        if isinstance(expr, rast.Variable):
            if expr not in env:
                raise KeyError(f"unbound variable {expr.name}")
            return Matrix(1, {(env[expr],): ts.TRUE})
        if isinstance(expr, rast.ConstantExpr):
            return self._eval_constant(expr)
        if isinstance(expr, rast.BinaryExpr):
            return self._eval_binary(expr, env)
        if isinstance(expr, rast.JoinExpr):
            return self._join(self._eval(expr.left, env), self._eval(expr.right, env))
        if isinstance(expr, rast.ProductExpr):
            return self._product(
                self._eval(expr.left, env), self._eval(expr.right, env)
            )
        if isinstance(expr, rast.UnaryExpr):
            return self._eval_unary(expr, env)
        if isinstance(expr, rast.IfExpr):
            cond = self.translate_formula(expr.condition, env)
            then = self._eval(expr.then, env)
            else_ = self._eval(expr.else_, env)
            keys = set(then.entries) | set(else_.entries)
            entries = {
                k: ts.or_(
                    ts.and_(cond, then.get(k)), ts.and_(ts.not_(cond), else_.get(k))
                )
                for k in keys
            }
            return Matrix(then.arity, entries)
        raise TypeError(f"unknown expression type {type(expr).__name__}")

    def _eval_constant(self, expr: rast.ConstantExpr) -> Matrix:
        n = len(self.universe)
        if expr.kind == "none":
            return Matrix(1, {})
        if expr.kind == "univ":
            return Matrix(1, {(i,): ts.TRUE for i in range(n)})
        return Matrix(2, {(i, i): ts.TRUE for i in range(n)})

    def _eval_binary(
        self, expr: rast.BinaryExpr, env: Dict[rast.Variable, int]
    ) -> Matrix:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if expr.op == "union":
            keys = set(left.entries) | set(right.entries)
            return Matrix(
                left.arity, {k: ts.or_(left.get(k), right.get(k)) for k in keys}
            )
        if expr.op == "intersection":
            keys = set(left.entries) & set(right.entries)
            return Matrix(
                left.arity, {k: ts.and_(left.get(k), right.get(k)) for k in keys}
            )
        # difference
        return Matrix(
            left.arity,
            {
                k: ts.and_(v, ts.not_(right.get(k)))
                for k, v in left.entries.items()
            },
        )

    def _join(self, left: Matrix, right: Matrix) -> Matrix:
        arity = left.arity + right.arity - 2
        # Index right-hand entries by leading atom.
        by_head: Dict[int, List[Tuple[AtomIndexTuple, ts.Node]]] = {}
        for rkey, rnode in right.entries.items():
            by_head.setdefault(rkey[0], []).append((rkey[1:], rnode))
        combined: Dict[AtomIndexTuple, List[ts.Node]] = {}
        for lkey, lnode in left.entries.items():
            tail = lkey[-1]
            for rrest, rnode in by_head.get(tail, ()):
                combined.setdefault(lkey[:-1] + rrest, []).append(
                    ts.and_(lnode, rnode)
                )
        return Matrix(arity, {k: ts.or_(*v) for k, v in combined.items()})

    def _product(self, left: Matrix, right: Matrix) -> Matrix:
        entries = {
            lk + rk: ts.and_(lv, rv)
            for lk, lv in left.entries.items()
            for rk, rv in right.entries.items()
        }
        return Matrix(left.arity + right.arity, entries)

    def _eval_unary(
        self, expr: rast.UnaryExpr, env: Dict[rast.Variable, int]
    ) -> Matrix:
        operand = self._eval(expr.operand, env)
        if expr.op == "transpose":
            return Matrix(2, {(b, a): v for (a, b), v in operand.entries.items()})
        closure = self._closure(operand)
        if expr.op == "closure":
            return closure
        # reflexive closure: add the identity
        entries = dict(closure.entries)
        for i in range(len(self.universe)):
            entries[(i, i)] = ts.TRUE
        return Matrix(2, entries)

    def _closure(self, matrix: Matrix) -> Matrix:
        """Transitive closure by iterated squaring."""
        result = matrix
        span = 1
        n = max(len(self.universe), 2)
        while span < n:
            squared = self._join(result, result)
            keys = set(result.entries) | set(squared.entries)
            result = Matrix(
                2, {k: ts.or_(result.get(k), squared.get(k)) for k in keys}
            )
            span *= 2
        return result

    # ------------------------------------------------------------------
    # Formula translation
    # ------------------------------------------------------------------
    def translate_formula(
        self, formula: rast.Formula, env: Optional[Dict[rast.Variable, int]] = None
    ) -> ts.Node:
        env = env or {}
        return self._formula(formula, env)

    def _formula(self, formula: rast.Formula, env: Dict[rast.Variable, int]) -> ts.Node:
        if isinstance(formula, rast.TrueFormula):
            return ts.TRUE
        if isinstance(formula, rast.FalseFormula):
            return ts.FALSE
        if isinstance(formula, rast.NotFormula):
            return ts.not_(self._formula(formula.operand, env))
        if isinstance(formula, rast.NaryFormula):
            nodes = [self._formula(f, env) for f in formula.operands]
            return ts.and_(*nodes) if formula.op == "and" else ts.or_(*nodes)
        if isinstance(formula, rast.ComparisonFormula):
            return self._comparison(formula, env)
        if isinstance(formula, rast.MultiplicityFormula):
            matrix = self._eval(formula.expr, env)
            return self._multiplicity(formula.mult, list(matrix.entries.values()))
        if isinstance(formula, rast.QuantifiedFormula):
            return self._quantified(formula, env)
        raise TypeError(f"unknown formula type {type(formula).__name__}")

    def _comparison(
        self, formula: rast.ComparisonFormula, env: Dict[rast.Variable, int]
    ) -> ts.Node:
        left = self._eval(formula.left, env)
        right = self._eval(formula.right, env)
        subset = ts.all_of(
            ts.implies(v, right.get(k)) for k, v in left.entries.items()
        )
        if formula.op == "subset":
            return subset
        superset = ts.all_of(
            ts.implies(v, left.get(k)) for k, v in right.entries.items()
        )
        return ts.and_(subset, superset)

    def _multiplicity(self, mult: str, nodes: List[ts.Node]) -> ts.Node:
        if mult == "some":
            return ts.any_of(nodes)
        if mult == "no":
            return ts.not_(ts.any_of(nodes))
        at_most_one = self._at_most_one(nodes)
        if mult == "lone":
            return at_most_one
        return ts.and_(ts.any_of(nodes), at_most_one)  # one

    @staticmethod
    def _at_most_one(nodes: List[ts.Node]) -> ts.Node:
        """Linear-size sequential (ladder) at-most-one circuit."""
        live = [n for n in nodes if n is not ts.FALSE]
        if len(live) <= 1:
            return ts.TRUE
        constraints: List[ts.Node] = []
        seen_before = live[0]
        for node in live[1:]:
            constraints.append(ts.not_(ts.and_(seen_before, node)))
            seen_before = ts.or_(seen_before, node)
        return ts.all_of(constraints)

    def _quantified(
        self, formula: rast.QuantifiedFormula, env: Dict[rast.Variable, int]
    ) -> ts.Node:
        bound = self._eval(formula.bound, env)
        memberships: List[Tuple[int, ts.Node]] = [
            (key[0], node) for key, node in bound.entries.items()
        ]
        bodies: List[Tuple[ts.Node, ts.Node]] = []
        for atom_idx, member in memberships:
            child_env = dict(env)
            child_env[formula.variable] = atom_idx
            bodies.append((member, self._formula(formula.body, child_env)))
        if formula.quant == "all":
            return ts.all_of(ts.implies(m, b) for m, b in bodies)
        if formula.quant == "some":
            return ts.any_of(ts.and_(m, b) for m, b in bodies)
        if formula.quant == "no":
            return ts.not_(ts.any_of(ts.and_(m, b) for m, b in bodies))
        holds = [ts.and_(m, b) for m, b in bodies]
        at_most = self._at_most_one(holds)
        if formula.quant == "lone":
            return at_most
        return ts.and_(ts.any_of(holds), at_most)  # one

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def assert_formula(self, formula: rast.Formula) -> bool:
        """Translate ``formula`` and assert it into the CNF.

        Returns False when the formula folds to the FALSE constant under the
        given bounds (trivially unsatisfiable).
        """
        node = self._formula(formula, {})
        return self.encoder.assert_node(node)

    def assert_formula_gated(
        self,
        formula: rast.Formula,
        selector: int,
        mask: Optional[List[Tuple[Relation, Tuple[str, ...]]]] = None,
    ) -> bool:
        """Translate ``formula`` and assert it guarded by ``selector``.

        Clauses are emitted as ``selector -> formula``: the constraint only
        binds when ``selector`` is assumed true, so many mutually exclusive
        formula groups can share one CNF (and one solver).  Tseitin
        definitions are shared, unguarded, with previously translated
        formulas.  Returns False when the formula folds to FALSE, in which
        case the selector can never be activated.

        ``mask`` lists ``(relation, tuple)`` rows to treat as the FALSE
        constant during this translation only.  Sound whenever other
        clauses already force those rows false under the selector: the
        constant folds away every subtree the rows appear in, so a gated
        group costs no more than a standalone translation over the
        smaller universe it actually uses.
        """
        if mask:
            idx = self.universe.index
            masked: Dict[Relation, set] = {}
            for relation, tup in mask:
                masked.setdefault(relation, set()).add(
                    tuple(idx(a) for a in tup)
                )
            saved = self._rel_matrices
            self._rel_matrices = {
                rel: (
                    Matrix(
                        m.arity,
                        {
                            k: v
                            for k, v in m.entries.items()
                            if k not in masked[rel]
                        },
                    )
                    if rel in masked
                    else m
                )
                for rel, m in saved.items()
            }
            try:
                node = self._formula(formula, {})
            finally:
                self._rel_matrices = saved
        else:
            node = self._formula(formula, {})
        return self.encoder.assert_node_gated(node, selector)


def translate(bounds: Bounds, formula: rast.Formula) -> TranslationRecord:
    """One-shot translation of a formula under bounds to CNF."""
    translator = Translator(bounds)
    ok = translator.assert_formula(formula)
    return TranslationRecord(
        cnf=translator.cnf,
        primary_vars=translator.primary_vars,
        trivially_unsat=not ok,
    )
