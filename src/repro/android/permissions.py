"""Android permissions and the PScout-style API permission map.

AME resolves which permissions each component actually uses by mapping the
Android API calls found in the bytecode through a permission map (the paper
uses PScout, Au et al., CCS 2012).  This module declares the permissions
the reproduction's apps can request, their protection levels, the
API-signature-to-permission map, and the association between permissions
and the flow-permission resources of :mod:`repro.android.resources`.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Tuple

from repro.android.resources import Resource


class ProtectionLevel(enum.Enum):
    NORMAL = "normal"
    DANGEROUS = "dangerous"
    SIGNATURE = "signature"


# Canonical permission names, as in the platform manifest.
ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
READ_PHONE_STATE = "android.permission.READ_PHONE_STATE"
READ_CONTACTS = "android.permission.READ_CONTACTS"
READ_CALENDAR = "android.permission.READ_CALENDAR"
READ_SMS = "android.permission.READ_SMS"
READ_CALL_LOG = "android.permission.READ_CALL_LOG"
RECORD_AUDIO = "android.permission.RECORD_AUDIO"
CAMERA = "android.permission.CAMERA"
GET_ACCOUNTS = "android.permission.GET_ACCOUNTS"
READ_HISTORY_BOOKMARKS = "com.android.browser.permission.READ_HISTORY_BOOKMARKS"
READ_EXTERNAL_STORAGE = "android.permission.READ_EXTERNAL_STORAGE"
INTERNET = "android.permission.INTERNET"
SEND_SMS = "android.permission.SEND_SMS"
WRITE_SMS = "android.permission.WRITE_SMS"
WRITE_EXTERNAL_STORAGE = "android.permission.WRITE_EXTERNAL_STORAGE"
CALL_PHONE = "android.permission.CALL_PHONE"
READ_LOGS = "android.permission.READ_LOGS"

PROTECTION_LEVELS: Dict[str, ProtectionLevel] = {
    ACCESS_FINE_LOCATION: ProtectionLevel.DANGEROUS,
    READ_PHONE_STATE: ProtectionLevel.DANGEROUS,
    READ_CONTACTS: ProtectionLevel.DANGEROUS,
    READ_CALENDAR: ProtectionLevel.DANGEROUS,
    READ_SMS: ProtectionLevel.DANGEROUS,
    READ_CALL_LOG: ProtectionLevel.DANGEROUS,
    RECORD_AUDIO: ProtectionLevel.DANGEROUS,
    CAMERA: ProtectionLevel.DANGEROUS,
    GET_ACCOUNTS: ProtectionLevel.NORMAL,
    READ_HISTORY_BOOKMARKS: ProtectionLevel.DANGEROUS,
    READ_EXTERNAL_STORAGE: ProtectionLevel.NORMAL,
    INTERNET: ProtectionLevel.NORMAL,
    SEND_SMS: ProtectionLevel.DANGEROUS,
    WRITE_SMS: ProtectionLevel.DANGEROUS,
    WRITE_EXTERNAL_STORAGE: ProtectionLevel.DANGEROUS,
    CALL_PHONE: ProtectionLevel.DANGEROUS,
    READ_LOGS: ProtectionLevel.SIGNATURE,
}

# Permission guarding each resource (used to check privilege escalation).
RESOURCE_PERMISSION: Dict[Resource, Optional[str]] = {
    Resource.LOCATION: ACCESS_FINE_LOCATION,
    Resource.IMEI: READ_PHONE_STATE,
    Resource.CONTACTS: READ_CONTACTS,
    Resource.CALENDAR: READ_CALENDAR,
    Resource.SMS_INBOX: READ_SMS,
    Resource.CALL_LOG: READ_CALL_LOG,
    Resource.MICROPHONE: RECORD_AUDIO,
    Resource.CAMERA: CAMERA,
    Resource.ACCOUNTS: GET_ACCOUNTS,
    Resource.BROWSER_HISTORY: READ_HISTORY_BOOKMARKS,
    Resource.PHONE_STATE: READ_PHONE_STATE,
    Resource.PHONE_NUMBER: READ_PHONE_STATE,
    Resource.SDCARD_READ: READ_EXTERNAL_STORAGE,
    Resource.NETWORK: INTERNET,
    Resource.SMS: SEND_SMS,
    Resource.SDCARD: WRITE_EXTERNAL_STORAGE,
    Resource.LOG: None,  # writing the shared log needs no permission
    Resource.PHONE_CALLS: CALL_PHONE,
    Resource.ICC: None,
}

# ---------------------------------------------------------------------------
# PScout-style API permission map: method signature -> required permissions,
# plus the resource the call touches (source or sink) when data-relevant.
# Signatures are "Class.method" over the platform classes the IR models.
# ---------------------------------------------------------------------------
API_PERMISSION_MAP: Dict[str, FrozenSet[str]] = {
    "LocationManager.getLastKnownLocation": frozenset({ACCESS_FINE_LOCATION}),
    "LocationManager.requestLocationUpdates": frozenset({ACCESS_FINE_LOCATION}),
    "TelephonyManager.getDeviceId": frozenset({READ_PHONE_STATE}),
    "TelephonyManager.getLine1Number": frozenset({READ_PHONE_STATE}),
    "TelephonyManager.getSimSerialNumber": frozenset({READ_PHONE_STATE}),
    "ContactsProvider.query": frozenset({READ_CONTACTS}),
    "CalendarProvider.query": frozenset({READ_CALENDAR}),
    "SmsProvider.query": frozenset({READ_SMS}),
    "CallLogProvider.query": frozenset({READ_CALL_LOG}),
    "AudioRecord.startRecording": frozenset({RECORD_AUDIO}),
    "Camera.takePicture": frozenset({CAMERA}),
    "AccountManager.getAccounts": frozenset({GET_ACCOUNTS}),
    "Browser.getAllBookmarks": frozenset({READ_HISTORY_BOOKMARKS}),
    "ExternalStorage.readFile": frozenset({READ_EXTERNAL_STORAGE}),
    "URL.openConnection": frozenset({INTERNET}),
    "HttpClient.execute": frozenset({INTERNET}),
    "SmsManager.sendTextMessage": frozenset({SEND_SMS}),
    "ExternalStorage.writeFile": frozenset({WRITE_EXTERNAL_STORAGE}),
    "ACTION_CALL": frozenset({CALL_PHONE}),
}

# Source APIs: calling them yields data tagged with the given resource.
SOURCE_API_MAP: Dict[str, Resource] = {
    "LocationManager.getLastKnownLocation": Resource.LOCATION,
    "LocationManager.requestLocationUpdates": Resource.LOCATION,
    "TelephonyManager.getDeviceId": Resource.IMEI,
    "TelephonyManager.getLine1Number": Resource.PHONE_NUMBER,
    "TelephonyManager.getSimSerialNumber": Resource.PHONE_STATE,
    "ContactsProvider.query": Resource.CONTACTS,
    "CalendarProvider.query": Resource.CALENDAR,
    "SmsProvider.query": Resource.SMS_INBOX,
    "CallLogProvider.query": Resource.CALL_LOG,
    "AudioRecord.startRecording": Resource.MICROPHONE,
    "Camera.takePicture": Resource.CAMERA,
    "AccountManager.getAccounts": Resource.ACCOUNTS,
    "Browser.getAllBookmarks": Resource.BROWSER_HISTORY,
    "ExternalStorage.readFile": Resource.SDCARD_READ,
}

# Sink APIs: passing tainted data to them leaks it to the given resource.
# The integer is the index of the data-carrying argument.
SINK_API_MAP: Dict[str, Tuple[Resource, int]] = {
    "SmsManager.sendTextMessage": (Resource.SMS, 2),
    "URL.openConnection": (Resource.NETWORK, 0),
    "HttpClient.execute": (Resource.NETWORK, 0),
    "ExternalStorage.writeFile": (Resource.SDCARD, 1),
    "Log.d": (Resource.LOG, 1),
    "Log.i": (Resource.LOG, 1),
    "Log.e": (Resource.LOG, 1),
}


def permissions_for_api(signature: str) -> FrozenSet[str]:
    """Permissions required to invoke an API method (empty if unguarded)."""
    return API_PERMISSION_MAP.get(signature, frozenset())


def permission_for_resource(resource: Resource) -> Optional[str]:
    return RESOURCE_PERMISSION.get(resource)


def protection_level(permission: str) -> ProtectionLevel:
    return PROTECTION_LEVELS.get(permission, ProtectionLevel.NORMAL)
