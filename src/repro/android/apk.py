"""The APK package: manifest plus bytecode plus package metadata.

An :class:`Apk` is the unit SEPAR's model extractor consumes.  ``repository``
records the market the app was collected from (Google Play, F-Droid,
Malgenome, Bazaar in the paper's corpus) and ``size_kb`` stands in for the
on-disk archive size Figure 5 plots extraction time against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.manifest import Manifest
from repro.dex.program import DexProgram


@dataclass
class Apk:
    manifest: Manifest
    program: DexProgram = field(default_factory=DexProgram)
    repository: str = "unknown"
    size_kb: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_kb is None:
            # Approximate archive size from code volume: a few hundred bytes
            # of dex per IR instruction plus a fixed resource overhead.
            self.size_kb = 120 + self.program.instruction_count() * 2

    @property
    def package(self) -> str:
        return self.manifest.package

    def component_class(self, component_name: str):
        """The class implementing a manifest component, if the app ships one."""
        if self.program.has_class(component_name):
            return self.program.cls(component_name)
        return None

    def __repr__(self) -> str:
        return (
            f"Apk({self.package!r}, {len(self.manifest.components)} components, "
            f"{self.program.instruction_count()} instrs)"
        )
