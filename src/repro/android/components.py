"""Component declarations: the four Android component kinds.

A component is declared in the manifest with a kind, an optional guarding
permission, an exported flag, and Intent filters.  Per the framework rules
the paper encodes: a component is *public* (reachable from other apps) if
its ``exported`` attribute is set or it declares at least one Intent
filter; Content Providers cannot declare Intent filters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.android.intents import IntentFilter


class ComponentKind(enum.Enum):
    ACTIVITY = "Activity"
    SERVICE = "Service"
    RECEIVER = "BroadcastReceiver"
    PROVIDER = "ContentProvider"

    def __str__(self) -> str:
        return self.value


@dataclass
class ComponentDecl:
    """A manifest component entry.

    ``name`` is the short class name; the fully-qualified reference used in
    ICC is ``<package>/<name>`` and is filled by the owning manifest.
    ``permission`` guards access to the component (callers must hold it).
    """

    name: str
    kind: ComponentKind
    exported: Optional[bool] = None
    permission: Optional[str] = None
    intent_filters: List[IntentFilter] = field(default_factory=list)
    authority: Optional[str] = None  # Content Providers only

    def __post_init__(self) -> None:
        if self.kind is ComponentKind.PROVIDER and self.intent_filters:
            raise ValueError(
                "Content Providers cannot declare Intent filters "
                f"(component {self.name})"
            )
        if self.authority is not None and self.kind is not ComponentKind.PROVIDER:
            raise ValueError(
                f"only Content Providers declare an authority ({self.name})"
            )

    @property
    def is_public(self) -> bool:
        """Exported explicitly, or implicitly by declaring an Intent filter."""
        if self.exported is not None:
            return self.exported
        return bool(self.intent_filters)
