"""Permission-required resources (flow-permission domains).

SEPAR defines the source and destination of a sensitive data-flow path over
the canonical permission-required resources identified by Holavanalli et
al., "Flow Permissions for Android" (ASE 2013): thirteen resources act as
sources of sensitive data, five as destinations, and the ICC mechanism
augments both sets (a path may begin at an Intent received from another
component and may end at an Intent sent to one).
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class Resource(enum.Enum):
    """A permission-guarded resource that sensitive data flows from or to."""

    # --- sources (13) ---
    LOCATION = "LOCATION"
    IMEI = "IMEI"
    CONTACTS = "CONTACTS"
    CALENDAR = "CALENDAR"
    SMS_INBOX = "SMS_INBOX"
    CALL_LOG = "CALL_LOG"
    MICROPHONE = "MICROPHONE"
    CAMERA = "CAMERA"
    ACCOUNTS = "ACCOUNTS"
    BROWSER_HISTORY = "BROWSER_HISTORY"
    PHONE_STATE = "PHONE_STATE"
    PHONE_NUMBER = "PHONE_NUMBER"
    SDCARD_READ = "SDCARD_READ"
    # --- sinks (5) ---
    NETWORK = "NETWORK"
    SMS = "SMS"
    SDCARD = "SDCARD"
    LOG = "LOG"
    PHONE_CALLS = "PHONE_CALLS"
    # --- both (the ICC augmentation) ---
    ICC = "ICC"

    def __str__(self) -> str:  # atom-friendly rendering
        return self.value


SOURCES: FrozenSet[Resource] = frozenset(
    {
        Resource.LOCATION,
        Resource.IMEI,
        Resource.CONTACTS,
        Resource.CALENDAR,
        Resource.SMS_INBOX,
        Resource.CALL_LOG,
        Resource.MICROPHONE,
        Resource.CAMERA,
        Resource.ACCOUNTS,
        Resource.BROWSER_HISTORY,
        Resource.PHONE_STATE,
        Resource.PHONE_NUMBER,
        Resource.SDCARD_READ,
        Resource.ICC,
    }
)

SINKS: FrozenSet[Resource] = frozenset(
    {
        Resource.NETWORK,
        Resource.SMS,
        Resource.SDCARD,
        Resource.LOG,
        Resource.PHONE_CALLS,
        Resource.ICC,
    }
)


def is_source(resource: Resource) -> bool:
    return resource in SOURCES


def is_sink(resource: Resource) -> bool:
    return resource in SINKS
