"""The Android framework substrate.

Everything SEPAR analyzes and protects lives on top of the Android
application framework: apps packaged as APKs, components of four kinds,
Intent-based inter-component communication (ICC), Intent filters, and the
install-time permission model.  This package is a faithful, self-contained
model of the parts of the framework the paper's analysis depends on
(Section V: "we focused on the parts of Android that are relevant to the
inter-component communication and their potential security challenges").

- :mod:`repro.android.resources` -- the permission-required resources of
  Holavanalli et al.'s flow permissions (13 sources, 5 sinks, plus ICC).
- :mod:`repro.android.permissions` -- permissions, protection levels, and a
  PScout-style API-to-permission map.
- :mod:`repro.android.intents` -- Intents, Intent filters, and the
  framework's implicit-Intent resolution tests (action/category/data).
- :mod:`repro.android.components` -- the four component kinds and their
  declared attributes.
- :mod:`repro.android.manifest` -- the application manifest.
- :mod:`repro.android.apk` -- the package archive: manifest + bytecode.
"""

from repro.android.resources import Resource, SOURCES, SINKS
from repro.android.intents import Intent, IntentFilter, resolve_intent
from repro.android.components import ComponentKind, ComponentDecl
from repro.android.manifest import Manifest
from repro.android.apk import Apk

__all__ = [
    "Resource",
    "SOURCES",
    "SINKS",
    "Intent",
    "IntentFilter",
    "resolve_intent",
    "ComponentKind",
    "ComponentDecl",
    "Manifest",
    "Apk",
]
