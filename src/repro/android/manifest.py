"""The application manifest.

The manifest carries the architectural information AME reads first:
the package name, the permissions the app *uses* (requests), the
permissions it *defines and enforces* on its components, and the component
declarations with their Intent filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List

from repro.android.components import ComponentDecl, ComponentKind


@dataclass
class Manifest:
    package: str
    uses_permissions: FrozenSet[str] = frozenset()
    components: List[ComponentDecl] = field(default_factory=list)
    min_sdk: int = 19  # KitKat, the paper's dominant platform version

    def __post_init__(self) -> None:
        names = [c.name for c in self.components]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate component names in {self.package}")

    def component(self, name: str) -> ComponentDecl:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no component {name!r} in {self.package}")

    def qualified(self, component: ComponentDecl) -> str:
        """The ``package/Component`` reference used in ICC."""
        return f"{self.package}/{component.name}"

    def public_components(self) -> List[ComponentDecl]:
        return [c for c in self.components if c.is_public]

    def components_of_kind(self, kind: ComponentKind) -> List[ComponentDecl]:
        return [c for c in self.components if c.kind is kind]
