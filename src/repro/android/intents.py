"""Intents, Intent filters, and the framework's resolution algorithm.

The Android framework delivers an *explicit* Intent to its named target and
matches an *implicit* Intent against the Intent filters of exported
components using three tests (official documentation, mirrored by the
paper's Alloy meta-model):

- **action test** -- the filter must list the Intent's action (an Intent
  without an action passes only filters with at least one action declared);
- **category test** -- every category in the Intent must appear in the
  filter (the filter may declare more);
- **data test** -- the Intent's data scheme and MIME type must match the
  filter's declared schemes/types; an Intent with no data passes only
  filters declaring no data, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.android.resources import Resource

CATEGORY_DEFAULT = "android.intent.category.DEFAULT"


@dataclass(frozen=True)
class IntentFilter:
    """A component capability declaration.

    A filter must declare at least one action (the framework refuses to
    register action-less filters for manifest components).  ``priority``
    is Android's ``android:priority`` attribute: higher-priority filters
    win single-recipient resolution -- a lever real interception malware
    pulls, and exactly how the synthesized attacker guarantees the hijack.
    """

    actions: FrozenSet[str]
    categories: FrozenSet[str] = frozenset()
    data_types: FrozenSet[str] = frozenset()
    data_schemes: FrozenSet[str] = frozenset()
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.actions:
            raise ValueError("an IntentFilter must declare at least one action")

    @staticmethod
    def for_action(action: str, *more_actions: str) -> "IntentFilter":
        return IntentFilter(actions=frozenset((action,) + more_actions))


@dataclass(frozen=True)
class Intent:
    """An ICC message.

    ``target`` names the recipient component for explicit Intents and is
    None for implicit ones.  ``extras`` records the flow-permission
    resources carried in the payload (the model-level abstraction of
    ``putExtra`` data), and ``extra_keys`` the concrete payload keys.
    """

    sender: str
    target: Optional[str] = None
    action: Optional[str] = None
    categories: FrozenSet[str] = frozenset()
    data_type: Optional[str] = None
    data_scheme: Optional[str] = None
    extras: FrozenSet[Resource] = frozenset()
    extra_keys: FrozenSet[str] = frozenset()
    wants_result: bool = False

    @property
    def explicit(self) -> bool:
        return self.target is not None

    def with_target(self, target: str) -> "Intent":
        return Intent(
            sender=self.sender,
            target=target,
            action=self.action,
            categories=self.categories,
            data_type=self.data_type,
            data_scheme=self.data_scheme,
            extras=self.extras,
            extra_keys=self.extra_keys,
            wants_result=self.wants_result,
        )


def action_test(intent: Intent, filt: IntentFilter) -> bool:
    """The filter must name the Intent's action; actionless Intents pass
    any filter (filters always declare at least one action)."""
    if intent.action is None:
        return True
    return intent.action in filt.actions


def category_test(intent: Intent, filt: IntentFilter) -> bool:
    """Every Intent category must appear in the filter."""
    return intent.categories <= filt.categories


def data_test(intent: Intent, filt: IntentFilter) -> bool:
    """Scheme and MIME type must match the filter's declarations."""
    if intent.data_scheme is None and intent.data_type is None:
        return not filt.data_schemes and not filt.data_types
    if intent.data_scheme is not None:
        if intent.data_scheme not in filt.data_schemes:
            return False
    elif filt.data_schemes:
        return False
    if intent.data_type is not None:
        if not _mime_match(intent.data_type, filt.data_types):
            return False
    elif filt.data_types:
        return False
    return True


def _mime_match(mime: str, declared: FrozenSet[str]) -> bool:
    for pattern in declared:
        if pattern == "*/*" or pattern == mime:
            return True
        if pattern.endswith("/*") and mime.split("/", 1)[0] == pattern[:-2]:
            return True
    return False


def filter_matches(intent: Intent, filt: IntentFilter) -> bool:
    return (
        action_test(intent, filt)
        and category_test(intent, filt)
        and data_test(intent, filt)
    )


def resolve_intent(
    intent: Intent,
    components: Iterable["ResolvableComponent"],
) -> List["ResolvableComponent"]:
    """Return the components an Intent resolves to.

    ``components`` supply ``name``, ``exported``, ``app`` (package name) and
    ``intent_filters``.  Explicit Intents resolve to the named component if
    present (and either exported or in the sender's own app -- the caller
    passes sender app via the Intent's sender component naming convention
    ``package/Component``).  Implicit Intents resolve to every exported
    component with a matching filter.

    Components may additionally expose ``kind``: for Activities, the
    framework's ``startActivity`` resolution only considers filters that
    declare ``android.intent.category.DEFAULT`` (Services and Receivers are
    exempt).  Components without a ``kind`` attribute are not subjected to
    the default-category requirement.
    """
    sender_app = app_of(intent.sender)
    matches = []
    for component in components:
        same_app = component.app == sender_app
        if intent.explicit:
            if component.name == intent.target and (component.exported or same_app):
                matches.append(component)
            continue
        if not component.exported and not same_app:
            continue
        needs_default = str(getattr(component, "kind", "")) == "Activity"
        for filt in component.intent_filters:
            if needs_default and CATEGORY_DEFAULT not in filt.categories:
                continue
            if filter_matches(intent, filt):
                matches.append(component)
                break
    return matches


def app_of(component_ref: str) -> str:
    """Extract the package from a ``package/Component`` reference."""
    return component_ref.split("/", 1)[0] if "/" in component_ref else component_ref


class ResolvableComponent:
    """Structural protocol for resolution targets (duck-typed)."""

    name: str
    app: str
    exported: bool
    intent_filters: Sequence[IntentFilter]
