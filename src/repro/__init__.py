"""SEPAR reproduction: formal synthesis and automatic enforcement of
Android security policies (DSN 2016)."""

try:  # single source of truth: the installed package metadata
    from importlib.metadata import PackageNotFoundError, version

    try:
        __version__ = version("repro")
    except PackageNotFoundError:
        __version__ = "1.0.0"
except ImportError:  # pragma: no cover - Python < 3.8 has no importlib.metadata
    __version__ = "1.0.0"

__all__ = ["__version__"]
