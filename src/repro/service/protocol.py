"""Wire protocol of the ``repro serve`` daemon.

Line-delimited JSON over a stream socket (TCP or UNIX): every request is
one JSON object on one line, every response is one JSON object on one
line, in request order per connection.

Request::

    {"id": <any JSON scalar>, "op": "<operation>", ...operands}

Response::

    {"id": <echoed>, "ok": true,  "result": {...}, "trace_id": "..."}
    {"id": <echoed>, "ok": false, "error": {"kind": "...", "message": "..."}}

Every successful response echoes a ``trace_id``: the client's, when the
request carried one, otherwise one the server minted -- the key under
which the request's spans and cost-ledger charges are recorded.  Device
operations additionally return a ``cost`` object (the ledger's totals for
that trace id) next to ``result``.

Operations (``device`` names the per-device session; sessions are created
on first use):

========== ===================== =========================================
op         operands              result
========== ===================== =========================================
ping       --                    ``{"pong": true, "version": ...}``
install    device, app           detection delta + resident package list
update     device, app           same (uninstall + install, one delta)
uninstall  device, package       same
grant      device, package,      same
           permission
revoke     device, package,      same
           permission
analyze    device                full findings bundle (byte-identical to a
                                 cold ``analyze`` of the same apps)
policies   device                current synthesized policy set
decide     device, kind, event   PDP verdict + audit record
audit      device                audit trail + retention summary
status     [device]              server- or session-level status (global:
                                 sessions, queue depths, in-flight request
                                 ages, cache occupancy, top cost accounts)
healthz    --                    liveness summary: uptime, session/queue
                                 counts, stalled devices
shutdown   --                    acknowledges, then stops the server
========== ===================== =========================================

Malformed input never kills a connection: it produces an error response
(with ``id: null`` when no id could be recovered) and the read loop
continues.  Oversized lines are the one exception -- the framing itself
is broken, so the server answers ``line_too_long`` and closes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, FrozenSet, Optional

PROTOCOL_VERSION = 1

#: Framing bound: app models serialize to a few KiB; 8 MiB leaves two
#: orders of magnitude of headroom while still bounding a hostile peer.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Every operation the dispatcher accepts.
OPS: FrozenSet[str] = frozenset(
    {
        "ping",
        "install",
        "update",
        "uninstall",
        "grant",
        "revoke",
        "analyze",
        "policies",
        "decide",
        "audit",
        "status",
        "healthz",
        "shutdown",
    }
)

#: Operations routed through a per-device session (and therefore
#: requiring a ``device`` operand).  ``status`` takes an *optional*
#: device, so it is global here and branches in the server.
DEVICE_OPS: FrozenSet[str] = frozenset(
    {
        "install",
        "update",
        "uninstall",
        "grant",
        "revoke",
        "analyze",
        "policies",
        "decide",
        "audit",
    }
)

#: Error kinds a response may carry.
ERROR_KINDS = frozenset(
    {
        "bad_request",     # malformed JSON / missing or invalid operands
        "unknown_op",      # op not in OPS
        "not_found",       # unknown package / device state mismatch
        "conflict",        # e.g. installing an already-installed package
        "timeout",         # per-request wall-clock bound exceeded
        "shutting_down",   # server is draining; no new work accepted
        "line_too_long",   # framing bound exceeded; connection closes
        "internal",        # unexpected server-side failure
    }
)


class ProtocolError(Exception):
    """A request that cannot be served, tagged with an error kind."""

    def __init__(self, kind: str, message: str) -> None:
        if kind not in ERROR_KINDS:
            kind = "internal"
        super().__init__(message)
        self.kind = kind
        self.message = message


def encode_message(message: Dict[str, Any]) -> bytes:
    """One protocol line: canonical JSON plus the newline terminator."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any, kind: str, message: str
) -> Dict[str, Any]:
    if kind not in ERROR_KINDS:
        kind = "internal"
    return {
        "id": request_id,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` on malformed input; the caller answers
    with :func:`error_response` and keeps the connection open.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("line_too_long", f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad_request", "missing or non-string 'op'")
    if op not in OPS:
        raise ProtocolError("unknown_op", f"unknown op {op!r}")
    if op in DEVICE_OPS:
        device = request.get("device")
        if not isinstance(device, str) or not device:
            raise ProtocolError(
                "bad_request", f"op {op!r} requires a non-empty 'device'"
            )
    trace_id = request.get("trace_id")
    if trace_id is not None and (
        not isinstance(trace_id, str) or not trace_id
    ):
        raise ProtocolError(
            "bad_request", "'trace_id' must be a non-empty string"
        )
    return request


def request_id(request: Optional[Dict[str, Any]]) -> Any:
    """The id to echo; ``None`` when the request never parsed."""
    if isinstance(request, dict):
        return request.get("id")
    return None
