"""Blocking client for the ``repro serve`` protocol.

One socket, one request in flight at a time, responses matched by the
echoed request id.  Useful from tests, benchmarks, and scripts::

    with ServiceClient(host, port) as client:
        client.install("phone-1", app_dict)
        findings = client.analyze("phone-1")

Errors the server reports come back as :class:`ServiceError` carrying
the protocol error kind.

Every successful response's envelope fields are kept on the client:
``last_trace_id`` is the trace id the server echoed (or minted) for the
most recent request, ``last_cost`` the ledger totals it charged to that
trace id (``None`` for non-device ops or when the server's ledger is
off).  Pass ``trace_id=...`` to :meth:`ServiceClient.request` to join an
existing trace instead of starting one per request.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from repro.service.protocol import MAX_LINE_BYTES


class ServiceError(RuntimeError):
    """A protocol-level error response from the server."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


class ServiceClient:
    """A synchronous line-delimited JSON client (TCP or UNIX socket)."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout: float = 120.0,
    ) -> None:
        if socket_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            if host is None or port is None:
                raise ValueError("need host+port or socket_path")
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self.last_trace_id: Optional[str] = None
        self.last_cost: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    def request(self, op: str, **operands: Any) -> Dict[str, Any]:
        """Send one request; returns the ``result`` or raises."""
        self._next_id += 1
        message = {"id": self._next_id, "op": op, **operands}
        line = json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"
        if len(line) > MAX_LINE_BYTES:
            raise ServiceError(
                "line_too_long", f"request exceeds {MAX_LINE_BYTES} bytes"
            )
        self._file.write(line)
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ServiceError("internal", "connection closed by server")
        response = json.loads(raw.decode("utf-8"))
        if response.get("ok"):
            self.last_trace_id = response.get("trace_id")
            self.last_cost = response.get("cost")
            return response.get("result", {})
        error = response.get("error") or {}
        raise ServiceError(
            error.get("kind", "internal"), error.get("message", "unknown")
        )

    # -- convenience wrappers ------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def healthz(self) -> Dict[str, Any]:
        return self.request("healthz")

    def install(self, device: str, app: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("install", device=device, app=app)

    def update(self, device: str, app: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("update", device=device, app=app)

    def uninstall(self, device: str, package: str) -> Dict[str, Any]:
        return self.request("uninstall", device=device, package=package)

    def grant(
        self, device: str, package: str, permission: str
    ) -> Dict[str, Any]:
        return self.request(
            "grant", device=device, package=package, permission=permission
        )

    def revoke(
        self, device: str, package: str, permission: str
    ) -> Dict[str, Any]:
        return self.request(
            "revoke", device=device, package=package, permission=permission
        )

    def analyze(self, device: str) -> Dict[str, Any]:
        return self.request("analyze", device=device)

    def policies(self, device: str) -> List[Dict[str, Any]]:
        return self.request("policies", device=device)["policies"]

    def decide(
        self,
        device: str,
        kind: str,
        event: Dict[str, Any],
        context: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "decide", device=device, kind=kind, event=event, context=context
        )

    def audit(self, device: str) -> Dict[str, Any]:
        return self.request("audit", device=device)

    def status(self, device: Optional[str] = None) -> Dict[str, Any]:
        if device is None:
            return self.request("status")
        return self.request("status", device=device)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


__all__ = ["ServiceClient", "ServiceError"]
