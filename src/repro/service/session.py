"""Per-device warm analysis sessions for the ``repro serve`` daemon.

A :class:`DeviceSession` holds everything the paper's continuous-
enforcement loop (Section IX) needs resident between events:

- the device's extracted :class:`AppModel`\\ s and current permission
  grants, tracked by the PR 1 :class:`IncrementalAnalyzer` (install /
  uninstall / grant / revoke each return a detection *delta* --
  "what changed?" -- from the cheap architectural detector);
- one long-lived :class:`AnalysisAndSynthesisEngine` whose shared
  encoding answers every signature on a single warm solver per
  composition and keeps its :class:`RelationalProblem` addressable
  (``engine.last_problem``) for telemetry;
- an in-memory content-addressed cache (:class:`MemoryCache`) keyed with
  *exactly* the pipeline's shared-synthesis key scheme, so any
  composition this device has been in before -- uninstall/reinstall
  flips, permission toggles that round-trip -- answers without solving;
- a resident PDP whose policy set is refreshed through the existing
  invalidation protocol (``pdp.policies = ...``) whenever re-synthesis
  changes it, plus the device's append-only audit trail.

Synthesis is *lazy*: mutations only mark the session dirty, and the next
synthesis-backed query (``analyze`` / ``policies`` / ``decide``) pays for
one re-synthesis of the current composition.  A burst of installs
therefore batches into a single solve.

Warm-state invariant (pinned by ``tests/service/``): every answer is
byte-identical to a cold full-bundle run of the same composition.  The
session guarantees this by construction -- bundles are assembled in
sorted package order, the cached payloads are the same serialized forms
the pipeline caches, and :func:`cold_analysis` below *is* the comparator
the differential suite replays against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.android.resources import Resource
from repro.core import serialize
from repro.core.detector import DetectionReport
from repro.core.incremental import DeltaReport, IncrementalAnalyzer, effective_app
from repro.core.model import AppModel, BundleModel
from repro.core.policy import IccEvent, PolicyEvent
from repro.core.separ import Separ, SeparReport
from repro.core.synthesis import (
    AnalysisAndSynthesisEngine,
    SynthesisResult,
    SynthesisStats,
)
from repro.enforcement import AuditLog, make_pdp
from repro.enforcement.pdp import deny_all_prompts
from repro.pipeline.cache import (
    MemoryCache,
    PipelineCache,
    content_hash,
    framework_fingerprint,
)
from repro.obs import CostKey, current_trace_id, get_cost_ledger
from repro.pipeline.executor import AnalysisPipeline
from repro.sat import DEFAULT_BACKEND
from repro.service.protocol import ProtocolError


@dataclass(frozen=True)
class SessionConfig:
    """Engine + enforcement knobs shared by every session of one server.

    The first five fields mirror the pipeline's ``_engine_params`` (plus
    the backend knobs that deliberately stay *out* of cache keys), so a
    session's cache entries are interchangeable with the pipeline's.
    """

    scenarios_per_signature: int = 2
    minimal: bool = True
    conflict_budget: Optional[int] = None
    time_budget_seconds: Optional[float] = None
    shared_encoding: bool = True
    solver_backend: str = DEFAULT_BACKEND
    pdp_backend: str = "compiled"
    #: LRU bound of the per-session synthesis cache (0 = unbounded).
    cache_entries: int = 256
    #: Resident audit window (0 = keep every record).
    audit_window: int = 0

    def engine_params(self) -> Dict[str, Any]:
        """The cache-key parameter block, shaped exactly like
        ``AnalysisPipeline._engine_params`` (backends excluded)."""
        return {
            "scenarios_per_signature": self.scenarios_per_signature,
            "minimal": self.minimal,
            "conflict_budget": self.conflict_budget,
            "time_budget_seconds": self.time_budget_seconds,
        }


def _make_engine(config: SessionConfig) -> AnalysisAndSynthesisEngine:
    return AnalysisAndSynthesisEngine(
        scenarios_per_signature=config.scenarios_per_signature,
        minimal=config.minimal,
        conflict_budget=config.conflict_budget,
        time_budget_seconds=config.time_budget_seconds,
        shared_encoding=config.shared_encoding,
        solver_backend=config.solver_backend,
    )


def findings_bundle(report: SeparReport) -> Dict[str, Any]:
    """One bundle's findings in the pipeline's canonical diffable shape
    (the per-bundle entry of ``PipelineResult.findings_dict``)."""
    return {
        "apps": sorted(a.package for a in report.bundle.apps),
        "scenarios": [
            serialize.scenario_to_dict(s) for s in report.scenarios
        ],
        "policies": [serialize.policy_to_dict(p) for p in report.policies],
        "detection": report.detection.to_dict(),
    }


def cold_analysis(
    apps: List[AppModel], config: SessionConfig
) -> Dict[str, Any]:
    """The cold comparator: a fresh engine over the same composition.

    No warm solver, no cache, no session -- just the composition in the
    session's canonical (sorted-package) order through a brand-new
    engine.  The differential suite replays event streams through a live
    session and asserts its answers equal this, byte for byte; a
    dedicated test pins ``cold_analysis`` itself against
    ``Separ.analyze_bundle`` so the comparator cannot drift from the
    reference facade.
    """
    bundle = BundleModel(apps=sorted(apps, key=lambda a: a.package))
    result = _make_engine(config).run(bundle)
    return findings_bundle(Separ.assemble_report(bundle, result))


def detection_delta(
    before: DetectionReport, after: DetectionReport
) -> DeltaReport:
    """Findings that appeared/disappeared between two detection states
    (the same diff ``IncrementalAnalyzer._recompute`` computes, exposed
    for multi-step mutations like ``update``)."""
    delta = DeltaReport()
    for vuln in set(before.findings) | set(after.findings):
        gained = after.components(vuln) - before.components(vuln)
        lost = before.components(vuln) - after.components(vuln)
        if gained:
            delta.added[vuln] = gained
        if lost:
            delta.removed[vuln] = lost
    return delta


def _delta_dict(delta: DeltaReport) -> Dict[str, Any]:
    return {
        "added": {v: sorted(c) for v, c in sorted(delta.added.items())},
        "removed": {v: sorted(c) for v, c in sorted(delta.removed.items())},
    }


class DeviceSession:
    """Warm, single-device analysis + enforcement state.

    Thread-safe via one coarse lock: the server already serializes each
    device's requests through its own queue worker, so the lock only
    guards direct (test / embedding) use.
    """

    def __init__(
        self,
        device: str,
        config: Optional[SessionConfig] = None,
        cache: Optional[PipelineCache] = None,
    ) -> None:
        self.device = device
        self.config = config or SessionConfig()
        self.cache = (
            cache
            if cache is not None
            else MemoryCache(max_entries=self.config.cache_entries)
        )
        self.engine = _make_engine(self.config)
        self.signature_names = [s.name for s in self.engine.signatures]
        self.analyzer = IncrementalAnalyzer(BundleModel(apps=[]))
        self.audit = AuditLog(window=self.config.audit_window or None)
        self.pdp = make_pdp(
            [],
            backend=self.config.pdp_backend,
            prompt_callback=deny_all_prompts,
            audit=self.audit,
        )
        self._lock = threading.RLock()
        self._dirty = True
        self._report: Optional[SeparReport] = None
        # Telemetry: requests handled, syntheses actually solved, and
        # warm lookups answered straight from the cache.
        self.requests = 0
        self.syntheses = 0
        self.warm_hits = 0
        self.warm_lookups = 0

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def packages(self) -> List[str]:
        with self._lock:
            return sorted(
                a.package for a in self.analyzer.current_bundle().apps
            )

    def current_bundle(self) -> BundleModel:
        """The device's composition in canonical sorted-package order --
        the exact bundle a cold run would analyze."""
        apps = sorted(
            self.analyzer.current_bundle().apps, key=lambda a: a.package
        )
        return BundleModel(apps=apps)

    @property
    def warm_hit_rate(self) -> float:
        return self.warm_hits / self.warm_lookups if self.warm_lookups else 0.0

    # ------------------------------------------------------------------
    # Cost attribution
    # ------------------------------------------------------------------
    def _cost_key(self, bundle_label: str, signature: str = "") -> CostKey:
        """This session's ledger account for the ambient request.

        The trace id comes from the context the server's batch thread
        adopted for the request (empty for direct embedding use without
        tracing), so the response-level ``cost`` field -- the ledger's
        totals for that trace id -- reflects exactly the work this
        request caused.
        """
        return CostKey(
            trace_id=current_trace_id() or "",
            device=self.device,
            bundle=bundle_label,
            signature=signature,
        )

    # ------------------------------------------------------------------
    # Mutations: cheap detection delta now, synthesis deferred
    # ------------------------------------------------------------------
    def install(self, app_dict: Dict[str, Any]) -> Dict[str, Any]:
        app = self._parse_app(app_dict)
        with self._lock:
            if app.package in set(self.packages()):
                raise ProtocolError(
                    "conflict", f"{app.package} already installed"
                )
            delta = self.analyzer.install(app)
            return self._mutated(delta)

    def update(self, app_dict: Dict[str, Any]) -> Dict[str, Any]:
        app = self._parse_app(app_dict)
        with self._lock:
            if app.package not in set(self.packages()):
                raise ProtocolError("not_found", f"{app.package} not installed")
            before = self.analyzer.report
            self.analyzer.uninstall(app.package)
            self.analyzer.install(app)
            return self._mutated(detection_delta(before, self.analyzer.report))

    def uninstall(self, package: str) -> Dict[str, Any]:
        with self._lock:
            try:
                delta = self.analyzer.uninstall(package)
            except KeyError as exc:
                raise ProtocolError("not_found", str(exc)) from exc
            return self._mutated(delta)

    def grant(self, package: str, permission: str) -> Dict[str, Any]:
        with self._lock:
            try:
                delta = self.analyzer.grant_permission(package, permission)
            except KeyError as exc:
                raise ProtocolError("not_found", str(exc)) from exc
            return self._mutated(delta)

    def revoke(self, package: str, permission: str) -> Dict[str, Any]:
        with self._lock:
            try:
                delta = self.analyzer.revoke_permission(package, permission)
            except KeyError as exc:
                raise ProtocolError("not_found", str(exc)) from exc
            return self._mutated(delta)

    def _mutated(self, delta: DeltaReport) -> Dict[str, Any]:
        self._dirty = True
        return {
            "delta": _delta_dict(delta),
            "installed": self.packages(),
            # Policies are refreshed lazily: the next analyze / policies
            # / decide pays one re-synthesis for the whole burst.
            "synthesis": "deferred",
        }

    @staticmethod
    def _parse_app(app_dict: Any) -> AppModel:
        if not isinstance(app_dict, dict):
            raise ProtocolError("bad_request", "'app' must be an app dict")
        try:
            return serialize.app_from_dict(app_dict)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad_request", f"bad app model: {exc}") from exc

    # ------------------------------------------------------------------
    # Queries: pay (at most) one synthesis for the current composition
    # ------------------------------------------------------------------
    def analyze(self) -> Dict[str, Any]:
        with self._lock:
            return findings_bundle(self._ensure_fresh())

    def policies(self) -> Dict[str, Any]:
        with self._lock:
            report = self._ensure_fresh()
            return {
                "policies": [
                    serialize.policy_to_dict(p) for p in report.policies
                ],
                "pdp_backend": self.config.pdp_backend,
            }

    def decide(
        self, kind: Any, event: Any, context: Optional[str] = None
    ) -> Dict[str, Any]:
        event_kind, icc = self._parse_event(kind, event)
        with self._lock:
            # Decisions must reflect the current composition's policies.
            self._ensure_fresh()
            # The compiled PDP counts decision-cache hits; diffing around
            # the call attributes them to this request's trace id.
            hits_before = getattr(self.pdp, "cache_hits", None)
            decision = self.pdp.decide(event_kind, icc, context=context)
            ledger = get_cost_ledger()
            if ledger.enabled and hits_before is not None:
                delta = getattr(self.pdp, "cache_hits", hits_before)
                delta -= hits_before
                if delta:
                    ledger.charge(
                        self._cost_key(",".join(self.packages())),
                        pdp_cache_hits=delta,
                    )
            record = self.audit.records[-1] if self.audit.records else None
            return {
                "decision": decision.value,
                "audit": record.to_dict() if record is not None else None,
            }

    def audit_trail(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "records": [r.to_dict() for r in self.audit.iter_all()],
                "summary": self.audit.summary(),
            }

    def status(self) -> Dict[str, Any]:
        with self._lock:
            problem = self.engine.last_problem
            return {
                "device": self.device,
                "installed": self.packages(),
                "dirty": self._dirty,
                "requests": self.requests,
                "syntheses": self.syntheses,
                "warm_hits": self.warm_hits,
                "warm_lookups": self.warm_lookups,
                "warm_hit_rate": self.warm_hit_rate,
                "cache_entries": len(self.cache)
                if isinstance(self.cache, MemoryCache)
                else None,
                "policies": len(self._report.policies)
                if self._report is not None
                else None,
                "solver": None
                if problem is None
                else {
                    "num_vars": problem.stats.num_vars,
                    "num_clauses": problem.stats.num_clauses,
                    "learnt": problem.num_learnt,
                },
            }

    @staticmethod
    def _parse_event(kind: Any, event: Any) -> Tuple[PolicyEvent, IccEvent]:
        try:
            event_kind = PolicyEvent(kind)
        except ValueError as exc:
            raise ProtocolError(
                "bad_request", f"unknown event kind {kind!r}"
            ) from exc
        if not isinstance(event, dict) or not isinstance(
            event.get("sender"), str
        ):
            raise ProtocolError(
                "bad_request", "'event' must be a dict with a 'sender'"
            )
        try:
            extras = frozenset(
                Resource(name) for name in event.get("extras", ())
            )
        except ValueError as exc:
            raise ProtocolError(
                "bad_request", f"unknown resource: {exc}"
            ) from exc
        return event_kind, IccEvent(
            sender=event["sender"],
            receiver=event.get("receiver"),
            action=event.get("action"),
            extras=extras,
            sender_permissions=frozenset(
                event.get("sender_permissions", ())
            ),
        )

    # ------------------------------------------------------------------
    # Warm synthesis
    # ------------------------------------------------------------------
    def _ensure_fresh(self) -> SeparReport:
        if not self._dirty and self._report is not None:
            return self._report
        bundle = self.current_bundle()
        payload = self._synthesis_payload(bundle)
        stats = SynthesisStats()
        stats.merge(SynthesisStats.from_dict(payload["stats"]))
        result = SynthesisResult(
            scenarios=[
                serialize.scenario_from_dict(s) for s in payload["scenarios"]
            ],
            stats=stats,
        )
        self._report = Separ.assemble_report(bundle, result)
        # The existing invalidation protocol: assigning the policy list
        # recompiles the compiled backend's index and flushes its
        # decision cache.  The audit log carries across refreshes.
        self.pdp.policies = list(self._report.policies)
        self._dirty = False
        return self._report

    def _synthesis_payload(self, bundle: BundleModel) -> Dict[str, Any]:
        """The composition's synthesis payload: cache hit or fresh solve.

        Keys replicate the pipeline executor's scheme exactly (same app
        content hashing, same parameter block, same framework
        fingerprint), so session entries and pipeline entries are the
        same currency.  Degraded (budget-exhausted) payloads pass
        through to the caller but are never cached -- ``MemoryCache``
        inherits the pipeline's rejection rule.
        """
        app_dicts = [serialize.app_to_dict(a) for a in bundle.apps]
        app_hashes = sorted(
            AnalysisPipeline._app_content_key(d) for d in app_dicts
        )
        fingerprint = framework_fingerprint()
        params = self.config.engine_params()
        ledger = get_cost_ledger()
        bundle_label = ",".join(sorted(a.package for a in bundle.apps))
        if self.config.shared_encoding:
            key = content_hash(
                {
                    "task": "synthesis",
                    "mode": "shared",
                    "apps": app_hashes,
                    "signatures": list(self.signature_names),
                    "params": params,
                    "fingerprint": fingerprint,
                }
            )
            self.warm_lookups += 1
            cached = self.cache.get("synthesis", key)
            if cached is not None:
                self.warm_hits += 1
                if ledger.enabled:
                    ledger.charge(
                        self._cost_key(bundle_label, "*"), cache_hits=1
                    )
                return cached
            result = self.engine.run_shared(bundle)
            payload = {
                "scenarios": [
                    serialize.scenario_to_dict(s) for s in result.scenarios
                ],
                "stats": result.stats.to_dict(),
                "incomplete": bool(result.stats.exhausted),
            }
            self.syntheses += 1
            if ledger.enabled:
                cost_key = self._cost_key(bundle_label, "*")
                ledger.charge(cost_key, cache_misses=1)
                ledger.charge_stats(cost_key, payload["stats"])
            self.cache.put("synthesis", key, payload)
            return payload
        # Per-signature mode: one entry per (composition, signature),
        # merged in signature order -- the executor's assembly order.
        scenarios: List[Dict[str, Any]] = []
        stats = SynthesisStats()
        incomplete = False
        for signature in self.engine.signatures:
            key = content_hash(
                {
                    "task": "synthesis",
                    "apps": app_hashes,
                    "signature": signature.name,
                    "params": params,
                    "fingerprint": fingerprint,
                }
            )
            self.warm_lookups += 1
            payload = self.cache.get("synthesis", key)
            if payload is not None:
                self.warm_hits += 1
                if ledger.enabled:
                    ledger.charge(
                        self._cost_key(bundle_label, signature.name),
                        cache_hits=1,
                    )
            else:
                result = self.engine.run_signature(bundle, signature)
                payload = {
                    "scenarios": [
                        serialize.scenario_to_dict(s)
                        for s in result.scenarios
                    ],
                    "stats": result.stats.to_dict(),
                    "incomplete": bool(result.stats.exhausted),
                }
                self.syntheses += 1
                if ledger.enabled:
                    cost_key = self._cost_key(bundle_label, signature.name)
                    ledger.charge(cost_key, cache_misses=1)
                    ledger.charge_stats(cost_key, payload["stats"])
                self.cache.put("synthesis", key, payload)
            scenarios.extend(payload["scenarios"])
            stats.merge(SynthesisStats.from_dict(payload["stats"]))
            incomplete = incomplete or bool(payload.get("incomplete"))
        return {
            "scenarios": scenarios,
            "stats": stats.to_dict(),
            "incomplete": incomplete,
        }

    # ------------------------------------------------------------------
    # Request dispatch (the server's worker calls this)
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one validated request; returns the ``result`` payload.

        Raises :class:`ProtocolError` for anything the client got wrong;
        the server maps it onto an error response.
        """
        self.requests += 1
        op = request["op"]
        if op == "install":
            return self.install(request.get("app"))
        if op == "update":
            return self.update(request.get("app"))
        if op == "uninstall":
            return self.uninstall(self._required_str(request, "package"))
        if op == "grant":
            return self.grant(
                self._required_str(request, "package"),
                self._required_str(request, "permission"),
            )
        if op == "revoke":
            return self.revoke(
                self._required_str(request, "package"),
                self._required_str(request, "permission"),
            )
        if op == "analyze":
            return self.analyze()
        if op == "policies":
            return self.policies()
        if op == "decide":
            return self.decide(
                request.get("kind"),
                request.get("event"),
                context=request.get("context"),
            )
        if op == "audit":
            return self.audit_trail()
        if op == "status":
            return self.status()
        raise ProtocolError("unknown_op", f"unhandled op {op!r}")

    @staticmethod
    def _required_str(request: Dict[str, Any], field: str) -> str:
        value = request.get(field)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "bad_request", f"missing or non-string {field!r}"
            )
        return value


__all__ = [
    "DeviceSession",
    "SessionConfig",
    "cold_analysis",
    "detection_delta",
    "effective_app",
    "findings_bundle",
]
