"""The ``repro serve`` daemon: asyncio front end over warm sessions.

Architecture (see ``docs/SERVICE.md``):

- an asyncio acceptor reads line-delimited JSON requests (TCP or UNIX
  socket) and answers each connection's requests in order;
- requests are sharded per device onto an ``asyncio.Queue``; one worker
  coroutine per device drains its queue in *batches* and executes each
  batch on a thread pool, so devices proceed in parallel while every
  single device's stream stays strictly serialized over its warm
  :class:`~repro.service.session.DeviceSession`;
- mutations only mark a session dirty, so a batched burst of installs
  pays one re-synthesis at the next synthesis-backed query -- the
  per-request *timeout* story is the pipeline's budget/degradation
  semantics (``conflict_budget`` / ``time_budget_seconds`` on the
  engine): an over-budget synthesis degrades to a partial result and the
  response says so, rather than a thread being killed mid-solve;
- a heartbeat task exports liveness + per-session gauges (resident
  bundles, warm-hit rate, queue depth) through the PR 5 metrics
  registry, and the optional scrape endpoint
  (:func:`repro.obs.export.make_metrics_server`) serves them as
  Prometheus text at ``GET /metrics``;
- shutdown (the ``shutdown`` op, :meth:`PolicyService.request_shutdown`,
  or SIGTERM/SIGINT in the CLI) stops accepting, lets in-flight batches
  finish, answers queued requests with ``shutting_down``, and tears the
  metrics thread, ready file, and socket down.

:class:`PolicyService` owns the lifecycle.  ``asyncio.run(service.run())``
is the CLI entry; ``service.background()`` runs the same loop on a
daemon thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import (
    CostKey,
    CostLedger,
    TraceContext,
    adopt_trace_context,
    get_cost_ledger,
    get_metrics,
    get_tracer,
    new_trace_id,
    set_cost_ledger,
)
from repro.obs.export import cost_metrics_snapshot, make_metrics_server
from repro.service import protocol
from repro.service.protocol import ProtocolError
from repro.service.session import DeviceSession, SessionConfig

#: Request-latency buckets (seconds): sub-millisecond cache hits through
#: multi-second cold syntheses.  p50/p99 derive from the cumulative
#: bucket counts on the scrape side.
LATENCY_BOUNDS = (
    0.001,
    0.005,
    0.02,
    0.1,
    0.5,
    2.0,
    10.0,
)


@dataclass
class ServerConfig:
    """Where to listen and how hard to work."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 picks an ephemeral port; see PolicyService.address
    socket_path: Optional[str] = None  # UNIX socket; overrides TCP when set
    metrics_host: str = "127.0.0.1"
    metrics_port: Optional[int] = None  # None disables; 0 = ephemeral
    workers: int = 2
    batch_max: int = 32
    heartbeat_seconds: float = 5.0
    #: A batch executing longer than this trips the stall counter (the
    #: engine's own budgets are the actual bound; this is the alarm).
    stall_seconds: float = 120.0
    #: Optional wall-clock bound per request; ``None`` waits forever.
    request_timeout_seconds: Optional[float] = None
    #: When set, a JSON line ``{"address": ..., "pid": ...}`` is written
    #: here once the server accepts connections (CI waits on it).
    ready_file: Optional[str] = None
    session: SessionConfig = field(default_factory=SessionConfig)


class PolicyService:
    """One daemon instance: sessions, queues, telemetry, lifecycle."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.sessions: Dict[str, DeviceSession] = {}
        self._queues: Dict[str, "asyncio.Queue"] = {}
        self._workers: Dict[str, "asyncio.Task"] = {}
        self._busy_since: Dict[str, Optional[float]] = {}
        self._stalled: Dict[str, bool] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._metrics_httpd = None
        self._metrics_thread: Optional[threading.Thread] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._t0 = time.monotonic()
        self.address: Optional[Tuple[str, int]] = None
        self.metrics_address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve until shutdown is requested; cleans up on the way out."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        # Cost attribution is on whenever the daemon runs: without it the
        # response-level `cost` field, the status top-N, and the scrape's
        # cost series would all be empty.  Always a *fresh* ledger — the
        # daemon's accounts must not mingle with whatever a CLI run in
        # this process charged earlier — and the previous (usually null)
        # ledger is restored on the way out so embedded/test use doesn't
        # leak global state.
        previous_ledger = set_cost_ledger(CostLedger())
        try:
            # The StreamReader limit must cover the protocol's framing
            # bound, or readline() raises on large (but legal) app dicts.
            limit = protocol.MAX_LINE_BYTES + 1024
            if self.config.socket_path:
                self._server = await asyncio.start_unix_server(
                    self._serve_connection,
                    path=self.config.socket_path,
                    limit=limit,
                )
            else:
                self._server = await asyncio.start_server(
                    self._serve_connection,
                    host=self.config.host,
                    port=self.config.port,
                    limit=limit,
                )
                sock = self._server.sockets[0]
                self.address = sock.getsockname()[:2]
            self._start_metrics()
            self._write_ready_file()
            heartbeat = asyncio.ensure_future(self._heartbeat())
            self._started.set()
            await self._shutdown.wait()
            # Stop accepting, then drain: every queued request still gets
            # an answer (shutting_down for work not yet started).
            self._server.close()
            await self._server.wait_closed()
            heartbeat.cancel()
            for task in self._workers.values():
                task.cancel()
            await asyncio.gather(
                heartbeat, *self._workers.values(), return_exceptions=True
            )
            self._drain_queues()
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            raise
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._stop_metrics()
            self._remove_files()
            set_cost_ledger(previous_ledger)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (signal handlers, tests)."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    # -- background (thread) mode for tests / benches / embedding -------
    def start_background(self) -> "PolicyService":
        """Run :meth:`run` on a daemon thread; returns once accepting."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.run()),
            name="repro-serve-loop",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._start_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._start_error!r}"
            )
        if not self._started.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def stop_background(self, timeout: float = 30.0) -> None:
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("service thread did not stop")
            self._thread = None

    @contextlib.contextmanager
    def background(self):
        self.start_background()
        try:
            yield self
        finally:
            self.stop_background()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        metrics = get_metrics()
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the reader limit: the framing itself
                    # is broken, so answer once and close.
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response(
                                None,
                                "line_too_long",
                                f"request exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                start = time.perf_counter()
                response, close = await self._respond(line)
                if metrics.enabled:
                    metrics.counter("service.requests").inc()
                    metrics.histogram(
                        "service.request_seconds", bounds=LATENCY_BOUNDS
                    ).observe(time.perf_counter() - start)
                    if not response.get("ok"):
                        metrics.counter("service.errors").inc()
                writer.write(protocol.encode_message(response))
                await writer.drain()
                if close:
                    break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, line: bytes) -> Tuple[Dict[str, Any], bool]:
        """One request -> (response, close-connection?)."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            return (
                protocol.error_response(None, exc.kind, exc.message),
                exc.kind == "line_too_long",
            )
        rid = protocol.request_id(request)
        op = request["op"]
        # Every request gets a trace id -- the client's, or a fresh one --
        # echoed in the response and carried into the batch thread so the
        # request's spans and ledger charges all land under the same key.
        trace_id = request.get("trace_id") or new_trace_id()
        request["trace_id"] = trace_id

        def finish(
            result: Dict[str, Any], with_cost: bool = False
        ) -> Dict[str, Any]:
            response = protocol.ok_response(rid, result)
            response["trace_id"] = trace_id
            ledger = get_cost_ledger()
            if with_cost and ledger.enabled:
                response["cost"] = ledger.totals(trace_id=trace_id)
            return response

        try:
            if op == "ping":
                return finish(
                    {"pong": True, "version": protocol.PROTOCOL_VERSION}
                ), False
            if op == "shutdown":
                self._shutdown.set()
                return finish({"stopping": True}), True
            if op == "healthz":
                return finish(self._healthz()), False
            if op == "status" and "device" not in request:
                return finish(self._global_status()), False
            result = await self._dispatch_device(request)
            return finish(result, with_cost=True), False
        except ProtocolError as exc:
            return protocol.error_response(rid, exc.kind, exc.message), False
        except asyncio.TimeoutError:
            return (
                protocol.error_response(
                    rid,
                    "timeout",
                    f"request exceeded "
                    f"{self.config.request_timeout_seconds}s",
                ),
                False,
            )
        except Exception as exc:  # noqa: BLE001 - survive as a response
            return (
                protocol.error_response(rid, "internal", repr(exc)),
                False,
            )

    async def _dispatch_device(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._shutdown.is_set():
            raise ProtocolError("shutting_down", "server is draining")
        device = request["device"]
        queue = self._device_queue(device)
        future: "asyncio.Future" = self._loop.create_future()
        queue.put_nowait((request, future))
        timeout = self.config.request_timeout_seconds
        if timeout is None:
            return await future
        return await asyncio.wait_for(future, timeout=timeout)

    # ------------------------------------------------------------------
    # Per-device sharding
    # ------------------------------------------------------------------
    def _device_queue(self, device: str) -> "asyncio.Queue":
        queue = self._queues.get(device)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[device] = queue
            self.sessions[device] = DeviceSession(
                device, config=self.config.session
            )
            self._busy_since[device] = None
            self._stalled[device] = False
            self._workers[device] = asyncio.ensure_future(
                self._device_worker(device)
            )
            metrics = get_metrics()
            if metrics.enabled:
                metrics.gauge("service.sessions").set(len(self.sessions))
        return queue

    async def _device_worker(self, device: str) -> None:
        """Drain one device's queue in batches, strictly in order."""
        queue = self._queues[device]
        session = self.sessions[device]
        while True:
            item = await queue.get()
            batch: List[Tuple[Dict[str, Any], "asyncio.Future"]] = [item]
            while len(batch) < max(1, self.config.batch_max):
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._busy_since[device] = time.monotonic()
            try:
                outcomes = await self._loop.run_in_executor(
                    self._pool,
                    self._run_batch,
                    session,
                    [request for request, _future in batch],
                )
            except Exception as exc:  # noqa: BLE001 - answer, don't die
                outcomes = [("error", ("internal", repr(exc)))] * len(batch)
            finally:
                self._busy_since[device] = None
                self._stalled[device] = False
            for (_request, future), outcome in zip(batch, outcomes):
                if future.cancelled():
                    continue
                status, value = outcome
                if status == "ok":
                    future.set_result(value)
                else:
                    kind, message = value
                    future.set_exception(ProtocolError(kind, message))
            self._update_session_gauges(device, session)

    @staticmethod
    def _run_batch(
        session: DeviceSession, requests: List[Dict[str, Any]]
    ) -> List[Tuple[str, Any]]:
        """Execute a batch on the pool thread; never raises.

        Each request runs under its own adopted trace context: the
        request's ``service.request`` span roots its tree (or joins the
        client's, when the request carried a ``trace_id`` from a traced
        caller), the session's synthesis spans nest under it, and every
        ledger charge -- including the request's wall-clock on the
        session thread -- lands on the request's trace id.
        """
        ledger = get_cost_ledger()
        outcomes: List[Tuple[str, Any]] = []
        for request in requests:
            trace_id = request.get("trace_id")
            ctx = TraceContext(trace_id=trace_id) if trace_id else None
            start = time.perf_counter()
            with adopt_trace_context(ctx):
                with get_tracer().span(
                    "service.request",
                    op=request.get("op", ""),
                    device=session.device,
                ):
                    try:
                        outcomes.append(("ok", session.handle(request)))
                    except ProtocolError as exc:
                        outcomes.append(("error", (exc.kind, exc.message)))
                    except Exception as exc:  # noqa: BLE001
                        outcomes.append(("error", ("internal", repr(exc))))
            if ledger.enabled and trace_id:
                ledger.charge(
                    CostKey(trace_id=trace_id, device=session.device),
                    wall_seconds=time.perf_counter() - start,
                )
        return outcomes

    def _drain_queues(self) -> None:
        """Fail queued-but-unstarted requests instead of dropping them."""
        for queue in self._queues.values():
            while True:
                try:
                    _request, future = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not future.done():
                    future.set_exception(
                        ProtocolError("shutting_down", "server stopped")
                    )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _update_session_gauges(
        self, device: str, session: DeviceSession
    ) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        prefix = f"service.session.{device}"
        metrics.gauge(f"{prefix}.apps").set(len(session.packages()))
        metrics.gauge(f"{prefix}.warm_hit_rate").set(session.warm_hit_rate)
        metrics.gauge(f"{prefix}.queue_depth").set(
            self._queues[device].qsize()
        )
        metrics.gauge(f"{prefix}.syntheses").set(session.syntheses)

    async def _heartbeat(self) -> None:
        metrics = get_metrics()
        interval = max(0.05, self.config.heartbeat_seconds)
        while True:
            if metrics.enabled:
                metrics.counter("service.heartbeats").inc()
                metrics.gauge("service.uptime_seconds").set(
                    time.monotonic() - self._t0
                )
                metrics.gauge("service.sessions").set(len(self.sessions))
                depth = sum(q.qsize() for q in self._queues.values())
                metrics.gauge("service.queue_depth").set(depth)
            now = time.monotonic()
            for device, since in self._busy_since.items():
                if since is None or now - since < self.config.stall_seconds:
                    continue
                if not self._stalled[device]:
                    # Flag each stalled batch once; the engine budgets
                    # are what actually bound it.
                    self._stalled[device] = True
                    if metrics.enabled:
                        metrics.counter("service.stalls").inc()
            await asyncio.sleep(interval)

    def _global_status(self) -> Dict[str, Any]:
        now = time.monotonic()
        ledger = get_cost_ledger()
        sessions = {
            device: session.status()
            for device, session in sorted(self.sessions.items())
        }
        return {
            "version": protocol.PROTOCOL_VERSION,
            "uptime_seconds": now - self._t0,
            "sessions": sessions,
            "queue_depth": sum(q.qsize() for q in self._queues.values()),
            "queue_depths": {
                device: queue.qsize()
                for device, queue in sorted(self._queues.items())
            },
            # Age (seconds) of the batch each device is executing right
            # now; None = idle.  The inverse of a latency histogram: it
            # shows the request you are *still waiting on*.
            "inflight_ages": {
                device: (None if since is None else now - since)
                for device, since in sorted(self._busy_since.items())
            },
            "cache_entries": sum(
                s.get("cache_entries", 0) for s in sessions.values()
            ),
            "top_costs": (
                ledger.top(5, by="conflicts") if ledger.enabled else []
            ),
        }

    def _healthz(self) -> Dict[str, Any]:
        """Cheap liveness summary: no session locks, no ledger scans."""
        inflight = sum(
            1 for since in self._busy_since.values() if since is not None
        )
        return {
            "healthy": True,
            "version": protocol.PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._t0,
            "sessions": len(self.sessions),
            "queue_depth": sum(q.qsize() for q in self._queues.values()),
            "inflight": inflight,
            "stalled_devices": sorted(
                device
                for device, stalled in self._stalled.items()
                if stalled
            ),
        }

    # ------------------------------------------------------------------
    # Side channels: metrics scrape endpoint, ready file
    # ------------------------------------------------------------------
    def _start_metrics(self) -> None:
        if self.config.metrics_port is None:
            return
        registry = get_metrics()

        def snapshot() -> Dict[str, Any]:
            data = dict(registry.snapshot())
            ledger = get_cost_ledger()
            if ledger.enabled:
                # Cost series ride the same scrape: the response-level
                # `cost` field and these Prometheus totals are two views
                # of one ledger, so they reconcile per trace id.
                data.update(cost_metrics_snapshot(ledger.entries()))
            return data

        self._metrics_httpd = make_metrics_server(
            snapshot,
            host=self.config.metrics_host,
            port=self.config.metrics_port,
        )
        self.metrics_address = self._metrics_httpd.server_address[:2]
        self._metrics_thread = threading.Thread(
            target=self._metrics_httpd.serve_forever,
            name="repro-serve-metrics",
            daemon=True,
        )
        self._metrics_thread.start()

    def _stop_metrics(self) -> None:
        if self._metrics_httpd is not None:
            self._metrics_httpd.shutdown()
            self._metrics_httpd.server_close()
            self._metrics_httpd = None
        if self._metrics_thread is not None:
            self._metrics_thread.join(timeout=10.0)
            self._metrics_thread = None

    def _write_ready_file(self) -> None:
        if not self.config.ready_file:
            return
        payload = {
            "pid": os.getpid(),
            "address": (
                self.config.socket_path
                if self.config.socket_path
                else list(self.address)
            ),
            "metrics": list(self.metrics_address)
            if self.metrics_address
            else None,
        }
        with open(self.config.ready_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")

    def _remove_files(self) -> None:
        for path in (self.config.ready_file, self.config.socket_path):
            if path:
                with contextlib.suppress(OSError):
                    os.unlink(path)


__all__ = ["PolicyService", "ServerConfig", "LATENCY_BOUNDS"]
