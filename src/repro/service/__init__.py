"""Long-running policy service: warm incremental SEPAR over a socket.

The ``repro serve`` daemon keeps per-device analysis sessions resident --
extracted app models, the shared-encoding synthesis engine with its live
relational problem, an in-memory content-addressed result cache, and the
compiled PDP -- so an install/uninstall stream is answered by warm
incremental work instead of cold full-bundle reruns, while staying
byte-identical to those cold runs.  See ``docs/SERVICE.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.server import PolicyService, ServerConfig
from repro.service.session import (
    DeviceSession,
    SessionConfig,
    cold_analysis,
    detection_delta,
    findings_bundle,
)

__all__ = [
    "DeviceSession",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "PolicyService",
    "ProtocolError",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "SessionConfig",
    "cold_analysis",
    "detection_delta",
    "findings_bundle",
]
