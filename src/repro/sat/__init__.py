"""Pure-Python CDCL SAT solver substrate.

SEPAR's analysis and synthesis engine (ASE) reduces relational-logic
specifications to propositional satisfiability and discharges them with an
off-the-shelf SAT solver (the paper uses Sat4J).  This package is that
substrate: a conflict-driven clause-learning solver with two-watched-literal
propagation, VSIDS-style activity heuristics, first-UIP clause learning, and
Luby restarts, plus CNF utilities (Tseitin transformation of arbitrary
boolean circuits) and DIMACS import/export.

Two interchangeable backends implement the solver contract:

- :class:`repro.sat.solver.Solver` -- the readable object-graph
  reference implementation, kept as the differential-testing oracle.
- :class:`repro.sat.fastsolver.FastSolver` -- a MiniSat-style flat-arena
  implementation (integer clause refs, per-literal watcher lists,
  LBD-tagged clause reduction, assumption-aware trail saving) that the
  analysis pipeline selects by default for wall-clock speed.

Both must produce byte-identical relational results; use
:func:`make_solver` to construct one by name.

Public API
----------
- :func:`make_solver` -- backend registry (``"reference"`` / ``"fast"``).
- :class:`repro.sat.solver.Solver` -- the reference CDCL solver.
- :class:`repro.sat.fastsolver.FastSolver` -- the flat-arena CDCL solver.
- :class:`repro.sat.solver.Model` -- assigned-only satisfying assignment.
- :class:`repro.sat.cnf.CNF` -- a clause database with variable allocation.
- :mod:`repro.sat.tseitin` -- boolean circuit nodes and CNF conversion.
- :mod:`repro.sat.dimacs` -- DIMACS CNF reading and writing.
"""

from repro.sat.cnf import CNF
from repro.sat.fastsolver import FastSolver
from repro.sat.solver import BudgetExhausted, Model, Solver, SolveResult

#: Name -> constructor for every solver backend.  Names are the values
#: accepted by ``--solver-backend`` and ``RelationalProblem(backend=...)``.
SOLVER_BACKENDS = {
    "reference": Solver,
    "fast": FastSolver,
}

DEFAULT_BACKEND = "fast"


def make_solver(backend: str = DEFAULT_BACKEND):
    """Construct a solver by backend name (``"reference"`` or ``"fast"``).

    The choice never affects results -- backends are verified
    byte-identical -- only wall-clock, so callers may treat the name as a
    pure performance knob (and cache keys must not include it).
    """
    try:
        factory = SOLVER_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {backend!r}; "
            f"expected one of {sorted(SOLVER_BACKENDS)}"
        ) from None
    return factory()


__all__ = [
    "CNF",
    "Solver",
    "FastSolver",
    "SolveResult",
    "Model",
    "BudgetExhausted",
    "SOLVER_BACKENDS",
    "DEFAULT_BACKEND",
    "make_solver",
]
