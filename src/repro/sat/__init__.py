"""Pure-Python CDCL SAT solver substrate.

SEPAR's analysis and synthesis engine (ASE) reduces relational-logic
specifications to propositional satisfiability and discharges them with an
off-the-shelf SAT solver (the paper uses Sat4J).  This package is that
substrate: a conflict-driven clause-learning solver with two-watched-literal
propagation, VSIDS-style activity heuristics, first-UIP clause learning, and
Luby restarts, plus CNF utilities (Tseitin transformation of arbitrary
boolean circuits) and DIMACS import/export.

Public API
----------
- :class:`repro.sat.solver.Solver` -- the CDCL solver.
- :class:`repro.sat.cnf.CNF` -- a clause database with variable allocation.
- :mod:`repro.sat.tseitin` -- boolean circuit nodes and CNF conversion.
- :mod:`repro.sat.dimacs` -- DIMACS CNF reading and writing.
"""

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolveResult

__all__ = ["CNF", "Solver", "SolveResult"]
