"""DIMACS CNF reading and writing.

SEPAR's pipeline dumps the 3-SAT instances it constructs so they can be
replayed or handed to an external solver; these helpers provide that
interchange format.
"""

from __future__ import annotations

from typing import IO, List

from repro.sat.cnf import CNF


def write_dimacs(cnf: CNF, stream: IO[str]) -> None:
    """Serialize ``cnf`` in DIMACS format to a text stream."""
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf:
        stream.write(" ".join(str(lit) for lit in clause))
        stream.write(" 0\n")


def dumps(cnf: CNF) -> str:
    import io

    buf = io.StringIO()
    write_dimacs(cnf, buf)
    return buf.getvalue()


def read_dimacs(stream: IO[str]) -> CNF:
    """Parse a DIMACS CNF file into a :class:`CNF`."""
    num_vars = 0
    clauses: List[List[int]] = []
    pending: List[int] = []
    header_seen = False
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed DIMACS header: {line!r}")
            num_vars = int(parts[2])
            header_seen = True
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        clauses.append(pending)
    if not header_seen:
        raise ValueError("missing DIMACS header")
    cnf = CNF(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def loads(text: str) -> CNF:
    import io

    return read_dimacs(io.StringIO(text))
