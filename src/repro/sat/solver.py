"""Conflict-driven clause-learning (CDCL) SAT solver.

The design follows MiniSat: two-watched-literal propagation, VSIDS-style
exponential variable activities with lazy rescaling, first-UIP conflict
analysis with recursive clause minimization, phase saving, Luby restarts,
and learned-clause garbage collection driven by clause activities.

The solver is incremental: clauses may be added between ``solve()`` calls and
``solve(assumptions=...)`` supports solving under temporary assumptions,
which the relational layer uses both for enumeration and for Aluminum-style
scenario minimization.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs import ProgressSnapshot, get_metrics, get_progress

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


def _luby(i: int) -> int:
    """The reluctant-doubling (Luby) sequence, 1-indexed: 1,1,2,1,1,2,4,..."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


@dataclass
class _ClauseRec:
    lits: List[int]
    learned: bool = False
    activity: float = 0.0


class Model:
    """A satisfying assignment, stored assigned-variables-only.

    Reads preserve the historical contract that every variable maps to a
    boolean, defaulting unassigned variables to ``False`` -- so instance
    decoding and lex-greedy minimization see byte-identical values --
    without materializing an O(num_vars) dict per model.  Iteration and
    ``len`` cover only the variables the solver actually assigned;
    ``dict(model)`` therefore yields the compact assigned-only mapping
    (``.get`` on that dict keeps the same default-False reads).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Dict[int, bool]) -> None:
        self._values = values

    def __getitem__(self, var: int) -> bool:
        return self._values.get(var, False)

    def get(self, var: int, default: bool = False) -> bool:
        return self._values.get(var, default)

    def __contains__(self, var: int) -> bool:
        return var in self._values

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def keys(self):
        return self._values.keys()

    def items(self):
        return self._values.items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Model):
            return self._values == other._values
        if isinstance(other, dict):
            return self._values == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"Model({self._values!r})"


@dataclass
class SolveResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``model`` is a :class:`Model` (assigned variables only, reads
    default unassigned variables to ``False``) when satisfiable and is
    ``None`` otherwise.  ``conflicts``, ``decisions``, ``propagations``
    and ``restarts`` expose search-effort statistics for the benchmark
    harness.

    Truthiness is defined as *satisfiability*: ``bool(result)`` is True
    exactly when ``result.satisfiable`` is -- an UNSAT outcome is falsy
    even though it is a real result object carrying search statistics.
    Use an explicit ``is None`` check to distinguish "no result" from
    "UNSAT result".
    """

    satisfiable: bool
    model: Optional[Model] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0

    def __bool__(self) -> bool:
        """True iff the formula was satisfiable (see class docstring)."""
        return self.satisfiable


class Solver:
    """An incremental CDCL SAT solver over DIMACS-style integer literals.

    This is the *reference* backend: a readable object-graph
    implementation that doubles as the differential-testing oracle for
    :class:`repro.sat.fastsolver.FastSolver`, the flat-arena backend
    selected in production paths.  Both share one contract
    (``SolveResult``/``Model``, assumption semantics, exact
    ``BudgetExhausted`` behaviour) and must agree literally.
    """

    backend_name = "reference"

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[_ClauseRec] = []
        # Watches are indexed by literal; _watch_index maps lit -> list of
        # clause indices watching that literal.
        self._watches: Dict[int, List[int]] = {}
        # assigns[v] is True/False/None.
        self._assigns: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        # reason[v] is the clause index that implied v, or None for decisions.
        self._reason: List[Optional[int]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        # VSIDS order heap: a lazily-cleaned binary max-heap over variable
        # activities.  Every unassigned variable is in the heap; assigned
        # variables may linger and are dropped when popped.
        self._heap: List[int] = []
        self._heap_pos: List[int] = [-1]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._ok = True
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._restarts = 0
        self._learnt = 0
        # Clauses tombstoned by _detach_clauses but not yet swept from
        # the watch lists; len(self._clauses) - self._dead is the live
        # database size, maintained incrementally so per-solve setup
        # never scans the clause list.
        self._dead = 0
        self._solve_id = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def ensure_var(self, var: int) -> None:
        """Make sure variable ``var`` (and all below it) exist."""
        if var < 1:
            raise ValueError("variables are positive integers")
        while self._num_vars < var:
            self._num_vars += 1
            self._assigns.append(None)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._heap_pos.append(-1)
            self._heap_insert(self._num_vars)

    def reset_phases(self) -> None:
        """Forget saved phases, restoring the prefer-false default.

        Between unrelated incremental queries the phases saved from one
        query's models bias the next query's models toward the previous
        assignment; resetting restores cold-start polarity (learned
        clauses and activities are kept).
        """
        self._phase = [False] * len(self._phase)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula is now trivially UNSAT.

        The clause is simplified against top-level assignments: satisfied
        clauses are dropped, falsified literals removed, duplicates merged,
        and tautologies discarded.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("clauses may only be added at decision level 0")
        seen = set()
        lits: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_var(abs(lit))
            value = self._lit_value(lit)
            if value is True or -lit in seen:
                return True  # satisfied at top level or tautology
            if value is False or lit in seen:
                continue
            seen.add(lit)
            lits.append(lit)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        self._attach_clause(_ClauseRec(lits))
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach_clause(self, rec: _ClauseRec) -> int:
        idx = len(self._clauses)
        self._clauses.append(rec)
        if rec.learned:
            self._learnt += 1
        self._watches.setdefault(rec.lits[0], []).append(idx)
        self._watches.setdefault(rec.lits[1], []).append(idx)
        return idx

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> Optional[bool]:
        value = self._assigns[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        value = self._lit_value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assigns[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._phase[var] = self._assigns[var]  # phase saving
            self._assigns[var] = None
            self._reason[var] = None
            self._heap_insert(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self._propagations += 1
            falsified = -lit
            watch_list = self._watches.get(falsified)
            if not watch_list:
                continue
            new_list: List[int] = []
            conflict: Optional[int] = None
            i = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                rec = self._clauses[ci]
                if rec is None:
                    continue  # tombstoned by _detach_clauses: drop lazily
                lits = rec.lits
                # Normalize: falsified literal at position 1.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) is True:
                    new_list.append(ci)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches.setdefault(lits[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                new_list.append(ci)
                if not self._enqueue(first, ci):
                    conflict = ci
                    # Keep remaining watchers.
                    new_list.extend(watch_list[i:])
                    break
            self._watches[falsified] = new_list
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int) -> tuple:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        index = len(self._trail) - 1
        reason_idx: Optional[int] = conflict
        while True:
            assert reason_idx is not None
            rec = self._clauses[reason_idx]
            if rec.learned:
                self._bump_clause(reason_idx)
            start = 0 if lit is None else 1
            lits = rec.lits
            if lit is not None and lits[0] != lit:
                # Reason clause stores the implied literal first by
                # construction of learned clauses; for original clauses the
                # implied literal may sit anywhere, so locate it.
                pos = lits.index(lit)
                lits[0], lits[pos] = lits[pos], lits[0]
            for k in range(start, len(lits)):
                q = lits[k]
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
            # Select next literal to expand.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason_idx = self._reason[var]
        learnt[0] = -lit

        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (self._level[abs(q)] & 31)
        kept = [learnt[0]]
        for q in learnt[1:]:
            if self._reason[abs(q)] is None or not self._redundant(
                q, seen, abstract_levels
            ):
                kept.append(q)
        learnt = kept

        # Compute backtrack level (second-highest level in the clause).
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for k in range(2, len(learnt)):
                if self._level[abs(learnt[k])] > self._level[abs(learnt[max_i])]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._level[abs(learnt[1])]
        return learnt, back_level

    def _redundant(self, lit: int, seen: List[bool], abstract_levels: int) -> bool:
        """Check whether ``lit`` is implied by other clause literals."""
        stack = [lit]
        cleared: List[int] = []
        while stack:
            p = stack.pop()
            reason_idx = self._reason[abs(p)]
            if reason_idx is None:
                for var in cleared:
                    seen[var] = False
                return False
            lits = self._clauses[reason_idx].lits
            for q in lits:
                var = abs(q)
                if var == abs(p) or seen[var] or self._level[var] == 0:
                    continue
                if (
                    self._reason[var] is not None
                    and (1 << (self._level[var] & 31)) & abstract_levels
                ):
                    seen[var] = True
                    cleared.append(var)
                    stack.append(q)
                else:
                    for cvar in cleared:
                        seen[cvar] = False
                    return False
        return True

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE_LIMIT:
            # Uniform rescaling preserves the relative order of activities,
            # so the heap needs no fixing.
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= _RESCALE_FACTOR
            self._var_inc *= _RESCALE_FACTOR
        if self._heap_pos[var] >= 0:
            self._heap_sift_up(self._heap_pos[var])

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, idx: int) -> None:
        rec = self._clauses[idx]
        rec.activity += self._cla_inc
        if rec.activity > _RESCALE_LIMIT:
            for other in self._clauses:
                if other is not None and other.learned:
                    other.activity *= _RESCALE_FACTOR
            self._cla_inc *= _RESCALE_FACTOR

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    # ------------------------------------------------------------------
    # Learned-clause reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        learned = [
            (i, rec)
            for i, rec in enumerate(self._clauses)
            if rec is not None
            and rec.learned
            and len(rec.lits) > 2
            and not self._is_reason(i)
        ]
        if len(learned) < 2:
            return
        learned.sort(key=lambda pair: pair[1].activity)
        to_remove = {i for i, _ in learned[: len(learned) // 2]}
        self._detach_clauses(to_remove)

    def _is_reason(self, idx: int) -> bool:
        lits = self._clauses[idx].lits
        var = abs(lits[0])
        return self._reason[var] == idx

    def _detach_clauses(self, indices: set) -> None:
        """Remove clauses by index via lazy watcher cleanup.

        Removed slots are tombstoned (set to ``None``) rather than
        compacted: surviving clause indices, the watch lists, and every
        ``reason`` pointer stay valid as-is, so a reduction costs
        O(removed) instead of the old O(database) watch-table rebuild and
        reason remap.  Stale watch refs are dropped the next time
        propagation visits their literal (see :meth:`_propagate`).  The
        reference solver trades the unclaimed tombstone slots for
        simplicity; the flat-arena backend (:mod:`repro.sat.fastsolver`)
        is the one that compacts its memory.
        """
        for i in indices:
            rec = self._clauses[i]
            if rec is None:
                continue
            if rec.learned:
                self._learnt -= 1
            self._clauses[i] = None
            self._dead += 1

    # ------------------------------------------------------------------
    # Decisions (VSIDS order heap, MiniSat-style)
    # ------------------------------------------------------------------
    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] >= 0:
            return
        self._heap.append(var)
        self._heap_pos[var] = len(self._heap) - 1
        self._heap_sift_up(len(self._heap) - 1)

    def _heap_sift_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        var = heap[i]
        key = act[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _heap_sift_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        n = len(heap)
        var = heap[i]
        key = act[var]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            child = left
            right = left + 1
            if right < n and act[heap[right]] > act[heap[left]]:
                child = right
            cvar = heap[child]
            if key >= act[cvar]:
                break
            heap[i] = cvar
            pos[cvar] = i
            i = child
        heap[i] = var
        pos[var] = i

    def _heap_pop(self) -> int:
        heap, pos = self._heap, self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _pick_branch_var(self) -> Optional[int]:
        # Lazy cleaning: assigned variables linger in the heap until popped.
        while self._heap:
            var = self._heap_pop()
            if self._assigns[var] is None:
                return var
        return None

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> SolveResult:
        """Solve the formula, optionally under assumptions.

        ``conflict_budget`` bounds total conflicts: the call raises
        :class:`BudgetExhausted` as soon as the conflict count reaches the
        budget, so a budgeted call never spends more than
        ``max(conflict_budget, 1)`` conflicts -- callers that accumulate
        ``exc.conflicts`` against a shared budget (e.g.
        ``RelationalProblem``) stay within it exactly, because they never
        issue a call with a non-positive remainder.  Assumption failure
        (UNSAT under the given
        assumptions) returns an unsatisfiable result without spoiling the
        solver for future calls.
        """
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._restarts = 0
        self._solve_id += 1
        if not self._ok:
            return SolveResult(False)
        for lit in assumptions:
            self.ensure_var(abs(lit))

        # Progress telemetry: with the null bus the loop below pays one
        # integer test per conflict and nothing else.
        progress = get_progress()
        sample_every = progress.interval if progress.enabled else 0
        solve_started = time.perf_counter() if sample_every else 0.0

        # Incrementally-maintained counts: per-call setup must not scan
        # the clause database (gated queries against a large shared DB
        # used to pay O(total clauses) here before the search even began).
        live_clauses = len(self._clauses) - self._dead
        max_learnts = max(100, live_clauses // 3)
        restart_idx = 1
        conflicts_until_restart = 32 * _luby(restart_idx)
        conflicts_this_restart = 0

        try:
            while True:
                conflict = self._propagate()
                if conflict is not None:
                    self._conflicts += 1
                    conflicts_this_restart += 1
                    if sample_every and self._conflicts % sample_every == 0:
                        progress.publish(
                            self._progress_snapshot(
                                solve_started, conflict_budget
                            )
                        )
                    if conflict_budget is not None and self._conflicts >= conflict_budget:
                        # Publish before raising: the work done up to the
                        # budget miss (this call's conflicts/decisions/
                        # propagations) must not vanish from the metrics
                        # just because the call did not finish.
                        self._publish_metrics("budget_exhausted")
                        raise BudgetExhausted(
                            self._conflicts,
                            decisions=self._decisions,
                            propagations=self._propagations,
                        )
                    if self._decision_level() == 0:
                        self._ok = False
                        return self._finish(False)
                    learnt, back_level = self._analyze(conflict)
                    # Never backtrack past the assumption levels we have not
                    # re-validated; _cancel_until(0) is always safe because
                    # assumptions are re-enqueued below.
                    self._cancel_until(back_level)
                    if len(learnt) == 1:
                        if not self._enqueue(learnt[0], None):
                            self._ok = False
                            return self._finish(False)
                    else:
                        rec = _ClauseRec(list(learnt), learned=True)
                        idx = self._attach_clause(rec)
                        self._bump_clause(idx)
                        self._enqueue(learnt[0], idx)
                    self._decay_var_activity()
                    self._decay_clause_activity()
                    continue

                if self._learnt > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)

                if conflicts_this_restart >= conflicts_until_restart:
                    restart_idx += 1
                    conflicts_until_restart = 32 * _luby(restart_idx)
                    conflicts_this_restart = 0
                    self._restarts += 1
                    self._cancel_until(0)
                    continue

                # Seat any outstanding assumptions as pseudo-decisions.
                next_lit = None
                while self._decision_level() < len(assumptions):
                    lit = assumptions[self._decision_level()]
                    value = self._lit_value(lit)
                    if value is True:
                        self._new_decision_level()
                        continue
                    if value is False:
                        return self._finish(False)
                    next_lit = lit
                    break
                if next_lit is None:
                    var = self._pick_branch_var()
                    if var is None:
                        return self._finish(True)
                    next_lit = var if self._phase[var] else -var
                self._decisions += 1
                self._new_decision_level()
                self._enqueue(next_lit, None)
        finally:
            if sample_every:
                # A closing snapshot, so even an easy solve (fewer conflicts
                # than the sampling interval) heartbeats once, and watchers
                # see the final counters of a budget-exhausted call.
                progress.publish(
                    self._progress_snapshot(solve_started, conflict_budget)
                )
            # Always unwind to level 0: every exit path -- UNSAT, assumption
            # failure, and notably a BudgetExhausted raise -- must leave the
            # solver ready for further add_clause/solve calls.  (_finish has
            # already cancelled on normal returns; this is then a no-op.)
            self._cancel_until(0)

    def _progress_snapshot(
        self, solve_started: float, conflict_budget: Optional[int]
    ) -> ProgressSnapshot:
        """A point-in-time view of the running solve (for the progress bus)."""
        elapsed = time.perf_counter() - solve_started
        return ProgressSnapshot(
            ts=time.time(),
            pid=os.getpid(),
            solve_id=self._solve_id,
            conflicts=self._conflicts,
            decisions=self._decisions,
            propagations=self._propagations,
            restarts=self._restarts,
            learned=self._learnt,
            trail=len(self._trail),
            conflicts_per_sec=(
                self._conflicts / elapsed if elapsed > 0 else 0.0
            ),
            budget_remaining=(
                conflict_budget - self._conflicts
                if conflict_budget is not None
                else None
            ),
        )

    def _publish_metrics(self, outcome: str) -> None:
        """Publish this call's counters (every exit path, incl. budget)."""
        metrics = get_metrics()
        if metrics.enabled:
            # One registry round-trip per solve() call, never per conflict:
            # the counters below are already accumulated in plain ints.
            metrics.counter("sat.solver_calls").inc()
            metrics.counter(f"sat.calls.{self.backend_name}").inc()
            metrics.counter("sat.conflicts").inc(self._conflicts)
            metrics.counter("sat.decisions").inc(self._decisions)
            metrics.counter("sat.propagations").inc(self._propagations)
            metrics.counter("sat.restarts").inc(self._restarts)
            metrics.counter(f"sat.results.{outcome}").inc()

    def _finish(self, sat: bool) -> SolveResult:
        model: Optional[Model] = None
        if sat:
            # Assigned-only: the trail holds exactly the assigned
            # variables, so model construction costs O(assigned) instead
            # of O(num_vars); Model reads default the rest to False,
            # keeping instances and minimal scenarios byte-identical.
            model = Model({abs(lit): lit > 0 for lit in self._trail})
        self._cancel_until(0)
        self._publish_metrics("sat" if sat else "unsat")
        return SolveResult(
            satisfiable=sat,
            model=model,
            conflicts=self._conflicts,
            decisions=self._decisions,
            propagations=self._propagations,
            restarts=self._restarts,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses) - self._dead

    @property
    def num_learnt(self) -> int:
        """Learned (conflict-derived) clauses currently in the database."""
        return self._learnt

    @property
    def ok(self) -> bool:
        """False once the clause set is known unsatisfiable outright."""
        return self._ok

    def root_value(self, var: int) -> Optional[bool]:
        """The variable's value when fixed at decision level 0, else None.

        Root assignments only ever grow, so a returned value is permanent:
        callers may strip the corresponding falsified literal from clauses
        they are about to add (the stripped clause is equivalent).
        """
        if var < len(self._assigns) and self._level[var] == 0:
            return self._assigns[var]
        return None


class BudgetExhausted(RuntimeError):
    """Raised when a conflict budget passed to :meth:`Solver.solve` runs out.

    Carries the interrupted call's CDCL counters so callers can fold the
    partial work into their statistics (the call never reaches the
    :class:`SolveResult` that would normally deliver them).
    """

    def __init__(
        self, conflicts: int, decisions: int = 0, propagations: int = 0
    ) -> None:
        super().__init__(f"conflict budget exhausted after {conflicts} conflicts")
        self.conflicts = conflicts
        self.decisions = decisions
        self.propagations = propagations
