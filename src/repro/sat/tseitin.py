"""Boolean circuits and Tseitin transformation to CNF.

The relational translator builds large and/or/not circuits over matrix
entries; this module gives those circuits a hash-consed representation and a
polynomial-size conversion to clauses.  Constants are folded eagerly so the
translator can freely combine bound-derived ``TRUE``/``FALSE`` entries with
real variables without blowing up the clause database.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sat.cnf import CNF


class Node:
    """A node in a boolean circuit; use the module factories to build them."""

    __slots__ = ("kind", "children", "_hash")

    def __init__(self, kind: str, children: Tuple) -> None:
        self.kind = kind
        self.children = children
        self._hash = hash((kind, children))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and self.kind == other.kind
            and self.children == other.children
        )

    def __repr__(self) -> str:
        if self.kind == "var":
            return f"v{self.children[0]}"
        if self.kind in ("true", "false"):
            return self.kind.upper()
        return f"{self.kind}({', '.join(map(repr, self.children))})"


TRUE = Node("true", ())
FALSE = Node("false", ())

_VAR_CACHE: Dict[int, Node] = {}


def var(index: int) -> Node:
    """A literal node for SAT variable ``index`` (positive integer)."""
    if index < 1:
        raise ValueError("variables are positive integers")
    node = _VAR_CACHE.get(index)
    if node is None:
        node = Node("var", (index,))
        _VAR_CACHE[index] = node
    return node


def not_(operand: Node) -> Node:
    if operand is TRUE:
        return FALSE
    if operand is FALSE:
        return TRUE
    if operand.kind == "not":
        return operand.children[0]
    return Node("not", (operand,))


def _flatten(kind: str, operands: Iterable[Node]) -> List[Node]:
    flat: List[Node] = []
    for op in operands:
        if op.kind == kind:
            flat.extend(op.children)
        else:
            flat.append(op)
    return flat


def and_(*operands: Node) -> Node:
    ops = _flatten("and", operands)
    kept: List[Node] = []
    seen = set()
    for op in ops:
        if op is FALSE:
            return FALSE
        if op is TRUE or op in seen:
            continue
        if not_(op) in seen:
            return FALSE
        seen.add(op)
        kept.append(op)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return Node("and", tuple(kept))


def or_(*operands: Node) -> Node:
    ops = _flatten("or", operands)
    kept: List[Node] = []
    seen = set()
    for op in ops:
        if op is TRUE:
            return TRUE
        if op is FALSE or op in seen:
            continue
        if not_(op) in seen:
            return TRUE
        seen.add(op)
        kept.append(op)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Node("or", tuple(kept))


def implies(premise: Node, conclusion: Node) -> Node:
    return or_(not_(premise), conclusion)


def iff(left: Node, right: Node) -> Node:
    return and_(implies(left, right), implies(right, left))


def ite(cond: Node, then: Node, else_: Node) -> Node:
    return or_(and_(cond, then), and_(not_(cond), else_))


def all_of(operands: Iterable[Node]) -> Node:
    return and_(*list(operands))


def any_of(operands: Iterable[Node]) -> Node:
    return or_(*list(operands))


class TseitinEncoder:
    """Converts circuit nodes into CNF clauses over a shared :class:`CNF`.

    Each distinct sub-circuit gets one auxiliary variable (memoised), so
    shared subterms are encoded once.
    """

    def __init__(self, cnf: CNF) -> None:
        self._cnf = cnf
        self._cache: Dict[Node, int] = {}
        self._false_var: Optional[int] = None

    def literal(self, node: Node) -> int:
        """Return a SAT literal equisatisfiably representing ``node``.

        Constants are not representable as bare literals; callers should
        special-case :data:`TRUE` and :data:`FALSE` (``assert_node`` does).
        """
        if node is TRUE or node is FALSE:
            raise ValueError("constant node has no literal; fold it earlier")
        if node.kind == "var":
            return node.children[0]
        if node.kind == "not":
            return -self.literal(node.children[0])
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        child_lits = [self.literal(child) for child in node.children]
        aux = self._cnf.new_var()
        if node.kind == "and":
            for lit in child_lits:
                self._cnf.add_clause((-aux, lit))
            self._cnf.add_clause(tuple([aux] + [-lit for lit in child_lits]))
        elif node.kind == "or":
            for lit in child_lits:
                self._cnf.add_clause((-lit, aux))
            self._cnf.add_clause(tuple([-aux] + child_lits))
        else:  # pragma: no cover - factories only build the kinds above
            raise ValueError(f"unknown node kind {node.kind!r}")
        self._cache[node] = aux
        return aux

    def assert_node(self, node: Node) -> bool:
        """Add clauses forcing ``node`` true.

        Returns False when the node is the FALSE constant (formula
        trivially unsatisfiable), True otherwise.  Top-level conjunctions
        are split into separate asserted conjuncts to keep clauses small.
        """
        if node is TRUE:
            return True
        if node is FALSE:
            if self._false_var is None:
                self._false_var = self._cnf.new_var()
                self._cnf.add_clause((self._false_var,))
                self._cnf.add_clause((-self._false_var,))
            return False
        if node.kind == "and":
            ok = True
            for child in node.children:
                ok = self.assert_node(child) and ok
            return ok
        if node.kind == "or":
            lits = []
            for child in node.children:
                lits.append(self.literal(child))
            self._cnf.add_clause(tuple(lits))
            return True
        self._cnf.add_clause((self.literal(node),))
        return True

    def assert_node_gated(self, node: Node, selector: int) -> bool:
        """Add clauses forcing ``node`` true whenever ``selector`` is true.

        Every *assertion* clause is guarded by ``-selector``; definitional
        (Tseitin auxiliary) clauses emitted by :meth:`literal` stay unguarded
        because they are equivalences, satisfiable under any assignment, and
        this keeps them shareable across gated groups.  Returns False when
        the node is the FALSE constant -- the group is unsatisfiable and the
        emitted unit ``(-selector)`` forbids ever activating it.
        """
        if node is TRUE:
            return True
        if node is FALSE:
            self._cnf.add_clause((-selector,))
            return False
        if node.kind == "and":
            ok = True
            for child in node.children:
                ok = self.assert_node_gated(child, selector) and ok
            return ok
        if node.kind == "or":
            lits = [-selector]
            for child in node.children:
                lits.append(self.literal(child))
            self._cnf.add_clause(tuple(lits))
            return True
        self._cnf.add_clause((-selector, self.literal(node)))
        return True


def evaluate(node: Node, model: Dict[int, bool]) -> bool:
    """Evaluate a circuit under a total assignment (used in tests)."""
    if node is TRUE:
        return True
    if node is FALSE:
        return False
    if node.kind == "var":
        return model[node.children[0]]
    if node.kind == "not":
        return not evaluate(node.children[0], model)
    if node.kind == "and":
        return all(evaluate(child, model) for child in node.children)
    if node.kind == "or":
        return any(evaluate(child, model) for child in node.children)
    raise ValueError(f"unknown node kind {node.kind!r}")
