"""Clause database and literal conventions.

Literals follow the DIMACS convention: a variable is a positive integer
``v >= 1``; the literal ``v`` asserts the variable true and ``-v`` asserts it
false.  Clauses are tuples of literals interpreted as disjunctions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

Clause = Tuple[int, ...]


class CNF:
    """A growable CNF formula with its own variable allocator.

    The formula tracks the highest variable index it has handed out or seen
    in an added clause, so translators can freely mix fresh auxiliary
    variables with pre-assigned problem variables.
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._num_vars = num_vars
        self._clauses: List[Clause] = []

    @property
    def num_vars(self) -> int:
        """Highest variable index in use."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def clauses(self) -> Sequence[Clause]:
        return self._clauses

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a disjunction of literals.

        Zero literals are rejected (they are the DIMACS terminator, not a
        literal).  The variable allocator high-water mark is bumped past any
        variable mentioned by the clause.
        """
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = abs(lit)
            if var > self._num_vars:
                self._num_vars = var
        self._clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self._num_vars}, clauses={len(self._clauses)})"
