"""Flat-arena CDCL backend: the wall-clock engine behind shared encoding.

Same search as :class:`repro.sat.solver.Solver` (two-watched-literal
propagation, VSIDS order heap, first-UIP analysis with recursive clause
minimization, phase saving, Luby restarts) but on a MiniSat-style flat
memory layout instead of an object graph:

- **Clause arena**: one ``array('i')`` holds every clause as
  ``[size, flags, lbd, lit0, lit1, ...]``; clauses are addressed by
  integer arena refs, and literals are stored encoded
  (``var << 1 | sign``) so negation is ``e ^ 1`` and per-literal tables
  are plain list indexing.
- **Flat watcher table**: a list of per-literal watcher lists indexed by
  encoded literal replaces the ``Dict[int, List[int]]`` watch map; stale
  refs left behind by clause deletion are dropped lazily during
  propagation.
- **Flat assignment state**: a per-literal value ``bytearray`` (so
  literal valuation is one index, no sign branch) plus flat
  level/reason/phase arrays.
- **LBD-tagged learned clauses**: each learned clause records its glue
  (distinct decision levels at learn time); ``reduce_db`` drops the
  worst half by ``(lbd, age)``, always keeping glue clauses
  (``lbd <= 2``), binary clauses, and active reasons.  Deletion is a
  flag flip; when dead clauses exceed half the arena, the arena is
  compacted in place -- live clauses slide down, the existing watcher
  lists are remapped by slice assignment, and reasons are fixed via one
  trail walk -- instead of rebuilding the whole watch table per
  reduction.
- **Assumption-aware trail saving**: between ``solve()`` calls the trail
  is unwound only to the seated-assumption level, and the next call
  reuses the propagated prefix shared with its own assumption list.
  Successive gated queries on one shared bundle encoding (the
  minimization walk especially: hundreds of solves under ``[selector,
  -others, activation, ...]``) skip re-propagating the shared clause
  database from scratch.  Clauses added while a prefix is saved are
  attached against the live trail (backtracking just far enough when
  the new clause is unit or conflicting under it), so enumeration
  blocking and minimization pin clauses keep the prefix warm.

The semantics are identical to the reference solver: same
``SolveResult``/:class:`~repro.sat.solver.Model` contract, same
assumption-failure behaviour, and the same *exact*
:class:`~repro.sat.solver.BudgetExhausted` raise at ``>= budget``
conflicts.  The reference solver remains the differential-fuzzing
oracle; this backend is selected via
``RelationalProblem(backend="fast")`` / ``--solver-backend fast``.
"""

from __future__ import annotations

import os
import time
from array import array
from typing import List, Optional, Sequence

from repro.obs import ProgressSnapshot, get_metrics, get_progress
from repro.sat.solver import (
    BudgetExhausted,
    Model,
    SolveResult,
    _luby,
)

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100

# Per-literal truth values (indexed by encoded literal).
_UNDEF, _TRUE, _FALSE = 0, 1, 2

# Clause flag bits (arena word 1).
_LEARNED = 1
_DEAD = 2

# Arena layout: ref + _HDR is the first literal.
_HDR = 3


class FastSolver:
    """Incremental CDCL over a flat clause arena (see module docstring).

    Drop-in for :class:`repro.sat.solver.Solver`: same constructor and
    method surface (``ensure_var`` / ``add_clause`` / ``add_clauses`` /
    ``solve`` / ``reset_phases`` and the introspection properties), so
    :class:`repro.relational.problem.RelationalProblem` selects between
    them by name without branching anywhere else.
    """

    backend_name = "fast"

    def __init__(self) -> None:
        self._num_vars = 0
        self._arena = array("i")
        # Watcher lists indexed by encoded literal; refs of deleted
        # clauses linger until propagation or compaction drops them.
        self._watches: List[List[int]] = [[], []]
        # Per-encoded-literal truth value; _value[e] and _value[e ^ 1]
        # are kept complementary while the variable is assigned.
        self._value = bytearray(2)
        self._level = array("i", [0])
        self._reason: List[int] = [-1]
        self._activity: List[float] = [0.0]
        self._phase = bytearray(1)
        self._heap: List[int] = []
        self._heap_pos: List[int] = [-1]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        # Encoded assumption literals currently seated as the decision
        # prefix: _seated[i] was seated at decision level i + 1.  This is
        # the trail-saving state reused across solve() calls.
        self._seated: List[int] = []
        self._qhead = 0
        self._ok = True
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._restarts = 0
        self._learnt = 0
        self._num_clauses = 0
        self._garbage = 0  # arena words held by dead clauses
        self._learned_refs: List[int] = []
        self._seen = bytearray(1)
        self._solve_id = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def ensure_var(self, var: int) -> None:
        """Make sure variable ``var`` (and all below it) exist."""
        if var < 1:
            raise ValueError("variables are positive integers")
        while self._num_vars < var:
            self._num_vars += 1
            self._watches.append([])
            self._watches.append([])
            self._value.extend(b"\x00\x00")
            self._level.append(0)
            self._reason.append(-1)
            self._activity.append(0.0)
            self._phase.append(0)
            self._heap_pos.append(-1)
            self._seen.append(0)
            self._heap_insert(self._num_vars)

    def reset_phases(self) -> None:
        """Forget saved phases, restoring the prefer-false default."""
        self._phase = bytearray(len(self._phase))

    @staticmethod
    def _encode(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    def add_clause(self, literals) -> bool:
        """Add a clause; returns False if the formula is now root-UNSAT.

        Unlike the reference solver this may be called while a saved
        assumption prefix is on the trail: the clause is simplified
        against *root-level* assignments only, then attached against the
        live trail, backtracking just far enough when it is unit or
        conflicting under the saved prefix (so trail saving survives the
        blocking/pin clauses the relational layer adds between queries).
        """
        if not self._ok:
            return False
        value = self._value
        level = self._level
        seen = set()
        lits: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_var(abs(lit))
            e = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            val = value[e]
            rooted = val != _UNDEF and level[e >> 1] == 0
            if (rooted and val == _TRUE) or (e ^ 1) in seen:
                return True  # satisfied at root level or tautology
            if (rooted and val == _FALSE) or e in seen:
                continue
            seen.add(e)
            lits.append(e)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            # A unit binds at the root: drop any saved prefix first.
            self._cancel_until(0)
            if not self._enqueue(lits[0], -1):
                self._ok = False
                return False
            self._ok = self._propagate() < 0
            return self._ok
        return self._attach_live(lits)

    def _attach_live(self, lits: List[int]) -> bool:
        """Attach a >= 2-literal clause against the current (possibly
        saved) trail, preserving the watched-literal invariant."""
        value = self._value
        level = self._level
        while True:
            nonfalse = [e for e in lits if value[e] != _FALSE]
            if len(nonfalse) >= 2:
                # Watch two non-false literals: invariant holds as-is.
                order = nonfalse[:2] + [e for e in lits if e not in nonfalse[:2]]
                self._attach(order, learned=False)
                return True
            false_lits = [e for e in lits if value[e] == _FALSE]
            max_level = max(level[e >> 1] for e in false_lits)
            if not nonfalse:
                # Conflicting under the saved trail: unwind one level
                # below the latest falsification and re-evaluate.
                self._cancel_until(max(0, max_level - 1))
                continue
            if len(self._trail_lim) > max_level:
                self._cancel_until(max_level)
                continue  # re-evaluate: the unwind may have freed literals
            w = nonfalse[0]
            max_false = max(false_lits, key=lambda e: (level[e >> 1], e))
            order = [w, max_false] + [
                e for e in lits if e != w and e != max_false
            ]
            ref = self._attach(order, learned=False)
            if value[w] == _UNDEF:
                # Unit under the saved trail: imply it here, keeping the
                # prefix; a conflict during that propagation falls back
                # to a cold root (sound -- the next solve rediscovers it).
                self._enqueue(w, ref)
                if self._propagate() >= 0:
                    self._cancel_until(0)
            return True

    def add_clauses(self, clauses) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach(self, lits: List[int], learned: bool, lbd: int = 0) -> int:
        arena = self._arena
        ref = len(arena)
        arena.append(len(lits))
        arena.append(_LEARNED if learned else 0)
        arena.append(lbd)
        arena.extend(lits)
        self._watches[lits[0]].append(ref)
        self._watches[lits[1]].append(ref)
        self._num_clauses += 1
        if learned:
            self._learnt += 1
            self._learned_refs.append(ref)
        return ref

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _enqueue(self, e: int, reason: int) -> bool:
        value = self._value
        val = value[e]
        if val != _UNDEF:
            return val == _TRUE
        value[e] = _TRUE
        value[e ^ 1] = _FALSE
        var = e >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(e)
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        value = self._value
        phase = self._phase
        reason = self._reason
        trail = self._trail
        heap_insert = self._heap_insert
        for idx in range(len(trail) - 1, bound - 1, -1):
            e = trail[idx]
            var = e >> 1
            phase[var] = 1 - (e & 1)  # phase saving
            value[e] = _UNDEF
            value[e ^ 1] = _UNDEF
            reason[var] = -1
            heap_insert(var)
        del trail[bound:]
        del self._trail_lim[level:]
        del self._seated[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # Propagation (the hot loop: flat arrays, locals hoisted)
    # ------------------------------------------------------------------
    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause ref or -1."""
        arena = self._arena
        value = self._value
        watches = self._watches
        trail = self._trail
        level = self._level
        reason = self._reason
        dl = len(self._trail_lim)
        qhead = self._qhead
        props = 0
        conflict = -1
        while qhead < len(trail):
            e = trail[qhead]
            qhead += 1
            props += 1
            falsified = e ^ 1
            wl = watches[falsified]
            if not wl:
                continue
            i = j = 0
            n = len(wl)
            while i < n:
                ref = wl[i]
                i += 1
                flags = arena[ref + 1]
                if flags & _DEAD:
                    continue  # lazy watcher cleanup: drop the stale ref
                base = ref + _HDR
                l0 = arena[base]
                if l0 == falsified:
                    l0 = arena[base + 1]
                    arena[base] = l0
                    arena[base + 1] = falsified
                if value[l0] == _TRUE:
                    wl[j] = ref
                    j += 1
                    continue
                size = arena[ref]
                moved = False
                for k in range(base + 2, base + size):
                    lk = arena[k]
                    if value[lk] != _FALSE:
                        arena[base + 1] = lk
                        arena[k] = falsified
                        watches[lk].append(ref)
                        moved = True
                        break
                if moved:
                    continue
                wl[j] = ref
                j += 1
                if value[l0] == _FALSE:
                    conflict = ref
                    while i < n:  # keep remaining watchers
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    break
                # Implied: assign l0 here.
                value[l0] = _TRUE
                value[l0 ^ 1] = _FALSE
                var = l0 >> 1
                level[var] = dl
                reason[var] = ref
                trail.append(l0)
            del wl[j:]
            if conflict >= 0:
                qhead = len(trail)
                break
        self._qhead = qhead
        self._propagations += props
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP + recursive minimization)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int):
        """Returns ``(learnt_encoded, back_level, lbd)``."""
        arena = self._arena
        trail = self._trail
        level = self._level
        reason = self._reason
        seen = self._seen
        touched: List[int] = []
        learnt: List[int] = [0]  # placeholder for the asserting literal
        counter = 0
        e = -1
        index = len(trail) - 1
        reason_ref = conflict
        dl = len(self._trail_lim)
        bump = self._bump_var
        while True:
            base = reason_ref + _HDR
            size = arena[reason_ref]
            if e != -1 and arena[base] != e:
                # Original clauses may hold the implied literal anywhere.
                for k in range(base + 1, base + size):
                    if arena[k] == e:
                        arena[k] = arena[base]
                        arena[base] = e
                        break
            start = base if e == -1 else base + 1
            for k in range(start, base + size):
                q = arena[k]
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    touched.append(var)
                    bump(var)
                    if level[var] >= dl:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            e = trail[index]
            index -= 1
            var = e >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason_ref = reason[var]
        learnt[0] = e ^ 1

        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (level[q >> 1] & 31)
        kept = [learnt[0]]
        for q in learnt[1:]:
            if reason[q >> 1] < 0 or not self._redundant(
                q, abstract_levels, touched
            ):
                kept.append(q)
        learnt = kept

        lbd = len({level[q >> 1] for q in learnt})
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for k in range(2, len(learnt)):
                if level[learnt[k] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = level[learnt[1] >> 1]
        for var in touched:
            seen[var] = 0
        return learnt, back_level, lbd

    def _redundant(
        self, e: int, abstract_levels: int, touched: List[int]
    ) -> bool:
        arena = self._arena
        level = self._level
        reason = self._reason
        seen = self._seen
        stack = [e]
        cleared: List[int] = []
        while stack:
            p = stack.pop()
            reason_ref = reason[p >> 1]
            if reason_ref < 0:
                for var in cleared:
                    seen[var] = 0
                return False
            base = reason_ref + _HDR
            for k in range(base, base + arena[reason_ref]):
                q = arena[k]
                var = q >> 1
                if var == (p >> 1) or seen[var] or level[var] == 0:
                    continue
                if (
                    reason[var] >= 0
                    and (1 << (level[var] & 31)) & abstract_levels
                ):
                    seen[var] = 1
                    cleared.append(var)
                    touched.append(var)
                    stack.append(q)
                else:
                    for cvar in cleared:
                        seen[cvar] = 0
                    return False
        return True

    # ------------------------------------------------------------------
    # Activities and the VSIDS order heap
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        act = self._activity
        act[var] += self._var_inc
        if act[var] > _RESCALE_LIMIT:
            for v in range(1, self._num_vars + 1):
                act[v] *= _RESCALE_FACTOR
            self._var_inc *= _RESCALE_FACTOR
        if self._heap_pos[var] >= 0:
            self._heap_sift_up(self._heap_pos[var])

    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] >= 0:
            return
        self._heap.append(var)
        self._heap_pos[var] = len(self._heap) - 1
        self._heap_sift_up(len(self._heap) - 1)

    def _heap_sift_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        var = heap[i]
        key = act[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _heap_sift_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        n = len(heap)
        var = heap[i]
        key = act[var]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            child = left
            right = left + 1
            if right < n and act[heap[right]] > act[heap[left]]:
                child = right
            cvar = heap[child]
            if key >= act[cvar]:
                break
            heap[i] = cvar
            pos[cvar] = i
            i = child
        heap[i] = var
        pos[var] = i

    def _pick_branch_var(self) -> Optional[int]:
        heap, pos = self._heap, self._heap_pos
        value = self._value
        while heap:
            top = heap[0]
            pos[top] = -1
            last = heap.pop()
            if heap:
                heap[0] = last
                pos[last] = 0
                self._heap_sift_down(0)
            if value[top << 1] == _UNDEF:
                return top
        return None

    # ------------------------------------------------------------------
    # LBD-driven learned-clause reduction + arena compaction
    # ------------------------------------------------------------------
    def _is_reason(self, ref: int) -> bool:
        # Learned clauses keep their implied literal at position 0 while
        # they serve as a reason (it is true, so propagation never swaps
        # it out), making this an O(1) check.
        return self._reason[self._arena[ref + _HDR] >> 1] == ref

    def _reduce_db(self) -> None:
        arena = self._arena
        live = [r for r in self._learned_refs if not arena[r + 1] & _DEAD]
        candidates = [
            r
            for r in live
            if arena[r] > 2 and arena[r + 2] > 2 and not self._is_reason(r)
        ]
        if len(candidates) < 2:
            self._learned_refs = live
            return
        # Glue-aware: drop the worst half by (lbd, oldest); lbd <= 2
        # ("glue") clauses were excluded above and survive every cut.
        candidates.sort(key=lambda r: (arena[r + 2], -r))
        doomed = candidates[len(candidates) // 2 :]
        doomed_set = set(doomed)
        for ref in doomed:
            arena[ref + 1] |= _DEAD
            self._garbage += _HDR + arena[ref]
            self._learnt -= 1
            self._num_clauses -= 1
        self._learned_refs = [r for r in live if r not in doomed_set]
        if self._garbage * 2 > len(arena):
            self._compact_arena()

    def _compact_arena(self) -> None:
        """Slide live clauses down over the dead ones.

        Runs only when dead clauses hold more than half the arena, so the
        amortized cost per deleted clause is O(1) words; the existing
        watcher lists are remapped in place (stale refs fall out here)
        and reasons are fixed with a single trail walk -- no watch-table
        rebuild.
        """
        old = self._arena
        new = array("i")
        remap = {}
        i = 0
        n = len(old)
        while i < n:
            size = old[i]
            span = _HDR + size
            if not old[i + 1] & _DEAD:
                remap[i] = len(new)
                new.extend(old[i : i + span])
            i += span
        self._arena = new
        self._garbage = 0
        for wl in self._watches:
            if wl:
                wl[:] = [remap[r] for r in wl if r in remap]
        reason = self._reason
        for e in self._trail:
            var = e >> 1
            ref = reason[var]
            if ref >= 0:
                reason[var] = remap[ref]
        self._learned_refs = [remap[r] for r in self._learned_refs]

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> SolveResult:
        """Solve the formula, optionally under assumptions.

        Semantics match :meth:`repro.sat.solver.Solver.solve` exactly
        (assumption failure returns UNSAT without spoiling the solver;
        :class:`BudgetExhausted` raises at ``>= conflict_budget``
        conflicts).  Additionally, the seated-assumption prefix shared
        with the previous call is *reused*: its propagated trail segment
        is kept instead of being re-derived, which is what makes many
        gated queries against one large shared clause DB cheap.
        """
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._restarts = 0
        self._solve_id += 1
        if not self._ok:
            return SolveResult(False)
        enc_assumps: List[int] = []
        for lit in assumptions:
            self.ensure_var(abs(lit))
            enc_assumps.append(
                (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            )

        # Trail saving: keep the decision levels whose seated assumptions
        # match this call's prefix; everything above is unwound.
        seated = self._seated
        keep = 0
        limit = min(len(seated), len(enc_assumps))
        while keep < limit and seated[keep] == enc_assumps[keep]:
            keep += 1
        self._cancel_until(keep)

        progress = get_progress()
        sample_every = progress.interval if progress.enabled else 0
        solve_started = time.perf_counter() if sample_every else 0.0

        max_learnts = max(100, self._num_clauses // 3)
        restart_idx = 1
        conflicts_until_restart = 32 * _luby(restart_idx)
        conflicts_this_restart = 0
        value = self._value

        try:
            while True:
                conflict = self._propagate()
                if conflict >= 0:
                    self._conflicts += 1
                    conflicts_this_restart += 1
                    if sample_every and self._conflicts % sample_every == 0:
                        progress.publish(
                            self._progress_snapshot(
                                solve_started, conflict_budget
                            )
                        )
                    if (
                        conflict_budget is not None
                        and self._conflicts >= conflict_budget
                    ):
                        self._publish_metrics("budget_exhausted")
                        raise BudgetExhausted(
                            self._conflicts,
                            decisions=self._decisions,
                            propagations=self._propagations,
                        )
                    if not self._trail_lim:
                        self._ok = False
                        return self._finish(False)
                    learnt, back_level, lbd = self._analyze(conflict)
                    self._cancel_until(back_level)
                    if len(learnt) == 1:
                        if not self._enqueue(learnt[0], -1):
                            self._ok = False
                            return self._finish(False)
                    else:
                        ref = self._attach(learnt, learned=True, lbd=lbd)
                        self._enqueue(learnt[0], ref)
                    self._var_inc /= self._var_decay
                    continue

                if self._learnt > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)

                if conflicts_this_restart >= conflicts_until_restart:
                    restart_idx += 1
                    conflicts_until_restart = 32 * _luby(restart_idx)
                    conflicts_this_restart = 0
                    self._restarts += 1
                    # Restart to the assumption prefix, not to the root:
                    # the seated assumptions and their propagations are
                    # exactly the state worth keeping.
                    self._cancel_until(len(self._seated))
                    continue

                # Seat any outstanding assumptions as pseudo-decisions.
                next_e = -1
                is_assumption = False
                while len(self._trail_lim) < len(enc_assumps):
                    e = enc_assumps[len(self._trail_lim)]
                    val = value[e]
                    if val == _TRUE:
                        self._trail_lim.append(len(self._trail))
                        self._seated.append(e)
                        continue
                    if val == _FALSE:
                        return self._finish(False)
                    next_e = e
                    is_assumption = True
                    break
                if next_e < 0:
                    var = self._pick_branch_var()
                    if var is None:
                        return self._finish(True)
                    next_e = (var << 1) | (1 - self._phase[var])
                self._decisions += 1
                self._trail_lim.append(len(self._trail))
                if is_assumption:
                    self._seated.append(next_e)
                self._enqueue(next_e, -1)
        finally:
            if sample_every:
                progress.publish(
                    self._progress_snapshot(solve_started, conflict_budget)
                )
            # Unwind to the seated-assumption prefix (not to the root):
            # every exit path -- SAT, UNSAT, assumption failure, and a
            # BudgetExhausted raise -- leaves the solver consistent and
            # the shared prefix warm for the next query.
            self._cancel_until(len(self._seated))

    # ------------------------------------------------------------------
    def _progress_snapshot(
        self, solve_started: float, conflict_budget: Optional[int]
    ) -> ProgressSnapshot:
        elapsed = time.perf_counter() - solve_started
        return ProgressSnapshot(
            ts=time.time(),
            pid=os.getpid(),
            solve_id=self._solve_id,
            conflicts=self._conflicts,
            decisions=self._decisions,
            propagations=self._propagations,
            restarts=self._restarts,
            learned=self._learnt,
            trail=len(self._trail),
            conflicts_per_sec=(
                self._conflicts / elapsed if elapsed > 0 else 0.0
            ),
            budget_remaining=(
                conflict_budget - self._conflicts
                if conflict_budget is not None
                else None
            ),
        )

    def _publish_metrics(self, outcome: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("sat.solver_calls").inc()
            metrics.counter(f"sat.calls.{self.backend_name}").inc()
            metrics.counter("sat.conflicts").inc(self._conflicts)
            metrics.counter("sat.decisions").inc(self._decisions)
            metrics.counter("sat.propagations").inc(self._propagations)
            metrics.counter("sat.restarts").inc(self._restarts)
            metrics.counter(f"sat.results.{outcome}").inc()

    def _finish(self, sat: bool) -> SolveResult:
        model: Optional[Model] = None
        if sat:
            model = Model(
                {e >> 1: not e & 1 for e in self._trail}
            )
        self._cancel_until(len(self._seated))
        self._publish_metrics("sat" if sat else "unsat")
        return SolveResult(
            satisfiable=sat,
            model=model,
            conflicts=self._conflicts,
            decisions=self._decisions,
            propagations=self._propagations,
            restarts=self._restarts,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return self._num_clauses

    @property
    def num_learnt(self) -> int:
        """Learned (conflict-derived) clauses currently in the database."""
        return self._learnt

    @property
    def ok(self) -> bool:
        """False once the clause set is known unsatisfiable outright."""
        return self._ok

    @property
    def saved_trail_depth(self) -> int:
        """Assumption levels currently kept warm between queries."""
        return len(self._seated)

    def root_value(self, var: int) -> Optional[bool]:
        """The variable's value when fixed at decision level 0, else None.

        Root assignments only ever grow, so a returned value is permanent:
        callers may strip the corresponding falsified literal from clauses
        they are about to add (the stripped clause is equivalent).
        """
        if var > self._num_vars:
            return None
        val = self._value[var << 1]
        if val != _UNDEF and self._level[var] == 0:
            return val == _TRUE
        return None
