"""DidFail (Klieber et al., SOAP 2014) comparison profile.

DidFail composes FlowDroid per-app taint results through Epicc's Intent
summaries.  Documented limitations reproduced here (Sections VII.A and
VIII of the paper):

- Epicc does not model the data *scheme*, so inter-component path matching
  is scheme-blind (imprecision: decoy components connect);
- only implicit-Intent flows are connected ("DidFail found only the
  vulnerabilities caused by implicit Intents, missing the vulnerabilities
  that are due to explicit Intents");
- no bound-service / result-channel flows and no Content Providers;
- no framework-entry reachability pruning of the per-component analysis,
  so leaks in dead code are reported (false warnings on DroidBench's
  unreachable cases).
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.android.apk import Apk
from repro.baselines.common import (
    AnalysisTool,
    LeakCompositionProfile,
    LeakPair,
    compose_leaks,
)
from repro.statics.extractor import ModelExtractor
from repro.core.model import BundleModel

_PROFILE = LeakCompositionProfile(
    implicit_only=True,
    use_scheme_test=False,
    include_result_channels=False,
    include_providers=False,
)


class DidFail(AnalysisTool):
    name = "DidFail"

    def find_leaks(self, apks: Sequence[Apk]) -> Set[LeakPair]:
        extractor = ModelExtractor(reachability_pruning=False)
        bundle = BundleModel(apps=[extractor.extract(apk) for apk in apks])
        return compose_leaks(bundle, _PROFILE)
