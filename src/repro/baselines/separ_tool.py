"""SEPAR wrapped in the Table-I tool interface.

Uses the real AME extraction (entry-point-rooted, reachability-pruned, no
dynamic-receiver handling -- the published prototype's behavior) and the
full leak composition: explicit and implicit Intents, scheme-aware
matching, result channels, and Content Providers.
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.android.apk import Apk
from repro.baselines.common import (
    AnalysisTool,
    FULL_PROFILE,
    LeakPair,
    compose_leaks,
)
from repro.statics.extractor import extract_bundle


class SeparTool(AnalysisTool):
    name = "SEPAR"

    def __init__(self, handle_dynamic_receivers: bool = False) -> None:
        # The extension flag exists for the ablation benchmark; the
        # published prototype runs with it off.
        self.handle_dynamic_receivers = handle_dynamic_receivers

    def find_leaks(self, apks: Sequence[Apk]) -> Set[LeakPair]:
        bundle = extract_bundle(
            list(apks), handle_dynamic_receivers=self.handle_dynamic_receivers
        )
        return compose_leaks(bundle, FULL_PROFILE)
