"""Comparison tools for the Table I evaluation.

Each baseline re-implements the *documented* capability profile of a
published analyzer over this reproduction's IR (see DESIGN.md's
substitution table): the comparison then measures exactly the capability
differences the paper attributes the accuracy gap to.
"""

from repro.baselines.common import (
    AnalysisTool,
    LeakCompositionProfile,
    compose_leaks,
)
from repro.baselines.didfail import DidFail
from repro.baselines.amandroid import AmanDroid
from repro.baselines.covert import Covert
from repro.baselines.separ_tool import SeparTool

__all__ = [
    "AnalysisTool",
    "LeakCompositionProfile",
    "compose_leaks",
    "DidFail",
    "AmanDroid",
    "Covert",
    "SeparTool",
]
