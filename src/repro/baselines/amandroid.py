"""AmanDroid (Wei et al., CCS 2014) comparison profile.

AmanDroid builds a precise inter-component data-flow graph per app.
Documented limitations reproduced here:

- no Content Provider analysis ("unable to examine Content Providers for
  security analysis");
- no complicated ICC methods: bound services and
  ``startActivityForResult`` result channels are not connected;
- per-app analysis only: the three DroidBench IAC (inter-app) rows are
  missed;
- dynamically registered Broadcast Receivers *are* modeled when the filter
  is resolvable by constant propagation (ICC-Bench DynRegisteredReceiver1).
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.android.apk import Apk
from repro.baselines.common import (
    AnalysisTool,
    LeakCompositionProfile,
    LeakPair,
    compose_leaks,
)
from repro.core.model import BundleModel
from repro.statics.extractor import ModelExtractor

_PROFILE = LeakCompositionProfile(
    include_result_channels=False,
    include_providers=False,
    intra_app_only=True,
)


class AmanDroid(AnalysisTool):
    name = "AmanDroid"

    def find_leaks(self, apks: Sequence[Apk]) -> Set[LeakPair]:
        extractor = ModelExtractor(handle_dynamic_receivers=True)
        bundle = BundleModel(apps=[extractor.extract(apk) for apk in apks])
        return compose_leaks(bundle, _PROFILE)
