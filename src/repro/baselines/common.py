"""Shared leak-composition machinery for the comparison tools.

Each baseline is characterized by a :class:`LeakCompositionProfile`
encoding its documented capabilities and blind spots; composition itself
(pairing taint-carrying Intents with ICC-rooted sink paths across
components) is shared.  This keeps the baselines honest: they differ from
SEPAR exactly where the literature says they do, not in incidental
implementation details.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from repro.android.apk import Apk
from repro.android.components import ComponentKind
from repro.android.intents import Intent as RtIntent
from repro.android.intents import (
    action_test,
    category_test,
    data_test,
)
from repro.android.intents import IntentFilter as RtFilter
from repro.android.resources import Resource
from repro.core.detector import PUBLIC_SINKS, SENSITIVE_SOURCES
from repro.core.model import BundleModel, ComponentModel, IntentModel

LeakPair = Tuple[str, str]


@dataclass(frozen=True)
class LeakCompositionProfile:
    """Capability switches for a leak-composition pass."""

    implicit_only: bool = False  # cannot connect explicit Intents (Epicc gap)
    use_scheme_test: bool = True  # False: data-scheme-blind matching
    include_result_channels: bool = True  # bindService / setResult flows
    include_providers: bool = True  # ContentResolver flows
    intra_app_only: bool = False  # cannot compose across apps


FULL_PROFILE = LeakCompositionProfile()


def _filter_matches(
    intent: RtIntent, filt: RtFilter, use_scheme_test: bool
) -> bool:
    if not action_test(intent, filt) or not category_test(intent, filt):
        return False
    if use_scheme_test:
        return data_test(intent, filt)
    # Scheme-blind: only the MIME half of the data test survives.
    if intent.data_type is not None:
        return any(
            p == "*/*" or p == intent.data_type for p in filt.data_types
        ) or not filt.data_types
    return True


def _deliverable(
    intent: IntentModel,
    sender: ComponentModel,
    receiver: ComponentModel,
    profile: LeakCompositionProfile,
) -> bool:
    same_app = sender.app == receiver.app
    if profile.intra_app_only and not same_app:
        return False
    if not receiver.exported and not same_app:
        return False
    if intent.passive:
        return (
            profile.include_result_channels
            and receiver.name in intent.passive_targets
        )
    if intent.explicit:
        if profile.implicit_only:
            return False
        return intent.target == receiver.name
    rt_intent = RtIntent(
        sender=intent.sender,
        action=intent.action,
        categories=intent.categories,
        data_type=intent.data_type,
        data_scheme=intent.data_scheme,
    )
    for filt in receiver.intent_filters:
        if not filt.actions:
            continue
        rt_filter = RtFilter(
            actions=frozenset(filt.actions),
            categories=frozenset(filt.categories),
            data_types=frozenset(filt.data_types),
            data_schemes=frozenset(filt.data_schemes),
        )
        if _filter_matches(rt_intent, rt_filter, profile.use_scheme_test):
            return True
    return False


def compose_leaks(
    bundle: BundleModel, profile: LeakCompositionProfile
) -> Set[LeakPair]:
    """All (source component, sink component) leak pairs the profile sees."""
    components = bundle.all_components()
    by_name = {c.name: c for c in components}
    relays = [
        c
        for c in components
        if any(
            p.source is Resource.ICC and p.sink in PUBLIC_SINKS for p in c.paths
        )
    ]
    pairs: Set[LeakPair] = set()
    for intent in bundle.all_intents():
        if not profile.include_result_channels and (
            intent.passive or intent.wants_result
        ):
            continue
        if not intent.extras & SENSITIVE_SOURCES:
            continue
        sender = by_name.get(intent.sender)
        if sender is None:
            continue
        for relay in relays:
            if relay.name == intent.sender:
                continue
            if _deliverable(intent, sender, relay, profile):
                pairs.add((intent.sender, relay.name))
    if profile.include_providers:
        providers = [
            c for c in components if c.kind is ComponentKind.PROVIDER
        ]
        for app in bundle.apps:
            for access in app.provider_accesses:
                if not access.payload & SENSITIVE_SOURCES:
                    continue
                sender = by_name.get(access.sender)
                if sender is None:
                    continue
                for provider in providers:
                    if profile.intra_app_only and provider.app != sender.app:
                        continue
                    if provider.authority is not None and access.authority not in (
                        None,
                        provider.authority,
                    ):
                        continue
                    if not provider.exported and provider.app != sender.app:
                        continue
                    if any(
                        p.source is Resource.ICC and p.sink in PUBLIC_SINKS
                        for p in provider.paths
                    ):
                        pairs.add((access.sender, provider.name))
    return pairs


class AnalysisTool(abc.ABC):
    """A leak-detection tool under Table-I comparison."""

    name: str = "abstract"

    @abc.abstractmethod
    def find_leaks(self, apks: Sequence[Apk]) -> Set[LeakPair]:
        """Analyze a bundle of APKs and report leak pairs."""
