"""COVERT (Bagheri et al., TSE 2015) comparison profile.

COVERT performs compositional analysis of inter-app *permission leakage*
only -- it cannot detect the information-leak vulnerabilities DroidBench
and ICC-Bench consist of, which is why the paper excludes it from Table I.
It is included here for completeness: ``find_escalations`` reproduces its
privilege-escalation detection, and ``find_leaks`` returns the empty set
(its Table-I behavior by construction).
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.android.apk import Apk
from repro.baselines.common import AnalysisTool, LeakPair
from repro.core.detector import SeparDetector
from repro.statics.extractor import extract_bundle


class Covert(AnalysisTool):
    name = "COVERT"

    def find_leaks(self, apks: Sequence[Apk]) -> Set[LeakPair]:
        return set()  # information leaks are outside COVERT's scope

    def find_escalations(self, apks: Sequence[Apk]) -> Set[str]:
        """Components leaking permission-guarded capabilities."""
        bundle = extract_bundle(list(apks))
        report = SeparDetector().detect(bundle)
        return report.components("privilege_escalation")
