"""Observability: tracing spans, metrics, progress telemetry, exporters.

Four pillars, all zero-cost when disabled:

- :mod:`repro.obs.trace` -- nestable wall-clock spans emitted as JSONL
  events.  The global tracer defaults to a no-op; enable it with
  :func:`enable_tracing` (or the ``REPRO_TRACE`` environment variable,
  which worker processes inherit so spans from a parallel pipeline run
  land in the same file).
- :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  histograms that the SAT solver, the static analyses, the cache and the
  pipeline executor publish into.  Defaults to a no-op registry; enable
  with :func:`enable_metrics`.
- :mod:`repro.obs.progress` -- live solver progress snapshots published
  into a lock-free ring buffer and (through the tracer) as heartbeat
  lines in the trace file, tailed by :class:`HeartbeatMonitor` for the
  ``repro pipeline --watch`` view.  Defaults to a no-op bus; enable with
  :func:`enable_progress` (or ``REPRO_PROGRESS``).
- :mod:`repro.obs.view` / :mod:`repro.obs.export` -- rendering and
  standard-format export: span trees and hotspot tables for ``repro
  trace``, Chrome trace-event JSON for Perfetto, Prometheus text
  exposition for scrapers.

Instrumentation never feeds cache keys (tracer/registry state is not part
of any content hash) and never touches analysis outputs, so enabling or
disabling observability cannot perturb the byte-identical serial/parallel
guarantee or invalidate cached pipeline entries.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    chrome_trace,
    make_metrics_server,
    render_prometheus,
    sanitize_metric_name,
    write_chrome_trace,
)
from repro.obs.metrics import (
    METRICS_ENV,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.progress import (
    DEFAULT_INTERVAL,
    NULL_PROGRESS,
    PROGRESS_ENV,
    HeartbeatMonitor,
    NullProgressBus,
    ProgressBus,
    ProgressRing,
    ProgressSnapshot,
    enable_progress,
    get_progress,
    set_progress,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_ENV,
    InMemoryTracer,
    JsonlTracer,
    NullTracer,
    SpanRecord,
    Tracer,
    enable_tracing,
    get_tracer,
    read_events,
    read_trace,
    set_tracer,
    span,
)
from repro.obs.view import aggregate_spans, render_hotspots, render_span_tree

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL",
    "Gauge",
    "HeartbeatMonitor",
    "Histogram",
    "InMemoryTracer",
    "JsonlTracer",
    "METRICS_ENV",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullProgressBus",
    "NullTracer",
    "PROGRESS_ENV",
    "PROMETHEUS_CONTENT_TYPE",
    "ProgressBus",
    "ProgressRing",
    "ProgressSnapshot",
    "SpanRecord",
    "TRACE_ENV",
    "Tracer",
    "aggregate_spans",
    "chrome_trace",
    "enable_metrics",
    "enable_progress",
    "enable_tracing",
    "get_metrics",
    "get_progress",
    "get_tracer",
    "make_metrics_server",
    "read_events",
    "read_trace",
    "render_hotspots",
    "render_prometheus",
    "render_span_tree",
    "sanitize_metric_name",
    "set_metrics",
    "set_progress",
    "set_tracer",
    "span",
    "write_chrome_trace",
]
