"""Observability: tracing spans, metrics, progress telemetry, exporters.

Four pillars, all zero-cost when disabled:

- :mod:`repro.obs.trace` -- nestable wall-clock spans emitted as JSONL
  events.  The global tracer defaults to a no-op; enable it with
  :func:`enable_tracing` (or the ``REPRO_TRACE`` environment variable,
  which worker processes inherit so spans from a parallel pipeline run
  land in the same file).
- :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  histograms that the SAT solver, the static analyses, the cache and the
  pipeline executor publish into.  Defaults to a no-op registry; enable
  with :func:`enable_metrics`.
- :mod:`repro.obs.progress` -- live solver progress snapshots published
  into a lock-free ring buffer and (through the tracer) as heartbeat
  lines in the trace file, tailed by :class:`HeartbeatMonitor` for the
  ``repro pipeline --watch`` view.  Defaults to a no-op bus; enable with
  :func:`enable_progress` (or ``REPRO_PROGRESS``).
- :mod:`repro.obs.view` / :mod:`repro.obs.export` -- rendering and
  standard-format export: span trees and hotspot tables for ``repro
  trace``, Chrome trace-event JSON for Perfetto, Prometheus text
  exposition for scrapers.

A fifth pillar rides on the tracer's trace ids: :mod:`repro.obs.cost`,
a ledger attributing metered work (solver conflicts, cache traffic, PDP
cache hits, wall-clock) to ``(trace_id, device, bundle, signature)``
accounts.  Defaults to a no-op; enable with :func:`enable_cost_ledger`.

Instrumentation never feeds cache keys (tracer/registry/ledger state is
not part of any content hash) and never touches analysis outputs, so
enabling or disabling observability cannot perturb the byte-identical
serial/parallel guarantee or invalidate cached pipeline entries.
"""

from repro.obs.cost import (
    COST_FIELDS,
    NULL_COST_LEDGER,
    CostKey,
    CostLedger,
    NullCostLedger,
    enable_cost_ledger,
    get_cost_ledger,
    set_cost_ledger,
)
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    chrome_trace,
    cost_metrics_snapshot,
    make_metrics_server,
    render_prometheus,
    sanitize_metric_name,
    write_chrome_trace,
)
from repro.obs.metrics import (
    METRICS_ENV,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.progress import (
    DEFAULT_INTERVAL,
    NULL_PROGRESS,
    PROGRESS_ENV,
    HeartbeatMonitor,
    NullProgressBus,
    ProgressBus,
    ProgressRing,
    ProgressSnapshot,
    enable_progress,
    get_progress,
    set_progress,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_ENV,
    InMemoryTracer,
    JsonlTracer,
    NullTracer,
    SpanRecord,
    TraceContext,
    Tracer,
    adopt_trace_context,
    current_trace_context,
    current_trace_id,
    enable_tracing,
    get_tracer,
    new_trace_id,
    read_events,
    read_trace,
    set_tracer,
    span,
)
from repro.obs.view import aggregate_spans, render_hotspots, render_span_tree

__all__ = [
    "COST_FIELDS",
    "CostKey",
    "CostLedger",
    "Counter",
    "DEFAULT_INTERVAL",
    "Gauge",
    "HeartbeatMonitor",
    "Histogram",
    "InMemoryTracer",
    "JsonlTracer",
    "METRICS_ENV",
    "MetricsRegistry",
    "NULL_COST_LEDGER",
    "NULL_METRICS",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullCostLedger",
    "NullMetricsRegistry",
    "NullProgressBus",
    "NullTracer",
    "PROGRESS_ENV",
    "PROMETHEUS_CONTENT_TYPE",
    "ProgressBus",
    "ProgressRing",
    "ProgressSnapshot",
    "SpanRecord",
    "TRACE_ENV",
    "TraceContext",
    "Tracer",
    "adopt_trace_context",
    "aggregate_spans",
    "chrome_trace",
    "cost_metrics_snapshot",
    "current_trace_context",
    "current_trace_id",
    "enable_cost_ledger",
    "enable_metrics",
    "enable_progress",
    "enable_tracing",
    "get_cost_ledger",
    "get_metrics",
    "get_progress",
    "get_tracer",
    "make_metrics_server",
    "new_trace_id",
    "read_events",
    "read_trace",
    "render_hotspots",
    "render_prometheus",
    "render_span_tree",
    "sanitize_metric_name",
    "set_cost_ledger",
    "set_metrics",
    "set_progress",
    "set_tracer",
    "span",
    "write_chrome_trace",
]
