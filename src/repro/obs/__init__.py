"""Observability: tracing spans, a metrics registry, trace rendering.

Three pillars, all zero-cost when disabled:

- :mod:`repro.obs.trace` -- nestable wall-clock spans emitted as JSONL
  events.  The global tracer defaults to a no-op; enable it with
  :func:`enable_tracing` (or the ``REPRO_TRACE`` environment variable,
  which worker processes inherit so spans from a parallel pipeline run
  land in the same file).
- :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  histograms that the SAT solver, the static analyses, the cache and the
  pipeline executor publish into.  Defaults to a no-op registry; enable
  with :func:`enable_metrics`.
- :mod:`repro.obs.view` -- span-tree and hotspot rendering for the
  ``repro trace`` CLI subcommand, plus the aggregation rolled into
  :class:`~repro.pipeline.stats.RunReport`.

Instrumentation never feeds cache keys (tracer/registry state is not part
of any content hash) and never touches analysis outputs, so enabling or
disabling observability cannot perturb the byte-identical serial/parallel
guarantee or invalidate cached pipeline entries.
"""

from repro.obs.metrics import (
    METRICS_ENV,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_ENV,
    InMemoryTracer,
    JsonlTracer,
    NullTracer,
    SpanRecord,
    Tracer,
    enable_tracing,
    get_tracer,
    read_trace,
    set_tracer,
    span,
)
from repro.obs.view import aggregate_spans, render_hotspots, render_span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryTracer",
    "JsonlTracer",
    "METRICS_ENV",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "SpanRecord",
    "TRACE_ENV",
    "Tracer",
    "aggregate_spans",
    "enable_metrics",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "read_trace",
    "render_hotspots",
    "render_span_tree",
    "set_metrics",
    "set_tracer",
    "span",
]
