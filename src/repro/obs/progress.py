"""Live solver progress telemetry: snapshots, ring buffer, heartbeats.

A long CDCL solve is opaque from the outside: the pipeline's timeout
machinery can kill it, but cannot tell a solver that is *stuck* (no
conflicts happening, e.g. hung I/O) from one that is *slow* (conflicts
ticking away on a hard instance).  This module gives the solver a place
to publish periodic :class:`ProgressSnapshot`\\ s -- conflicts, rates,
restarts, learned-DB size, trail depth, budget headroom -- and gives
observers two ways to read them:

- in-process, through a lock-free :class:`ProgressRing` (single writer --
  the solving thread -- many readers; readers may miss overwritten
  entries but never block the solver);
- across process boundaries, as ``{"event": "progress", ...}`` heartbeat
  lines appended to the active JSONL trace file (the same ``O_APPEND``
  channel pipeline worker spans use), which :class:`HeartbeatMonitor`
  tails for the ``repro pipeline --watch`` live view.

Publication is governed by the global :class:`ProgressBus`.  The default
bus is :data:`NULL_PROGRESS`: disabled, interval ``0``, publishing
nothing -- the solver's only cost is one integer test per conflict.
Enable with :func:`enable_progress` or the ``REPRO_PROGRESS`` environment
variable (the sampling interval in conflicts; pipeline workers inherit
it, so their solves heartbeat into the shared trace file too).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import current_trace_context, get_tracer

#: Environment variable activating progress publication.  Its value is the
#: sampling interval in conflicts ("1" or a bare truthy value means the
#: default interval).  Worker processes inherit it from the parent.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Sample every this-many conflicts unless configured otherwise: frequent
#: enough to watch a live solve, rare enough to cost nothing measurable.
DEFAULT_INTERVAL = 256


@dataclass
class ProgressSnapshot:
    """One point-in-time view of a running (or just-finished) solve."""

    ts: float  # epoch seconds at publication
    pid: int
    solve_id: int  # per-solver-instance solve() call counter
    conflicts: int
    decisions: int
    propagations: int
    restarts: int
    learned: int  # learned clauses currently in the database
    trail: int  # current assignment trail depth
    conflicts_per_sec: float
    budget_remaining: Optional[int] = None  # None = unbudgeted solve

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": "progress",
            "ts": self.ts,
            "pid": self.pid,
            "solve_id": self.solve_id,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": self.learned,
            "trail": self.trail,
            "conflicts_per_sec": self.conflicts_per_sec,
            "budget_remaining": self.budget_remaining,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ProgressSnapshot":
        return ProgressSnapshot(
            ts=data.get("ts", 0.0),
            pid=data.get("pid", 0),
            solve_id=data.get("solve_id", 0),
            conflicts=data.get("conflicts", 0),
            decisions=data.get("decisions", 0),
            propagations=data.get("propagations", 0),
            restarts=data.get("restarts", 0),
            learned=data.get("learned", 0),
            trail=data.get("trail", 0),
            conflicts_per_sec=data.get("conflicts_per_sec", 0.0),
            budget_remaining=data.get("budget_remaining"),
        )


class ProgressRing:
    """A fixed-capacity, lock-free publish ring (single writer).

    The writer stores into ``items[seq % capacity]`` and then advances
    ``seq``; both are plain attribute operations, atomic under the GIL, so
    the solving thread never takes a lock.  Readers snapshot ``seq`` first
    and accept that entries more than ``capacity`` behind it have been
    overwritten -- :meth:`read_since` reports how many were dropped
    instead of pretending completeness.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self._items: List[Optional[ProgressSnapshot]] = [None] * capacity
        self._seq = 0  # next sequence number to be written

    @property
    def capacity(self) -> int:
        return len(self._items)

    @property
    def seq(self) -> int:
        """Total snapshots ever published (monotone)."""
        return self._seq

    def publish(self, item: ProgressSnapshot) -> None:
        seq = self._seq
        self._items[seq % len(self._items)] = item
        # The store above must be visible before the sequence advances;
        # CPython's GIL orders these two statements for every reader.
        self._seq = seq + 1

    def latest(self) -> Optional[ProgressSnapshot]:
        seq = self._seq
        if seq == 0:
            return None
        return self._items[(seq - 1) % len(self._items)]

    def read_since(
        self, cursor: int
    ) -> Tuple[int, int, List[ProgressSnapshot]]:
        """Entries published at sequence >= ``cursor``.

        Returns ``(new_cursor, dropped, items)``: pass ``new_cursor`` to
        the next call; ``dropped`` counts entries overwritten before this
        reader got to them (0 when keeping up).  Items are oldest-first.
        """
        seq = self._seq
        if cursor >= seq:
            return seq, 0, []
        capacity = len(self._items)
        oldest = max(cursor, seq - capacity)
        dropped = oldest - cursor
        items = []
        for i in range(oldest, seq):
            item = self._items[i % capacity]
            if item is not None:
                items.append(item)
        return seq, dropped, items


class ProgressBus:
    """The publication fan-out: ring buffer + heartbeat events.

    ``interval`` is the sampling period in conflicts; the solver consults
    it once per :meth:`~repro.sat.solver.Solver.solve` call.  Each
    published snapshot lands in the in-process ring and -- when the active
    tracer persists events (a ``JsonlTracer``) -- as one heartbeat line in
    the trace file, where cross-process observers can tail it.
    """

    enabled = True

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        capacity: int = 256,
        emit_events: bool = True,
    ) -> None:
        self.interval = max(1, int(interval))
        self.ring = ProgressRing(capacity)
        self.emit_events = emit_events

    def publish(self, snapshot: ProgressSnapshot) -> None:
        self.ring.publish(snapshot)
        if self.emit_events:
            payload = snapshot.to_dict()
            # Tag heartbeats with the ambient trace context so a watcher
            # can attribute a worker's solve to the run/request (and the
            # dispatch span) that caused it.
            ctx = current_trace_context()
            if ctx is not None:
                payload["trace_id"] = ctx.trace_id
                if ctx.span_id is not None:
                    payload["span_id"] = ctx.span_id
            get_tracer().emit_event(payload)


class NullProgressBus(ProgressBus):
    """The disabled bus: interval 0, publishes nothing, allocates nothing."""

    enabled = False
    interval = 0

    def __init__(self) -> None:
        pass

    def publish(self, snapshot: ProgressSnapshot) -> None:
        return None


NULL_PROGRESS = NullProgressBus()
_progress: ProgressBus = NULL_PROGRESS


def _interval_from_env(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        return DEFAULT_INTERVAL
    return parsed if parsed > 0 else DEFAULT_INTERVAL


# Worker processes inherit REPRO_PROGRESS from the parent; activating here
# at import means their solves heartbeat without explicit plumbing through
# the process pool (same pattern as REPRO_TRACE / REPRO_METRICS).
_env_value = os.environ.get(PROGRESS_ENV)
if _env_value:
    _progress = ProgressBus(interval=_interval_from_env(_env_value))
del _env_value


def get_progress() -> ProgressBus:
    return _progress


def set_progress(bus: ProgressBus) -> ProgressBus:
    """Install ``bus`` globally; returns the previous bus."""
    global _progress
    previous = _progress
    _progress = bus
    return previous


def enable_progress(interval: int = DEFAULT_INTERVAL) -> ProgressBus:
    """Install (and return) a live progress bus, here and in pipeline
    worker processes (via the environment)."""
    bus = ProgressBus(interval=interval)
    set_progress(bus)
    os.environ[PROGRESS_ENV] = str(bus.interval)
    return bus


# ----------------------------------------------------------------------
# Cross-process heartbeat tailing


def _format_heartbeat(snap: ProgressSnapshot) -> str:
    budget = (
        f" budget={snap.budget_remaining}"
        if snap.budget_remaining is not None
        else ""
    )
    return (
        f"pid {snap.pid} solve#{snap.solve_id}: "
        f"{snap.conflicts} conflicts ({snap.conflicts_per_sec:,.0f}/s), "
        f"{snap.decisions} decisions, {snap.restarts} restarts, "
        f"learned={snap.learned}, trail={snap.trail}{budget}"
    )


class HeartbeatMonitor:
    """Tails a JSONL trace file for solver heartbeats across processes.

    Because heartbeat lines ride the ``O_APPEND`` trace channel, this
    works for serial runs and process-pool workers alike.  Each freshly
    observed snapshot is logged at INFO on ``logger``; a pid that has
    heartbeated before but then goes silent for ``stall_after`` seconds is
    flagged at WARNING -- the live distinction between a *slow* solve
    (heartbeats keep coming) and a *stuck* one (they stop while the task
    is still running).  Stall detection is per *episode*: one warning when
    a pid goes silent, an INFO line when its heartbeats resume, and the
    warning re-arms so a worker that stalls again warns again
    (``stall_count`` counts the episodes).  ``poll()`` is synchronous and
    idempotent; ``start()``/``stop()`` run it on a daemon thread.
    """

    def __init__(
        self,
        path: str,
        stall_after: float = 10.0,
        poll_interval: float = 0.5,
        logger: Optional[logging.Logger] = None,
    ) -> None:
        self.path = str(path)
        self.stall_after = stall_after
        self.poll_interval = poll_interval
        self.logger = logger or logging.getLogger("repro.watch")
        self._offset = 0
        self._buffer = b""
        self._latest: Dict[int, ProgressSnapshot] = {}
        self._last_seen: Dict[int, float] = {}
        self._stalled: Dict[int, bool] = {}
        self._stall_count: Dict[int, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- observation state -------------------------------------------------
    def latest(self, pid: int) -> Optional[ProgressSnapshot]:
        return self._latest.get(pid)

    def pids(self) -> List[int]:
        return sorted(self._latest)

    def stalled_pids(self, now: Optional[float] = None) -> List[int]:
        now = time.monotonic() if now is None else now
        return sorted(
            pid
            for pid, seen in self._last_seen.items()
            if now - seen >= self.stall_after
        )

    def stall_count(self, pid: int) -> int:
        """How many distinct stall episodes ``pid`` has been flagged for."""
        return self._stall_count.get(pid, 0)

    # -- polling -----------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> List[ProgressSnapshot]:
        """Read newly appended heartbeat lines; returns the new snapshots."""
        fresh: List[ProgressSnapshot] = []
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return fresh
        self._offset += len(chunk)
        self._buffer += chunk
        # O_APPEND writes are whole lines, but a read may still land between
        # two writes -- keep any trailing partial line for the next poll.
        *lines, self._buffer = self._buffer.split(b"\n")
        now = time.monotonic() if now is None else now
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except ValueError:
                continue
            if data.get("event") != "progress":
                continue
            snap = ProgressSnapshot.from_dict(data)
            self._latest[snap.pid] = snap
            self._last_seen[snap.pid] = now
            if self._stalled.get(snap.pid):
                # End of a stall episode: say so, and re-arm the warning
                # so a second stall of the same pid warns again.
                self.logger.info(
                    "pid %d: heartbeats resumed after stall", snap.pid
                )
            self._stalled[snap.pid] = False
            fresh.append(snap)
            self.logger.info("%s", _format_heartbeat(snap))
        for pid in self.stalled_pids(now):
            if not self._stalled.get(pid):
                self._stalled[pid] = True
                self._stall_count[pid] = self._stall_count.get(pid, 0) + 1
                self.logger.warning(
                    "pid %d: no heartbeat for %.1fs (stuck, finished, or "
                    "killed -- check the run report)",
                    pid,
                    self.stall_after,
                )
        return fresh

    # -- background thread -------------------------------------------------
    def start(self) -> "HeartbeatMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.poll()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.poll()  # drain whatever arrived after the last tick
