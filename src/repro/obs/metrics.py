"""A process-local metrics registry: counters, gauges, histograms.

Instrumented subsystems publish here -- the SAT solver its
conflicts/decisions/propagations, the static analyses their CFG/call-graph
/taint sizes, the cache its hits and misses, the pipeline executor its
task counts.  The registry is thread-safe (instrument creation is locked;
updates touch per-instrument state under the GIL-atomic operations used
below) and process-local: pipeline worker processes collect into their
own registry and ship per-task :meth:`MetricsRegistry.snapshot` deltas
back with their results, which the parent folds in with
:meth:`MetricsRegistry.merge`.  Workers activate collection through the
``REPRO_METRICS`` environment variable (checked once at import), which
they inherit from the parent whether the pool forks or spawns.

The default registry is :data:`NULL_METRICS`: every instrument method is
a no-op on a shared singleton, so disabled instrumentation costs one
method call and records nothing.  Enable collection with
:func:`enable_metrics`.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment variable activating metrics collection; set before a run
#: (``enable_metrics`` does this) so pipeline worker processes collect too.
METRICS_ENV = "REPRO_METRICS"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


def _normalize_bounds(bounds: Optional[Iterable[float]]) -> Tuple[float, ...]:
    """Canonical bucket boundaries: sorted, deduplicated, floats."""
    if not bounds:
        return ()
    return tuple(sorted({float(b) for b in bounds}))


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    With ``bounds`` (sorted upper boundaries, Prometheus ``le`` semantics)
    the histogram additionally keeps per-interval bucket counts: bucket
    ``i`` counts values ``v <= bounds[i]`` (and ``> bounds[i-1]``); one
    extra overflow bucket counts values above the largest boundary.
    Without ``bounds`` only the streaming summary is kept and the
    serialized form is unchanged from earlier releases.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bounds",
                 "bucket_counts")

    def __init__(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds: Tuple[float, ...] = _normalize_bounds(bounds)
        self.bucket_counts: List[int] = (
            [0] * (len(self.bounds) + 1) if self.bounds else []
        )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.bounds:
            # bisect_left gives the first boundary >= value, i.e. the
            # smallest bucket whose ``le`` covers it; past-the-end is the
            # overflow bucket.
            self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending with
        ``(inf, count)``.  Empty when the histogram is unbucketed."""
        if not self.bounds:
            return []
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        if self.bounds:
            data["bounds"] = list(self.bounds)
            data["buckets"] = list(self.bucket_counts)
        return data


def _coarsen_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    new_bounds: Sequence[float],
) -> List[int]:
    """Re-bucket per-interval ``counts`` onto ``new_bounds``.

    Exact whenever ``new_bounds`` is a subset of ``bounds``: every old
    interval then fits inside exactly one new interval, so counts are
    summed, never split.
    """
    new_counts = [0] * (len(new_bounds) + 1)
    for i, n in enumerate(counts):
        if i < len(bounds):
            target = bisect_left(new_bounds, bounds[i])
        else:  # old overflow bucket joins the new overflow bucket
            target = len(new_bounds)
        new_counts[target] += n
    return new_counts


class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, factory(name))
        if not isinstance(instrument, (Counter, Gauge, Histogram)):
            raise TypeError(f"metric {name!r} already registered")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        """The named histogram, created with ``bounds`` on first use.

        Re-requesting an existing histogram with *different* explicit
        bounds is a programming error and raises ``ValueError`` --
        silently handing back an instrument with other boundaries would
        mis-bucket every subsequent observation.  Omitting ``bounds``
        always returns the existing instrument unchanged.
        """
        hist = self._get(name, lambda n: Histogram(n, bounds))
        if bounds is not None:
            wanted = _normalize_bounds(bounds)
            if hist.bounds != wanted:
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{hist.bounds}, not {wanted}"
                )
        return hist

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as a plain, JSON-ready, sorted dict."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.to_dict() for name, instrument in items}

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters and histogram sums add, min/max widen, gauges
        take the incoming value (last write wins).

        Bucketed histograms merge by boundary reconciliation.  Identical
        boundaries add element-wise; a fresh (never-observed) local
        histogram adopts the incoming boundaries wholesale.  When the two
        sides were created with *different* boundaries, both are coarsened
        -- exactly, since counts only ever sum across whole intervals --
        onto the intersection of the two boundary sets; an empty
        intersection widens the result all the way to an unbucketed
        summary (count/sum/min/max are always preserved).  Merging is
        therefore total: it degrades resolution, never raises and never
        invents counts.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data.get("value", 0))
            elif kind == "gauge":
                self.gauge(name).set(data.get("value", 0.0))
            elif kind == "histogram":
                hist = self.histogram(name)
                fresh = hist.count == 0 and not hist.bounds
                hist.count += data.get("count", 0)
                hist.total += data.get("sum", 0.0)
                for bound, widen in (("min", min), ("max", max)):
                    incoming = data.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(hist, bound)
                    setattr(
                        hist,
                        bound,
                        incoming if current is None else widen(current, incoming),
                    )
                in_bounds = _normalize_bounds(data.get("bounds"))
                in_counts = list(data.get("buckets", ()))
                if fresh and in_bounds:
                    hist.bounds = in_bounds
                    hist.bucket_counts = in_counts or [0] * (len(in_bounds) + 1)
                elif hist.bounds == in_bounds:
                    for i, n in enumerate(in_counts):
                        hist.bucket_counts[i] += n
                elif hist.bounds or in_bounds:
                    common = tuple(
                        b for b in hist.bounds if b in set(in_bounds)
                    )
                    if common:
                        ours = _coarsen_buckets(
                            hist.bounds, hist.bucket_counts, common
                        )
                        theirs = _coarsen_buckets(
                            in_bounds, in_counts, common
                        )
                        hist.bounds = common
                        hist.bucket_counts = [
                            a + b for a, b in zip(ours, theirs)
                        ]
                    else:
                        # Nothing shared: widen to the unbucketed summary.
                        hist.bounds = ()
                        hist.bucket_counts = []


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0
    bounds = ()
    bucket_counts: List[int] = []

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        return []

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: hands out one shared no-op instrument."""

    enabled = False

    def __init__(self) -> None:
        pass

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def reset(self) -> None:
        return None

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        return None


NULL_METRICS = NullMetricsRegistry()
_metrics: MetricsRegistry = NULL_METRICS

# Worker processes inherit REPRO_METRICS from the parent; activating here
# at import means spawn-mode workers (fresh interpreters) collect metrics
# without any explicit plumbing through the process pool.
if os.environ.get(METRICS_ENV):
    _metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous registry."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Install (and return) a fresh collecting registry, here and in
    pipeline worker processes."""
    return_value = MetricsRegistry()
    set_metrics(return_value)
    os.environ[METRICS_ENV] = "1"
    return return_value
