"""Exporters: span JSONL -> Chrome trace-event JSON, metrics -> Prometheus.

Two standard-tooling escapes from the repo-local observability formats:

- :func:`chrome_trace` converts span records (plus progress heartbeat
  events) into the Chrome trace-event JSON object format, loadable in
  Perfetto / ``chrome://tracing``.  Every traced process -- the
  orchestrator and each pipeline pool worker -- becomes its own pid track
  (named via ``process_name`` metadata events); solver heartbeats become
  counter (``"ph": "C"``) tracks so conflicts/sec, learned-DB size and
  trail depth render as graphs under the worker that produced them.
- :func:`render_prometheus` renders a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as Prometheus text
  exposition format (version 0.0.4): ``HELP``/``TYPE`` comment lines,
  sanitized metric names, counters suffixed ``_total``, bucketed
  histograms as cumulative ``_bucket{le="..."}`` series and unbucketed
  ones as summaries, with min/max surfaced as companion gauges.
- :func:`make_metrics_server` wraps a snapshot provider in a stdlib
  ``ThreadingHTTPServer`` serving ``GET /metrics`` for scrape-based
  monitoring -- no third-party client library involved.
"""

from __future__ import annotations

import json
import logging
import math
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import SpanRecord

#: Content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_METRIC_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


# ----------------------------------------------------------------------
# Chrome trace-event JSON


def _process_label(pid: int, root_names: Dict[int, List[str]]) -> str:
    """Human label for a pid track, derived from its root span names."""
    names = root_names.get(pid, [])
    if any(name == "pipeline.run" for name in names):
        return f"repro orchestrator (pid {pid})"
    return f"repro worker (pid {pid})"


#: Heartbeat fields rendered as Chrome counter tracks, in display order.
COUNTER_FIELDS = ("conflicts", "conflicts_per_sec", "learned", "trail")


def chrome_trace(
    spans: Sequence[SpanRecord],
    events: Iterable[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Convert spans + heartbeat events to a Chrome trace-event object.

    Completed spans become complete (``"X"``) events with microsecond
    timestamps; open spans (crashed workers) become begin (``"B"``) events
    with no matching end, which Perfetto renders as unfinished slices.
    ``events`` heartbeats (``{"event": "progress", ...}``) become counter
    tracks per pid.  All span events share ``tid`` 1 within a process --
    spans nest per thread by construction, and the pipeline's workers are
    single-threaded.
    """
    trace_events: List[Dict[str, Any]] = []
    root_names: Dict[int, List[str]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            root_names.setdefault(span.pid, []).append(span.name)

    pids = sorted({s.pid for s in spans})
    event_list = [e for e in events if e.get("event") == "progress"]
    pids = sorted(set(pids) | {e.get("pid", 0) for e in event_list})
    for index, pid in enumerate(pids):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": _process_label(pid, root_names)},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": index},
            }
        )

    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        base = {
            "name": span.name,
            "cat": "span",
            "ts": int(span.start * 1_000_000),
            "pid": span.pid,
            "tid": 1,
            "args": dict(span.attrs),
        }
        if span.open:
            trace_events.append({**base, "ph": "B"})
        else:
            trace_events.append(
                {**base, "ph": "X", "dur": max(0, int(span.seconds * 1_000_000))}
            )

    for event in event_list:
        ts = int(event.get("ts", 0.0) * 1_000_000)
        pid = event.get("pid", 0)
        for field in COUNTER_FIELDS:
            if field not in event:
                continue
            trace_events.append(
                {
                    "name": f"sat.{field}",
                    "cat": "solver",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {field: event[field]},
                }
            )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    spans: Sequence[SpanRecord],
    events: Iterable[Dict[str, Any]] = (),
) -> int:
    """Write :func:`chrome_trace` output to ``path``; returns event count."""
    trace = chrome_trace(spans, events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# Prometheus text exposition


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Map a registry metric name onto the Prometheus name grammar."""
    candidate = prefix + _METRIC_NAME_SANITIZE.sub("_", name)
    if not _METRIC_NAME_OK.match(candidate):  # e.g. empty name
        candidate = prefix + "invalid"
    return candidate


def escape_help(text: str) -> str:
    """Escape a HELP line: backslash and newline (exposition format)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double-quote, newline."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: Dict[str, Any]) -> str:
    """Render a label set as ``{k="v",...}`` with values escaped.

    The single place exposition labels are written, so quotes and
    backslashes in values (package names, device ids) can never break
    the output syntax.  Label *names* are sanitized onto the metric-name
    grammar; an empty label set renders as the empty string.
    """
    if not labels:
        return ""
    parts = []
    for name in sorted(labels):
        key = _METRIC_NAME_SANITIZE.sub("_", str(name)) or "invalid"
        parts.append(f'{key}="{escape_label_value(str(labels[name]))}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def render_prometheus(
    snapshot: Dict[str, Dict[str, Any]],
    help_texts: Optional[Dict[str, str]] = None,
    prefix: str = "repro_",
) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    Counters become ``<name>_total`` with ``TYPE counter``; gauges keep
    their name with ``TYPE gauge``; histograms with bucket boundaries
    become real Prometheus histograms (cumulative ``_bucket`` series with
    a ``+Inf`` bucket, plus ``_sum``/``_count``); unbucketed histograms
    become summaries.  Histogram min/max -- which the exposition format
    has no slot for -- are emitted as ``<name>_min``/``<name>_max``
    companion gauges.
    """
    help_texts = help_texts or {}
    lines: List[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        base = sanitize_metric_name(name, prefix=prefix)
        help_text = escape_help(
            help_texts.get(name, f"repro metric {name}")
        )
        if kind == "counter":
            full = base + "_total"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} counter")
            samples = data.get("samples")
            if samples is not None:
                for sample in samples:
                    labels = format_labels(sample.get("labels", {}))
                    value = _format_value(sample.get("value", 0))
                    lines.append(f"{full}{labels} {value}")
            else:
                lines.append(f"{full} {_format_value(data.get('value', 0))}")
        elif kind == "gauge":
            lines.append(f"# HELP {base} {help_text}")
            lines.append(f"# TYPE {base} gauge")
            samples = data.get("samples")
            if samples is not None:
                for sample in samples:
                    labels = format_labels(sample.get("labels", {}))
                    value = _format_value(sample.get("value", 0.0))
                    lines.append(f"{base}{labels} {value}")
            else:
                lines.append(
                    f"{base} {_format_value(data.get('value', 0.0))}"
                )
        elif kind == "histogram":
            bounds = list(data.get("bounds", ()))
            buckets = list(data.get("buckets", ()))
            count = data.get("count", 0)
            total = data.get("sum", 0.0)
            if bounds and buckets:
                lines.append(f"# HELP {base} {help_text}")
                lines.append(f"# TYPE {base} histogram")
                running = 0
                for bound, n in zip(bounds, buckets):
                    running += n
                    le = format_labels({"le": _format_le(float(bound))})
                    lines.append(f"{base}_bucket{le} {running}")
                # The +Inf bucket must equal _count by definition.
                overflow = running + (
                    buckets[len(bounds)] if len(buckets) > len(bounds) else 0
                )
                lines.append(f'{base}_bucket{{le="+Inf"}} {overflow}')
                lines.append(f"{base}_sum {_format_value(total)}")
                lines.append(f"{base}_count {overflow}")
            else:
                lines.append(f"# HELP {base} {help_text}")
                lines.append(f"# TYPE {base} summary")
                lines.append(f"{base}_sum {_format_value(total)}")
                lines.append(f"{base}_count {_format_value(count)}")
            for extremum in ("min", "max"):
                value = data.get(extremum)
                if value is None:
                    continue
                companion = f"{base}_{extremum}"
                lines.append(
                    f"# HELP {companion} {help_text} ({extremum})"
                )
                lines.append(f"# TYPE {companion} gauge")
                lines.append(f"{companion} {_format_value(value)}")
        # Unknown instrument kinds are skipped rather than emitting
        # malformed exposition lines.
    return "\n".join(lines) + ("\n" if lines else "")


#: Cost-ledger meters whose values are counts (exported as counters);
#: ``wall_seconds`` is also monotonic per account and exports the same way.
def cost_metrics_snapshot(
    entries: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Convert cost-ledger entries into a labeled metrics snapshot.

    Each ledger meter becomes one ``cost.<meter>`` counter whose samples
    carry the attribution key as labels, so :func:`render_prometheus`
    emits series like
    ``repro_cost_conflicts_total{bundle="...",device="...",signature="...",trace_id="..."}``.
    Merges cleanly into a registry snapshot -- ``cost.`` names cannot
    collide with instrument names, which never contain the ledger's
    attribution labels.
    """
    from repro.obs.cost import COST_FIELDS

    rows = list(entries)
    snapshot: Dict[str, Dict[str, Any]] = {}
    for meter in COST_FIELDS:
        samples = []
        for row in rows:
            value = row.get(meter, 0)
            if not value:
                continue
            samples.append(
                {
                    "labels": {
                        "trace_id": row.get("trace_id", ""),
                        "device": row.get("device", ""),
                        "bundle": row.get("bundle", ""),
                        "signature": row.get("signature", ""),
                    },
                    "value": value,
                }
            )
        if samples:
            snapshot[f"cost.{meter}"] = {"type": "counter", "samples": samples}
    return snapshot


# ----------------------------------------------------------------------
# Scrape endpoint (stdlib only)


def make_metrics_server(
    snapshot_provider: Callable[[], Dict[str, Dict[str, Any]]],
    host: str = "127.0.0.1",
    port: int = 9464,
) -> ThreadingHTTPServer:
    """An HTTP server whose ``GET /metrics`` renders the provider's
    snapshot as Prometheus text.  The caller owns the serve loop
    (``serve_forever`` / ``shutdown``); requests log at DEBUG only."""
    logger = logging.getLogger("repro.metrics.http")

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            if self.path.split("?")[0] not in ("/metrics", "/"):
                self.send_error(404, "try /metrics")
                return
            try:
                body = render_prometheus(snapshot_provider()).encode("utf-8")
            except Exception as exc:  # noqa: BLE001 - surface as HTTP 500
                self.send_error(500, f"snapshot failed: {exc}")
                return
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: Any) -> None:
            logger.debug("%s - %s", self.address_string(), format % args)

    return ThreadingHTTPServer((host, port), _Handler)
