"""Cost ledger: metered work attributed to who asked for it.

The metrics registry answers "how much work did this process do"; the
ledger answers "on whose behalf".  Every charge lands on a
``(trace_id, device, bundle, signature)`` key, so a served request, a
pipeline run, or a single signature inside a shared bundle each have an
auditable account of the solver conflicts, propagations, decisions,
clauses, cache traffic, PDP cache hits, and wall-clock they consumed.

Charges are posted by the *orchestrator* (pipeline parent process,
service event loop) from per-task stats payloads and metrics deltas --
worker processes never touch the ledger, so serial and pooled runs
attribute identically and nothing here can perturb analysis output or
cache keys (see ``docs/OBSERVABILITY.md``: instrumentation never feeds
cache keys).

Follows the tracer/metrics pattern: a no-op :class:`NullCostLedger` is
installed by default, :func:`enable_cost_ledger` swaps in a live one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Every meter the ledger tracks, in stable (rendering) order.
COST_FIELDS: Tuple[str, ...] = (
    "conflicts",
    "decisions",
    "propagations",
    "clauses_added",
    "translations_avoided",
    "cache_hits",
    "cache_misses",
    "pdp_cache_hits",
    "wall_seconds",
)

#: SynthesisStats field -> ledger field, for :meth:`CostLedger.charge_stats`.
_STATS_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("conflicts", "conflicts"),
    ("decisions", "decisions"),
    ("propagations", "propagations"),
    ("num_clauses", "clauses_added"),
    ("translations_avoided", "translations_avoided"),
)


@dataclass(frozen=True)
class CostKey:
    """Attribution coordinates for one account in the ledger.

    Empty strings mean "not applicable at this grain": a pipeline run has
    no device, an extraction task has no signature, a whole-bundle charge
    uses ``signature='*'`` when per-signature split is unavailable.
    """

    trace_id: str = ""
    device: str = ""
    bundle: str = ""
    signature: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {
            "trace_id": self.trace_id,
            "device": self.device,
            "bundle": self.bundle,
            "signature": self.signature,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CostKey":
        return CostKey(
            trace_id=str(data.get("trace_id", "")),
            device=str(data.get("device", "")),
            bundle=str(data.get("bundle", "")),
            signature=str(data.get("signature", "")),
        )


class CostLedger:
    """Thread-safe accumulator of charges keyed by :class:`CostKey`.

    ``capacity`` bounds distinct keys (a long-lived service sees a fresh
    trace id per request): when full, the oldest-charged keys are evicted
    so the resident set stays flat.  Totals queried per trace id are exact
    as long as the trace's entries have not been evicted, which holds for
    any in-flight request.
    """

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        # dict preserves insertion order -> cheap FIFO eviction.
        self._entries: Dict[CostKey, Dict[str, float]] = {}
        self.evictions = 0

    def charge(self, key: CostKey, **amounts: float) -> None:
        """Add ``amounts`` (field=value) to ``key``'s account.

        Unknown fields raise: a typo'd meter name silently dropping
        charges would corrupt reconciliation invisibly.
        """
        for name in amounts:
            if name not in COST_FIELDS:
                raise KeyError(f"unknown cost field: {name!r}")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                while len(self._entries) >= self.capacity:
                    self._entries.pop(next(iter(self._entries)))
                    self.evictions += 1
                entry = {field: 0.0 for field in COST_FIELDS}
                self._entries[key] = entry
            for name, value in amounts.items():
                entry[name] += float(value)

    def charge_stats(self, key: CostKey, stats: Dict[str, Any]) -> None:
        """Charge solver work from a ``SynthesisStats.to_dict()`` payload."""
        amounts = {
            ledger_field: float(stats.get(stats_field, 0) or 0)
            for stats_field, ledger_field in _STATS_FIELDS
        }
        amounts["wall_seconds"] = float(
            stats.get("construction_seconds", 0) or 0
        ) + float(stats.get("solving_seconds", 0) or 0)
        self.charge(key, **amounts)

    def entries(self) -> List[Dict[str, Any]]:
        """Every account as ``{**key, **meters}`` dicts, charge order."""
        with self._lock:
            return [
                {**key.to_dict(), **dict(meters)}
                for key, meters in self._entries.items()
            ]

    def totals(
        self,
        trace_id: Optional[str] = None,
        device: Optional[str] = None,
    ) -> Dict[str, float]:
        """Sum of every meter over accounts matching the given filters."""
        totals = {field: 0.0 for field in COST_FIELDS}
        with self._lock:
            for key, meters in self._entries.items():
                if trace_id is not None and key.trace_id != trace_id:
                    continue
                if device is not None and key.device != device:
                    continue
                for field in COST_FIELDS:
                    totals[field] += meters[field]
        return totals

    def top(self, n: int = 5, by: str = "conflicts") -> List[Dict[str, Any]]:
        """The ``n`` costliest accounts ranked by meter ``by``."""
        if by not in COST_FIELDS:
            raise KeyError(f"unknown cost field: {by!r}")
        ranked = sorted(
            self.entries(), key=lambda entry: entry[by], reverse=True
        )
        return ranked[: max(0, int(n))]

    def merge(self, entries: Iterable[Dict[str, Any]]) -> None:
        """Fold exported :meth:`entries` rows back in (report round-trip)."""
        for entry in entries:
            key = CostKey.from_dict(entry)
            amounts = {
                field: float(entry.get(field, 0) or 0) for field in COST_FIELDS
            }
            self.charge(key, **amounts)

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class NullCostLedger(CostLedger):
    """The disabled ledger: accepts charges, records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def charge(self, key: CostKey, **amounts: float) -> None:
        return None

    def charge_stats(self, key: CostKey, stats: Dict[str, Any]) -> None:
        return None

    def merge(self, entries: Iterable[Dict[str, Any]]) -> None:
        return None


NULL_COST_LEDGER = NullCostLedger()
_ledger: CostLedger = NULL_COST_LEDGER


def get_cost_ledger() -> CostLedger:
    return _ledger


def set_cost_ledger(ledger: CostLedger) -> CostLedger:
    """Install ``ledger`` globally; returns the previous ledger."""
    global _ledger
    previous = _ledger
    _ledger = ledger
    return previous


def enable_cost_ledger(capacity: int = 4096) -> CostLedger:
    """Swap in a live ledger (idempotent: reuses an existing live one)."""
    global _ledger
    if not _ledger.enabled:
        _ledger = CostLedger(capacity=capacity)
    return _ledger
