"""Trace rendering: span trees, hotspot tables, run-report aggregation.

Consumed by the ``repro trace`` CLI subcommand and by the pipeline, which
folds :func:`aggregate_spans` output into the run report's ``spans``
field so one JSON file carries both the stage timings and the span
breakdown.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.trace import SpanRecord


def _children_index(records: List[SpanRecord]) -> Dict[Optional[str], List[SpanRecord]]:
    ids = {r.span_id for r in records}
    children: Dict[Optional[str], List[SpanRecord]] = {}
    for record in records:
        # A parent that never completed (or lives in an unflushed process)
        # is absent from the file; treat such spans as roots.  Self-parented
        # spans (malformed input) are forced to roots as well, so the tree
        # walk terminates on any input.
        parent = record.parent_id if record.parent_id in ids else None
        if parent == record.span_id:
            parent = None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.start, r.span_id))
    return children


def self_seconds(records: List[SpanRecord]) -> Dict[str, float]:
    """Per-span self time: duration minus the duration of direct children."""
    children = _children_index(records)
    out: Dict[str, float] = {}
    for record in records:
        child_total = sum(
            c.seconds for c in children.get(record.span_id, ())
        )
        out[record.span_id] = max(0.0, record.seconds - child_total)
    return out


def aggregate_spans(records: List[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Roll spans up by name: count, total/self/max seconds.

    Self time attributes each wall-clock second to exactly one span name,
    so the self-time column sums (approximately) to the traced run's total
    even though spans nest.
    """
    selfs = self_seconds(records)
    out: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = out.setdefault(
            record.name,
            {"count": 0.0, "total_seconds": 0.0, "self_seconds": 0.0,
             "max_seconds": 0.0},
        )
        entry["count"] += 1
        entry["total_seconds"] += record.seconds
        entry["self_seconds"] += selfs[record.span_id]
        entry["max_seconds"] = max(entry["max_seconds"], record.seconds)
    return dict(sorted(out.items()))


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return " {" + inner + "}"


def render_span_tree(
    records: List[SpanRecord], max_depth: Optional[int] = None
) -> str:
    """An indented tree of every span, children ordered by start time."""
    if not records:
        return "(empty trace)"
    children = _children_index(records)
    lines: List[str] = []
    visited = set()

    def walk(
        record: SpanRecord, line_prefix: str, child_prefix: str, depth: int
    ) -> None:
        # Duplicate span ids (malformed traces) could otherwise cycle.
        if id(record) in visited:
            return
        visited.add(id(record))
        label = f"{record.name}{_format_attrs(record.attrs)}"
        if record.open:
            # A begin event with no completion: the process died mid-span.
            lines.append(f"{line_prefix}{label}  [UNFINISHED]")
        else:
            lines.append(
                f"{line_prefix}{label}  [{record.seconds * 1000:.1f} ms]"
            )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        kids = children.get(record.span_id, [])
        for i, child in enumerate(kids):
            last = i == len(kids) - 1
            walk(
                child,
                child_prefix + ("`- " if last else "|- "),
                child_prefix + ("   " if last else "|  "),
                depth + 1,
            )

    for root in children.get(None, []):
        walk(root, "", "", 0)
    return "\n".join(lines)


def render_hotspots(records: List[SpanRecord], top: int = 10) -> str:
    """Top-k span names by *self* time (where the wall clock really went).

    Ties break on the span name, so equal-self-time rows render in a
    stable, deterministic order regardless of input ordering.
    """
    aggregated = aggregate_spans(records)
    ranked = sorted(
        aggregated.items(), key=lambda kv: (-kv[1]["self_seconds"], kv[0])
    )[: max(0, top)]
    if not ranked:
        return "(no spans)"
    name_width = max(len(name) for name, _ in ranked)
    header = (
        f"{'span':<{name_width}}  {'count':>6}  {'self':>10}  "
        f"{'total':>10}  {'max':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in ranked:
        lines.append(
            f"{name:<{name_width}}  {int(entry['count']):>6}  "
            f"{entry['self_seconds'] * 1000:>8.1f}ms  "
            f"{entry['total_seconds'] * 1000:>8.1f}ms  "
            f"{entry['max_seconds'] * 1000:>8.1f}ms"
        )
    return "\n".join(lines)
