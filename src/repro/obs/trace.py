"""Lightweight tracing: nestable wall-clock spans emitted as JSONL.

A span is one timed region of work with a name, key/value attributes, and
a parent -- the enclosing span on the same thread (nesting is tracked with
a :class:`contextvars.ContextVar`, so spans nest correctly across threads
and ``asyncio`` tasks without any locking on the hot path).  Completed
spans become single-line JSON events.

Process safety: every event is written as one ``os.write`` of a complete
line to a file descriptor opened with ``O_APPEND``, which POSIX keeps
atomic for writes of this size -- so the pipeline's worker processes can
all append to the same trace file without interleaving.  Workers activate
tracing through the ``REPRO_TRACE`` environment variable (checked once at
import), which they inherit from the parent no matter whether the pool
forks or spawns.

The default tracer is :data:`NULL_TRACER`: ``span()`` returns a shared
singleton context manager that records nothing, writes nothing, and
allocates nothing, so instrumented code pays only a method call when
tracing is disabled.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Environment variable holding the trace-file path; setting it before a
#: run (the ``pipeline --trace`` flag does this) activates tracing in the
#: current process *and* in every pipeline worker process.
TRACE_ENV = "REPRO_TRACE"

_current_span_id: ContextVar[Optional[str]] = ContextVar(
    "repro_current_span", default=None
)


@dataclass
class SpanRecord:
    """One completed span, as read back from (or written to) a trace."""

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float  # epoch seconds (wall clock)
    seconds: float  # duration (monotonic clock)
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "seconds": self.seconds,
            "attrs": self.attrs,
            "pid": self.pid,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SpanRecord":
        return SpanRecord(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data.get("start", 0.0),
            seconds=data.get("seconds", 0.0),
            attrs=dict(data.get("attrs", {})),
            pid=data.get("pid", 0),
        )


class _NullSpan:
    """The do-nothing span: one shared instance, reused forever."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; finishes (and emits) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "_token", "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self.span_id = self._tracer._next_id()
        self._token = _current_span_id.set(self.span_id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        seconds = time.perf_counter() - self._t0
        _current_span_id.reset(self._token)
        # The parent is whatever was current *before* this span started.
        parent = _current_span_id.get()
        self._tracer._emit(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=parent,
                start=self._wall,
                seconds=seconds,
                attrs=self.attrs,
                pid=os.getpid(),
            )
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)


class Tracer:
    """Base tracer: allocates spans, hands completed records to ``_emit``."""

    #: Hot paths may guard expensive attribute computation on this flag.
    enabled = True

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def _next_id(self) -> str:
        # The pid is read per call, not captured at construction: a forked
        # pool worker inherits this tracer (counter state and all), and
        # stamping the *current* pid keeps its span ids distinct from every
        # sibling worker's.
        return f"{os.getpid()}-{next(self._counter)}"

    def span(self, name: str, **attrs: Any):
        """Context manager timing one region of work."""
        return _Span(self, name, attrs)

    def _emit(self, record: SpanRecord) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class NullTracer(Tracer):
    """The disabled tracer: no records, no I/O, no allocation."""

    enabled = False

    def __init__(self) -> None:  # no counter state needed
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def _emit(self, record: SpanRecord) -> None:
        return None


class InMemoryTracer(Tracer):
    """Collects spans in a list -- for tests and in-process aggregation."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[SpanRecord] = []
        self._lock = threading.Lock()

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)


class JsonlTracer(Tracer):
    """Appends one JSON line per completed span to ``path``.

    The descriptor is opened with ``O_APPEND`` and every event is a single
    ``os.write`` call, so concurrent writers (pipeline worker processes)
    never interleave partial lines.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def _emit(self, record: SpanRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


NULL_TRACER = NullTracer()
_tracer: Tracer = NULL_TRACER

# Worker processes inherit REPRO_TRACE from the parent; activating here at
# import means their instrumented code traces into the same file with no
# explicit plumbing through the process pool.
_env_path = os.environ.get(TRACE_ENV)
if _env_path:
    _tracer = JsonlTracer(_env_path)
del _env_path


def get_tracer() -> Tracer:
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous tracer."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing(path: str) -> JsonlTracer:
    """Trace into ``path`` (JSONL), here and in pipeline workers."""
    tracer = JsonlTracer(path)
    set_tracer(tracer)
    os.environ[TRACE_ENV] = str(path)
    return tracer


def span(name: str, **attrs: Any):
    """Convenience: a span on the global tracer."""
    return _tracer.span(name, **attrs)


def read_trace(path: str) -> List[SpanRecord]:
    """Load every span event from a JSONL trace file (blank lines skipped)."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def write_trace(path: str, records: Iterable[SpanRecord]) -> None:
    """Write span records as JSONL (the inverse of :func:`read_trace`)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
