"""Lightweight tracing: nestable wall-clock spans emitted as JSONL.

A span is one timed region of work with a name, key/value attributes, and
a parent -- the enclosing span on the same thread (nesting is tracked with
a :class:`contextvars.ContextVar`, so spans nest correctly across threads
and ``asyncio`` tasks without any locking on the hot path).  Completed
spans become single-line JSON events.

Process safety: every event is written as one ``os.write`` of a complete
line to a file descriptor opened with ``O_APPEND``, which POSIX keeps
atomic for writes of this size -- so the pipeline's worker processes can
all append to the same trace file without interleaving.  Workers activate
tracing through the ``REPRO_TRACE`` environment variable (checked once at
import), which they inherit from the parent no matter whether the pool
forks or spawns.

The default tracer is :data:`NULL_TRACER`: ``span()`` returns a shared
singleton context manager that records nothing, writes nothing, and
allocates nothing, so instrumented code pays only a method call when
tracing is disabled.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
import uuid
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Environment variable holding the trace-file path; setting it before a
#: run (the ``pipeline --trace`` flag does this) activates tracing in the
#: current process *and* in every pipeline worker process.
TRACE_ENV = "REPRO_TRACE"

_current_span_id: ContextVar[Optional[str]] = ContextVar(
    "repro_current_span", default=None
)

#: The trace (request/run) every span in this context belongs to.  Root
#: spans mint one lazily; :func:`adopt_trace_context` installs one shipped
#: across a process or task boundary.
_current_trace_id: ContextVar[Optional[str]] = ContextVar(
    "repro_current_trace", default=None
)

#: Parent span id adopted from a *remote* context (another process, or the
#: service request envelope).  Consulted only when no local span is open,
#: so a worker's first span parents under the orchestrator dispatch span
#: instead of becoming a new per-pid root.
_remote_parent_id: ContextVar[Optional[str]] = ContextVar(
    "repro_remote_parent", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id.

    Trace ids are observability-only: they never enter cache keys,
    content hashes, or analysis outputs, so randomness here cannot
    perturb determinism guarantees.
    """
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The portable causal link: a trace id plus the parent span id.

    Instances cross process and task boundaries as plain dicts (see
    :meth:`to_dict`); the receiving side calls :func:`adopt_trace_context`
    so its spans join the sender's tree instead of rooting a new one.
    """

    trace_id: str
    span_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            data["span_id"] = self.span_id
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TraceContext":
        return TraceContext(
            trace_id=str(data["trace_id"]),
            span_id=data.get("span_id"),
        )

    @staticmethod
    def new() -> "TraceContext":
        return TraceContext(trace_id=new_trace_id())


def current_trace_id() -> Optional[str]:
    """The trace id of the enclosing run/request, if any."""
    return _current_trace_id.get()


def current_trace_context() -> Optional[TraceContext]:
    """Capture the ambient context for shipping to another process/task.

    Returns ``None`` when no trace is active (tracing disabled and no
    context adopted), in which case there is nothing worth propagating.
    """
    trace_id = _current_trace_id.get()
    if trace_id is None:
        return None
    span_id = _current_span_id.get()
    if span_id is None:
        span_id = _remote_parent_id.get()
    return TraceContext(trace_id=trace_id, span_id=span_id)


@contextlib.contextmanager
def adopt_trace_context(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Join ``ctx``'s trace for the duration of the block.

    Spans opened inside parent under ``ctx.span_id`` (when they have no
    closer local parent) and carry ``ctx.trace_id``.  Pool workers are
    reused across tasks, so the previous context is restored on exit --
    a task never inherits the trace of the task before it.  ``None`` is
    accepted and adopts nothing, keeping call sites branch-free.
    """
    if ctx is None:
        yield
        return
    trace_token = _current_trace_id.set(ctx.trace_id)
    parent_token = _remote_parent_id.set(ctx.span_id)
    try:
        yield
    finally:
        _remote_parent_id.reset(parent_token)
        _current_trace_id.reset(trace_token)


@dataclass
class SpanRecord:
    """One span, as read back from (or written to) a trace.

    ``open`` marks a span whose end was never recorded -- the process died
    (crash, SIGKILL, pool teardown) between the begin event and the
    completion event.  Open spans carry ``seconds == 0.0``; consumers
    should render them as unfinished rather than instantaneous.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float  # epoch seconds (wall clock)
    seconds: float  # duration (monotonic clock)
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    open: bool = False
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "seconds": self.seconds,
            "attrs": self.attrs,
            "pid": self.pid,
        }
        if self.open:
            data["open"] = True
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SpanRecord":
        return SpanRecord(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data.get("start", 0.0),
            seconds=data.get("seconds", 0.0),
            attrs=dict(data.get("attrs", {})),
            pid=data.get("pid", 0),
            open=bool(data.get("open", False)),
            trace_id=data.get("trace_id"),
        )


class _NullSpan:
    """The do-nothing span: one shared instance, reused forever."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; finishes (and emits) on ``__exit__``."""

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "_token", "_t0", "_wall",
        "_parent", "trace_id", "_trace_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self.span_id = self._tracer._next_id()
        # The parent is whatever is current *before* this span starts: the
        # nearest local span, falling back to an adopted remote parent so
        # worker-side spans link under the orchestrator dispatch span.
        self._parent = _current_span_id.get()
        if self._parent is None:
            self._parent = _remote_parent_id.get()
        # A root span with no ambient trace starts a fresh one; nested
        # spans and adopted contexts reuse the enclosing trace id.
        self._trace_token = None
        self.trace_id = _current_trace_id.get()
        if self.trace_id is None:
            self.trace_id = new_trace_id()
            self._trace_token = _current_trace_id.set(self.trace_id)
        self._token = _current_span_id.set(self.span_id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        self._tracer._emit_begin(self)
        return self

    def __exit__(self, *exc: object) -> None:
        seconds = time.perf_counter() - self._t0
        _current_span_id.reset(self._token)
        if self._trace_token is not None:
            _current_trace_id.reset(self._trace_token)
        self._tracer._emit(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self._parent,
                start=self._wall,
                seconds=seconds,
                attrs=self.attrs,
                pid=os.getpid(),
                trace_id=self.trace_id,
            )
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)


class Tracer:
    """Base tracer: allocates spans, hands completed records to ``_emit``."""

    #: Hot paths may guard expensive attribute computation on this flag.
    enabled = True

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def _next_id(self) -> str:
        # The pid is read per call, not captured at construction: a forked
        # pool worker inherits this tracer (counter state and all), and
        # stamping the *current* pid keeps its span ids distinct from every
        # sibling worker's.
        return f"{os.getpid()}-{next(self._counter)}"

    def span(self, name: str, **attrs: Any):
        """Context manager timing one region of work."""
        return _Span(self, name, attrs)

    def _emit_begin(self, span: "_Span") -> None:
        """Hook called when a span opens; only durable tracers record it."""
        return None

    def emit_event(self, payload: Dict[str, Any]) -> None:
        """Record a non-span event (e.g. a solver progress heartbeat).

        Payloads must carry an ``event`` key so trace readers can tell
        them apart from span records.  The default tracer discards them.
        """
        return None

    def _emit(self, record: SpanRecord) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class NullTracer(Tracer):
    """The disabled tracer: no records, no I/O, no allocation."""

    enabled = False

    def __init__(self) -> None:  # no counter state needed
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def _emit(self, record: SpanRecord) -> None:
        return None


class InMemoryTracer(Tracer):
    """Collects spans in a list -- for tests and in-process aggregation."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[SpanRecord] = []
        self._lock = threading.Lock()

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)


class JsonlTracer(Tracer):
    """Appends one JSON line per span event to ``path``.

    The descriptor is opened with ``O_APPEND`` and every event is a single
    ``os.write`` call, so concurrent writers (pipeline worker processes)
    never interleave partial lines.

    With ``begin_events`` (the default) every span additionally writes a
    ``span_begin`` event line when it opens.  A span whose process dies
    before completion then still leaves its begin line behind, and
    :func:`read_trace` recovers it as an *open* span instead of dropping
    it silently -- the difference between "this worker never ran the task"
    and "this worker was killed mid-task".
    """

    def __init__(self, path: str, begin_events: bool = True) -> None:
        super().__init__()
        self.path = str(path)
        self.begin_events = begin_events
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def _write_line(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def _emit_begin(self, span: "_Span") -> None:
        if not self.begin_events:
            return
        payload = {
            "event": "span_begin",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span._parent,
            "start": span._wall,
            "pid": os.getpid(),
        }
        if span.trace_id is not None:
            payload["trace_id"] = span.trace_id
        self._write_line(payload)

    def emit_event(self, payload: Dict[str, Any]) -> None:
        if "event" not in payload:
            raise ValueError("trace events must carry an 'event' key")
        self._write_line(payload)

    def _emit(self, record: SpanRecord) -> None:
        self._write_line(record.to_dict())

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


NULL_TRACER = NullTracer()
_tracer: Tracer = NULL_TRACER

# Worker processes inherit REPRO_TRACE from the parent; activating here at
# import means their instrumented code traces into the same file with no
# explicit plumbing through the process pool.
_env_path = os.environ.get(TRACE_ENV)
if _env_path:
    _tracer = JsonlTracer(_env_path)
del _env_path


def get_tracer() -> Tracer:
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous tracer."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing(path: str) -> JsonlTracer:
    """Trace into ``path`` (JSONL), here and in pipeline workers."""
    tracer = JsonlTracer(path)
    set_tracer(tracer)
    os.environ[TRACE_ENV] = str(path)
    return tracer


def span(name: str, **attrs: Any):
    """Convenience: a span on the global tracer."""
    return _tracer.span(name, **attrs)


def read_events(path: str) -> Tuple[List[SpanRecord], List[Dict[str, Any]]]:
    """Load a JSONL trace: ``(spans, events)``.

    ``spans`` holds every completed span plus one *open* span
    (``record.open`` set, ``seconds == 0.0``) for each ``span_begin``
    event that never got its completion line -- the signature of a worker
    killed mid-span.  ``events`` holds every other event line (progress
    heartbeats and future event kinds), in file order, as raw dicts.
    Blank and unparseable-as-span lines are skipped.
    """
    records: List[SpanRecord] = []
    events: List[Dict[str, Any]] = []
    begins: Dict[str, Dict[str, Any]] = {}
    begin_order: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("event")
            if kind == "span_begin":
                span_id = data.get("span_id")
                if span_id is not None and span_id not in begins:
                    begins[span_id] = data
                    begin_order.append(span_id)
            elif kind is not None:
                events.append(data)
            else:
                records.append(SpanRecord.from_dict(data))
    completed = {r.span_id for r in records}
    for span_id in begin_order:
        if span_id in completed:
            continue
        data = begins[span_id]
        records.append(
            SpanRecord(
                name=data.get("name", "?"),
                span_id=span_id,
                parent_id=data.get("parent_id"),
                start=data.get("start", 0.0),
                seconds=0.0,
                attrs={},
                pid=data.get("pid", 0),
                open=True,
                trace_id=data.get("trace_id"),
            )
        )
    return records, events


def read_trace(path: str) -> List[SpanRecord]:
    """Load every span from a JSONL trace file (see :func:`read_events`);
    non-span event lines are skipped, unterminated spans come back open."""
    return read_events(path)[0]


def write_trace(path: str, records: Iterable[SpanRecord]) -> None:
    """Write span records as JSONL (the inverse of :func:`read_trace`)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
