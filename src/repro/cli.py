"""Command-line interface.

Usage (``python -m repro <command>``):

- ``demo``                      -- run the paper's running example end to end.
- ``corpus --scale S -o DIR``   -- generate the synthetic market corpus and
  save each app's extracted model as JSON into DIR.
- ``analyze MODEL.json ...``    -- analyze a bundle of saved app models:
  print scenarios and policies; ``--alloy FILE`` additionally exports the
  bundle's Alloy specification; ``--jobs N`` fans synthesis across
  signatures in parallel.
- ``pipeline``                  -- generate a corpus, partition it into
  bundles, and run the parallel cached analysis pipeline end to end;
  ``--jobs N`` controls the process pool, ``--cache-dir`` the persistent
  cache, ``--report``/``--findings`` write machine-readable outputs, and
  ``--trace FILE`` records a JSONL span trace of the whole run.
- ``simulate``                  -- synthesize policies for the running
  example, enforce them on the simulated device while the malicious app
  attacks, and print (or save with ``--audit``) the enforcement audit
  log; ``--pdp-backend`` picks the decision engine (``compiled`` indexed
  dispatch by default, ``linear`` reference scan), ``--consent`` answers
  every prompt with allow.
- ``trace FILE``                -- render the span tree and top-k hotspots
  of a JSONL trace produced by ``pipeline --trace`` or ``enable_tracing``;
  spans whose process died before completion render as ``[UNFINISHED]``.
- ``export-trace FILE -o OUT``  -- convert a JSONL trace (spans plus solver
  heartbeats) to Chrome trace-event JSON, loadable in Perfetto or
  ``chrome://tracing``: one track per worker pid, counter tracks for the
  solver's live counters.
- ``export-metrics REPORT``     -- render the metrics snapshot inside a
  pipeline run report as Prometheus text exposition format.
- ``serve-metrics REPORT``      -- serve that same exposition on a local
  HTTP endpoint (``GET /metrics``) for a Prometheus scraper.
- ``serve``                     -- run the long-lived policy service: one
  warm analysis session per device over line-delimited JSON (TCP, or a
  UNIX socket with ``--socket``); install/uninstall streams are answered
  by warm incremental re-synthesis, byte-identical to cold runs, with
  Prometheus telemetry on ``--metrics-port``.  See ``docs/SERVICE.md``.
- ``top``                       -- live view of a running service: per-device
  sessions, queue depths, in-flight request ages, warm-hit rates, and the
  top cost-ledger accounts; ``--once`` prints a single frame.
- ``adversarial``               -- generate the seeded adversarial corpus
  (power-law ICC background plus planted multi-step attacks and near-miss
  decoys), optionally write the ground-truth manifest JSON, and score the
  analysis per signature (precision/recall/F1 against the planted truth).
- ``bench``                     -- run the paper-corpus benchmark workloads
  and write a schema-versioned ``BENCH_<label>.json`` snapshot;
  ``bench --compare OLD NEW`` diffs two snapshots with per-metric
  thresholds and exits 2 on regression.

``repro --version`` prints the package version.  ``repro --log-level
LEVEL`` (or ``REPRO_LOG=LEVEL``) routes diagnostic chatter -- heartbeat
lines from ``pipeline --watch``, HTTP access logs -- through stdlib
logging; without it, logging stays unconfigured and default output is
unchanged.  Every subcommand documents its flags via ``repro <command>
--help``.
"""

from __future__ import annotations

import argparse
import logging
import os
import pathlib
import sys
from typing import List, Optional

from repro import __version__
from repro.core import serialize
from repro.core.model import BundleModel
from repro.core.separ import Separ
from repro.sat import DEFAULT_BACKEND, SOLVER_BACKENDS


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.benchsuite.running_example import build_app1, build_app2

    report = Separ(
        scenarios_per_signature=args.scenarios
    ).analyze_apks([build_app1(), build_app2()])
    print(report.summary())
    print()
    for scenario in report.scenarios:
        print(f"[{scenario.vulnerability}] {scenario.description}")
    print()
    for policy in report.policies:
        print(f"policy ({policy.vulnerability}): {policy.description}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.statics import extract_app
    from repro.workloads import CorpusConfig, CorpusGenerator

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    generator = CorpusGenerator(CorpusConfig(scale=args.scale, seed=args.seed))
    apks = generator.generate()
    for apk in apks:
        model = extract_app(apk)
        path = out_dir / f"{model.package}.json"
        path.write_text(serialize.dumps_app(model))
    counts = generator.ledger.counts()
    print(f"wrote {len(apks)} app models to {out_dir}")
    print(f"injected vulnerabilities: {counts}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    apps = []
    for path in args.models:
        text = pathlib.Path(path).read_text()
        apps.append(serialize.loads_app(text))
    bundle = BundleModel(apps=apps)
    if args.jobs > 1:
        from repro.pipeline import AnalysisPipeline

        pipeline = AnalysisPipeline(
            jobs=args.jobs,
            scenarios_per_signature=args.scenarios,
            shared_encoding=args.shared_encoding,
            solver_backend=args.solver_backend,
        )
        report = pipeline.analyze_bundles([bundle]).reports[0]
    else:
        separ = Separ(
            scenarios_per_signature=args.scenarios,
            shared_encoding=args.shared_encoding,
            solver_backend=args.solver_backend,
        )
        report = separ.analyze_bundle(bundle)
    print(report.summary())
    for scenario in report.scenarios:
        print(f"\n[{scenario.vulnerability}] {scenario.description}")
    print()
    for policy in report.policies:
        print(f"policy ({policy.vulnerability}): {policy.description}")
    if args.alloy:
        from repro.core import alloy_export

        pathlib.Path(args.alloy).write_text(alloy_export.render_bundle(bundle))
        print(f"\nAlloy specification written to {args.alloy}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.obs import (
        enable_cost_ledger,
        enable_metrics,
        enable_progress,
        enable_tracing,
    )
    from repro.pipeline import (
        AnalysisPipeline,
        FaultPolicy,
        NullCache,
        PipelineCache,
        attach_observability,
    )
    from repro.workloads import CorpusConfig, CorpusGenerator
    from repro.workloads.bundles import partition_bundles

    trace_path = args.trace
    ephemeral_trace = False
    if args.watch and not trace_path:
        # Heartbeats travel over the trace file; --watch without --trace
        # uses a throwaway one.
        import tempfile

        fd, trace_path = tempfile.mkstemp(
            prefix="repro-watch-", suffix=".jsonl"
        )
        os.close(fd)
        ephemeral_trace = True
    if trace_path:
        # Truncate any previous trace, then append (workers inherit the
        # REPRO_TRACE environment variable and append to the same file).
        pathlib.Path(trace_path).write_text("")
        enable_tracing(trace_path)
    enable_metrics()
    enable_cost_ledger()

    monitor = None
    if args.watch:
        from repro.obs import HeartbeatMonitor

        enable_progress(interval=args.progress_interval)
        watch_logger = logging.getLogger("repro.watch")
        if not logging.getLogger().handlers and not watch_logger.handlers:
            # --watch implies visible heartbeats even when --log-level was
            # not given; scope the handler to the watch logger so nothing
            # else starts chattering.
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(
                logging.Formatter("[watch %(asctime)s] %(message)s", "%H:%M:%S")
            )
            watch_logger.addHandler(handler)
            watch_logger.setLevel(logging.INFO)
        monitor = HeartbeatMonitor(
            trace_path,
            stall_after=args.stall_after,
            logger=watch_logger,
        ).start()

    generator = CorpusGenerator(CorpusConfig(scale=args.scale, seed=args.seed))
    apks = generator.generate()
    bundles = partition_bundles(
        apks, bundle_size=args.bundle_size, seed=args.seed
    )
    if args.no_cache:
        cache = NullCache()
    else:
        cache_dir = pathlib.Path(args.cache_dir) if args.cache_dir else None
        cache = PipelineCache(cache_dir)
    pipeline = AnalysisPipeline(
        jobs=args.jobs,
        cache=cache,
        scenarios_per_signature=args.scenarios,
        faults=FaultPolicy(
            task_timeout=args.task_timeout,
            max_retries=args.task_retries,
        ),
        conflict_budget=args.conflict_budget,
        time_budget_seconds=args.time_budget,
        shared_encoding=args.shared_encoding,
        solver_backend=args.solver_backend,
    )
    try:
        result = pipeline.run(bundles)
        report = result.run_report
        # Re-aggregate now that every span (incl. pipeline.run) is closed.
        attach_observability(
            report, trace_path=trace_path if trace_path else None
        )
    finally:
        if monitor is not None:
            monitor.stop()
        if ephemeral_trace:
            try:
                os.unlink(trace_path)
            except OSError:
                pass
    print(
        f"pipeline: {report.num_apps} apps in {report.num_bundles} bundles, "
        f"jobs={report.jobs}"
    )
    print(
        f"  scenarios: {report.num_scenarios}, "
        f"policies: {report.num_policies}"
    )
    for timing in report.stages:
        print(f"  {timing.name}: {timing.seconds:.2f}s")
    print(
        f"  cache: {report.cache.total_hits} hits, "
        f"{report.cache.total_misses} misses, "
        f"{report.cache.total_invalidations} invalidations"
    )
    solver = report.solver
    print(
        f"  solver: {solver.solver_calls} calls "
        f"[{solver.backend or 'cached'}], "
        f"{solver.conflicts} conflicts, {solver.decisions} decisions, "
        f"{solver.propagations} propagations"
    )
    print(
        f"  encoding: {solver.translations} translations "
        f"({solver.translations_avoided} avoided), "
        f"{solver.clauses_shared} clauses shared, "
        f"{solver.learned_carried} learned clauses carried"
    )
    if report.failures:
        print(f"  failures: {len(report.failures)} task(s)")
        for failure in report.failures:
            print(
                f"    [{failure['kind']}] {failure['stage']}"
                f" {failure['task']} after {failure['attempts']} attempt(s):"
                f" {failure['error']}"
            )
    if report.degraded:
        print(f"  degraded: {len(report.degraded)} task(s)")
        for entry in report.degraded:
            print(
                f"    [{entry['reason']}] {entry['stage']} {entry['task']}"
                f" ({entry['scenarios']} scenario(s) found before the "
                "budget ran out)"
            )
    if report.cost:
        top = sorted(
            report.cost,
            key=lambda e: e.get("conflicts", 0),
            reverse=True,
        )[:3]
        print(f"  cost ledger: {len(report.cost)} account(s); top by conflicts:")
        for entry in top:
            label = entry.get("bundle") or entry.get("device") or "?"
            signature = entry.get("signature") or "-"
            print(
                f"    {label} [{signature}]: "
                f"{int(entry.get('conflicts', 0))} conflicts, "
                f"{entry.get('wall_seconds', 0.0):.2f}s"
            )
    if args.trace:
        span_count = int(sum(e["count"] for e in report.spans.values()))
        print(f"  trace: {span_count} spans written to {args.trace}")
    if args.report:
        pathlib.Path(args.report).write_text(report.dumps())
        print(f"run report written to {args.report}")
    if args.findings:
        import json

        pathlib.Path(args.findings).write_text(
            json.dumps(result.findings_dict(), indent=2, sort_keys=True)
        )
        print(f"findings written to {args.findings}")
    # Fault tolerance is the default contract: a run that completed with
    # isolated failures or degraded tasks still exits 0 (the report carries
    # the details).  --strict turns those conditions into exit codes.
    if args.strict:
        if report.failures:
            return 3
        if report.degraded:
            return 2
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.benchsuite.running_example import (
        build_app1,
        build_app2,
        build_malicious_app,
    )
    from repro.enforcement import (
        AndroidRuntime,
        PolicyEnforcementPoint,
        deny_all_prompts,
        make_pdp,
    )

    print("synthesizing policies for the benign bundle (app1 + app2)...")
    report = Separ(
        scenarios_per_signature=args.scenarios
    ).analyze_apks([build_app1(), build_app2()])
    print(
        f"  {len(report.scenarios)} exploit scenarios, "
        f"{len(report.policies)} policies"
    )

    runtime = AndroidRuntime()
    for apk in (build_app1(), build_app2(), build_malicious_app()):
        runtime.install(apk)
    prompt = (
        (lambda policy, event: True) if args.consent else deny_all_prompts
    )
    pdp = make_pdp(
        report.policies,
        backend=args.pdp_backend,
        prompt_callback=prompt,
    )
    pep = PolicyEnforcementPoint(runtime, pdp)
    pep.install()
    runtime.start_component(args.entry)

    audit = pdp.audit
    summary = audit.summary()
    print(
        f"\naudit log: {summary['decisions']} decisions "
        f"({summary['allowed']} allowed, {summary['denied']} denied, "
        f"{summary['prompted']} prompted)"
    )
    for record in audit:
        policy = record.policy_vulnerability or "-"
        print(
            f"  [{record.seq:3d}] {record.verdict:5s} {record.event_kind:12s}"
            f" {record.sender} -> {record.receiver or '(unresolved)'}"
            f"  policy={policy}"
        )
    exfiltrated = bool(runtime.effects_of_kind("sms_sent"))
    print(
        "\n=> "
        + ("LOCATION EXFILTRATED" if exfiltrated else "no exfiltration")
        + f" ({pep.blocked_deliveries} deliveries blocked)"
    )
    if args.audit:
        audit.write(args.audit)
        print(f"audit log written to {args.audit}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_trace, render_hotspots, render_span_tree

    try:
        records = read_trace(args.trace_file)
    except OSError as exc:
        print(f"repro trace: cannot read {args.trace_file}: {exc}", file=sys.stderr)
        return 1
    print(f"{len(records)} spans in {args.trace_file}")
    open_count = sum(1 for r in records if r.open)
    if open_count:
        print(
            f"({open_count} span(s) never completed -- process killed or "
            "crashed mid-span)"
        )
    print()
    print(render_span_tree(records, max_depth=args.max_depth))
    print()
    print(render_hotspots(records, top=args.top))
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_events, write_chrome_trace

    try:
        spans, events = read_events(args.trace_file)
    except OSError as exc:
        print(
            f"repro export-trace: cannot read {args.trace_file}: {exc}",
            file=sys.stderr,
        )
        return 1
    count = write_chrome_trace(args.output, spans, events)
    heartbeats = sum(1 for e in events if e.get("event") == "progress")
    print(
        f"wrote {count} trace events ({len(spans)} spans, "
        f"{heartbeats} heartbeats) to {args.output}"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _load_metrics_snapshot(report_path: str) -> dict:
    import json

    from repro.obs import cost_metrics_snapshot

    data = json.loads(pathlib.Path(report_path).read_text())
    # Accept either a full run report or a bare metrics snapshot.
    snapshot = data.get("metrics", data) if isinstance(data, dict) else {}
    if not snapshot:
        raise ValueError(
            "no metrics in report (run `repro pipeline` with REPRO_METRICS=1 "
            "or rely on its default metrics collection, then --report)"
        )
    snapshot = dict(snapshot)
    if isinstance(data, dict) and "metrics" in data and data.get("cost"):
        # Fold the run's cost-ledger accounts in as labeled series
        # (repro_cost_* counters keyed by trace/device/bundle/signature).
        snapshot.update(cost_metrics_snapshot(data["cost"]))
    return snapshot


def _cmd_export_metrics(args: argparse.Namespace) -> int:
    from repro.obs import render_prometheus

    try:
        snapshot = _load_metrics_snapshot(args.report)
    except (OSError, ValueError) as exc:
        print(f"repro export-metrics: {exc}", file=sys.stderr)
        return 1
    text = render_prometheus(snapshot)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {len(text.splitlines())} exposition lines to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    from repro.obs import make_metrics_server

    def provider() -> dict:
        # Re-read per scrape, so a report refreshed by a new pipeline run
        # is served without restarting.
        return _load_metrics_snapshot(args.report)

    try:
        provider()  # fail fast on an unreadable report
    except (OSError, ValueError) as exc:
        print(f"repro serve-metrics: {exc}", file=sys.stderr)
        return 1
    server = make_metrics_server(provider, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving Prometheus metrics on http://{host}:{port}/metrics")
    print("(Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.obs import enable_metrics
    from repro.service import PolicyService, ServerConfig, SessionConfig

    enable_metrics()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        metrics_port=args.metrics_port,
        workers=args.workers,
        batch_max=args.batch_max,
        request_timeout_seconds=args.request_timeout,
        ready_file=args.ready_file,
        session=SessionConfig(
            scenarios_per_signature=args.scenarios,
            conflict_budget=args.conflict_budget,
            time_budget_seconds=args.time_budget,
            shared_encoding=args.shared_encoding,
            solver_backend=args.solver_backend,
            pdp_backend=args.pdp_backend,
            cache_entries=args.cache_entries,
        ),
    )
    service = PolicyService(config)

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal-handler support
        task = asyncio.ensure_future(service.run())
        # Wait for the bind (or an early failure) before printing where
        # the server can be reached.
        while not service._started.is_set() and not task.done():
            await asyncio.sleep(0.01)
        if config.socket_path:
            print(f"repro serve: listening on {config.socket_path}")
        elif service.address:
            host, port = service.address
            print(f"repro serve: listening on {host}:{port}")
        if service.metrics_address:
            mhost, mport = service.metrics_address
            print(f"repro serve: metrics on http://{mhost}:{mport}/metrics")
        print("(Ctrl-C or the 'shutdown' op to stop)")
        await task

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _render_top(health: dict, status: dict) -> str:
    """One `repro top` frame: liveness line, device table, cost leaders."""
    lines = [
        "repro top -- up {:.0f}s, {} session(s), queue depth {}, "
        "{} request(s) in flight".format(
            health.get("uptime_seconds", 0.0),
            health.get("sessions", 0),
            health.get("queue_depth", 0),
            health.get("inflight", 0),
        )
    ]
    stalled = health.get("stalled_devices") or []
    if stalled:
        lines.append(f"  STALLED: {', '.join(stalled)}")
    sessions = status.get("sessions", {})
    queue_depths = status.get("queue_depths", {})
    inflight_ages = status.get("inflight_ages", {})
    if sessions:
        lines.append("")
        lines.append(
            f"  {'DEVICE':<16} {'APPS':>4} {'REQS':>6} {'QUEUE':>5} "
            f"{'INFLIGHT':>8} {'WARM%':>6} {'CACHE':>5}"
        )
        for device, info in sessions.items():
            age = inflight_ages.get(device)
            rate = info.get("warm_hit_rate")
            lines.append(
                "  {:<16} {:>4} {:>6} {:>5} {:>8} {:>6} {:>5}".format(
                    device,
                    len(info.get("installed", ())),
                    info.get("requests", 0),
                    queue_depths.get(device, 0),
                    "-" if age is None else f"{age:.1f}s",
                    "-" if rate is None else f"{rate * 100.0:.0f}",
                    info.get("cache_entries") or 0,
                )
            )
    top_costs = status.get("top_costs") or []
    if top_costs:
        lines.append("")
        lines.append("  top cost accounts (by conflicts):")
        for entry in top_costs:
            label = entry.get("bundle") or entry.get("device") or "?"
            signature = entry.get("signature") or "-"
            lines.append(
                "    {} [{}]: {} conflicts, {} propagations, "
                "{:.2f}s (trace {})".format(
                    label,
                    signature,
                    int(entry.get("conflicts", 0)),
                    int(entry.get("propagations", 0)),
                    entry.get("wall_seconds", 0.0),
                    entry.get("trace_id") or "-",
                )
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.service import ServiceClient, ServiceError

    try:
        client = ServiceClient(
            host=args.host, port=args.port, socket_path=args.socket
        )
    except OSError as exc:
        print(f"repro top: cannot connect: {exc}", file=sys.stderr)
        return 1
    try:
        with client:
            while True:
                frame = _render_top(client.healthz(), client.status())
                print(frame, flush=True)
                if args.once:
                    return 0
                time.sleep(args.interval)
                print()
    except ServiceError as exc:
        print(f"repro top: {exc}", file=sys.stderr)
        return 1
    except (KeyboardInterrupt, BrokenPipeError, ConnectionError):
        return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchsuite.bench import (
        BenchConfig,
        compare_bench,
        known_workloads,
        load_bench,
        render_comparison,
        run_bench,
        write_bench,
    )

    per_metric: dict = {}
    for item in args.metric_threshold or []:
        name, sep, value = item.partition("=")
        if not sep or not name:
            print(
                f"repro bench: --metric-threshold expects METRIC=REL, "
                f"got {item!r}",
                file=sys.stderr,
            )
            return 1
        try:
            per_metric[name] = float(value)
        except ValueError:
            print(
                f"repro bench: --metric-threshold {item!r}: "
                f"{value!r} is not a number",
                file=sys.stderr,
            )
            return 1

    if args.compare:
        old_path, new_path = args.compare
        try:
            old = load_bench(old_path)
            new = load_bench(new_path)
            comparison = compare_bench(
                old, new, threshold=args.threshold, thresholds=per_metric
            )
        except (OSError, ValueError) as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 1
        print(
            f"comparing {old.get('label')} ({old_path}) -> "
            f"{new.get('label')} ({new_path})"
        )
        print(render_comparison(comparison, strict=args.strict))
        if comparison.ok(strict=args.strict):
            return 0
        return 0 if args.warn_only else 2

    extra = {}
    if args.workloads:
        wanted = tuple(
            name.strip() for name in args.workloads.split(",") if name.strip()
        )
        unknown = sorted(set(wanted) - set(known_workloads()))
        if unknown:
            print(
                f"repro bench: unknown workload(s) {', '.join(unknown)}; "
                f"choose from {', '.join(known_workloads())}",
                file=sys.stderr,
            )
            return 1
        extra["workloads"] = wanted
    config = BenchConfig(
        label=args.label,
        scale=args.scale,
        bundle_size=args.bundle_size,
        scenarios=args.scenarios,
        jobs=args.jobs,
        seed=args.seed,
        shared_encoding=args.shared_encoding,
        solver_backend=args.solver_backend,
        quick=args.quick,
        **extra,
    )
    result = run_bench(config, progress=print)
    path = write_bench(result, args.output)
    print(f"benchmark snapshot written to {path}")
    for workload, metrics in sorted(result["workloads"].items()):
        wall = metrics.get("wall_seconds", metrics.get("total_seconds", 0.0))
        print(f"  {workload}: {wall:.3f}s")
    rss = result.get("peak_rss_bytes")
    if rss:
        print(f"  peak RSS: {rss / (1024 * 1024):.1f} MiB")
    return 0


def _cmd_adversarial(args: argparse.Namespace) -> int:
    import json

    from repro.core.attack_generation import (
        AdversarialCorpusConfig,
        AdversarialCorpusGenerator,
    )

    try:
        config = AdversarialCorpusConfig(
            seed=args.seed,
            bundles=args.bundles,
            apps_per_bundle=args.apps_per_bundle,
            plants_per_signature=args.plants,
            decoys_per_signature=args.decoys,
        )
        bundles, manifest = AdversarialCorpusGenerator(config).generate()
    except ValueError as exc:
        print(f"repro adversarial: {exc}", file=sys.stderr)
        return 1

    apps = sum(len(apks) for apks in bundles)
    print(
        f"adversarial corpus: {len(bundles)} bundle(s), {apps} apps, "
        f"{len(manifest.planted)} planted attack(s), "
        f"{len(manifest.decoys)} decoy(s) [seed {config.seed}]"
    )
    if args.manifest:
        path = pathlib.Path(args.manifest)
        path.write_text(
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"ground-truth manifest written to {path}")
    if args.no_analyze:
        return 0

    from repro.benchsuite.groundtruth import (
        findings_from_scenarios,
        score_against_manifest,
    )
    from repro.core.synthesis import AnalysisAndSynthesisEngine
    from repro.statics import extract_bundle

    engine = AnalysisAndSynthesisEngine(
        scenarios_per_signature=args.scenarios,
        shared_encoding=args.shared_encoding,
        solver_backend=args.solver_backend,
    )
    per_bundle = []
    for apks in bundles:
        model = extract_bundle(apks, handle_dynamic_receivers=True)
        per_bundle.append(engine.run(model).scenarios)
    scores = score_against_manifest(
        manifest, findings_from_scenarios(per_bundle)
    )
    failed = False
    for name in sorted(scores):
        acc = scores[name]
        flag = ""
        if min(acc.precision, acc.recall) < args.min_accuracy:
            failed = True
            flag = "  <-- below --min-accuracy"
        print(
            f"  {name}: precision {acc.precision:.3f} "
            f"recall {acc.recall:.3f} F1 {acc.f_measure:.3f} "
            f"(tp {acc.true_positives} fp {acc.false_positives} "
            f"fn {acc.false_negatives}){flag}"
        )
    return 2 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SEPAR reproduction: formal synthesis and automatic enforcement "
            "of Android security policies (DSN 2016)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="route diagnostic logging (heartbeats, HTTP access) to stderr "
        "at this level; also settable via REPRO_LOG (default: logging "
        "unconfigured, output unchanged)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "demo",
        help="run the paper's running example",
        description=(
            "Extract, synthesize and derive policies for the paper's "
            "two-app running example, printing every scenario and policy."
        ),
    )
    demo.add_argument(
        "--scenarios",
        type=int,
        default=8,
        help="max scenarios to enumerate per vulnerability signature "
        "(default: %(default)s)",
    )
    demo.set_defaults(func=_cmd_demo)

    corpus = sub.add_parser(
        "corpus",
        help="generate the synthetic market corpus",
        description=(
            "Generate the seeded synthetic market corpus, extract each "
            "app, and save the models as JSON (one file per app)."
        ),
    )
    corpus.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="corpus fraction of the paper's 4,000 apps "
        "(default: %(default)s)",
    )
    corpus.add_argument(
        "--seed",
        type=int,
        default=2016,
        help="corpus generator seed (default: %(default)s)",
    )
    corpus.add_argument(
        "-o",
        "--output",
        required=True,
        help="directory receiving one <package>.json model per app",
    )
    corpus.set_defaults(func=_cmd_corpus)

    analyze = sub.add_parser(
        "analyze",
        help="analyze a bundle of saved app models",
        description=(
            "Load saved app models as one bundle, synthesize exploit "
            "scenarios and preventive policies, and print them."
        ),
    )
    analyze.add_argument(
        "models", nargs="+", help="app-model JSON files (from `repro corpus`)"
    )
    analyze.add_argument(
        "--scenarios",
        type=int,
        default=8,
        help="max scenarios per signature (default: %(default)s)",
    )
    analyze.add_argument(
        "--alloy", help="also export the bundle's Alloy specification here"
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-signature synthesis "
        "(default: %(default)s = serial)",
    )
    analyze.add_argument(
        "--shared-encoding",
        dest="shared_encoding",
        action="store_true",
        default=True,
        help="translate the bundle once and enumerate every signature "
        "under selector assumptions on one warm solver (default)",
    )
    analyze.add_argument(
        "--per-signature",
        dest="shared_encoding",
        action="store_false",
        help="translate a fresh problem per signature (byte-identical "
        "findings; finer parallel granularity)",
    )
    analyze.add_argument(
        "--solver-backend",
        choices=sorted(SOLVER_BACKENDS),
        default=DEFAULT_BACKEND,
        help="SAT backend: 'fast' (flat-arena, default) or 'reference' "
        "(the readable oracle); findings are byte-identical either way",
    )
    analyze.set_defaults(func=_cmd_analyze)

    pipeline = sub.add_parser(
        "pipeline",
        help="run the parallel cached analysis pipeline over a corpus",
        description=(
            "Generate a corpus, partition it into bundles, and run the "
            "parallel cached analysis pipeline end to end, with optional "
            "JSONL span tracing and a machine-readable run report."
        ),
    )
    pipeline.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="corpus fraction (default: %(default)s)",
    )
    pipeline.add_argument(
        "--seed",
        type=int,
        default=2016,
        help="corpus/partition seed (default: %(default)s)",
    )
    pipeline.add_argument(
        "--bundle-size",
        type=int,
        default=8,
        help="apps per bundle (default: %(default)s)",
    )
    pipeline.add_argument(
        "--scenarios",
        type=int,
        default=4,
        help="max scenarios per signature (default: %(default)s)",
    )
    pipeline.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default: %(default)s = serial; any value "
        "produces byte-identical findings)",
    )
    pipeline.add_argument(
        "--cache-dir",
        help="persistent cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-pipeline)",
    )
    pipeline.add_argument(
        "--no-cache", action="store_true", help="disable the persistent cache"
    )
    pipeline.add_argument(
        "--trace",
        help="record a JSONL span trace here (render with `repro trace`, "
        "export with `repro export-trace`)",
    )
    pipeline.add_argument(
        "--watch",
        action="store_true",
        help="tail live solver heartbeats (conflicts/sec, restarts, "
        "learned clauses, budget headroom) from every worker while the "
        "pipeline runs, and flag workers that go silent",
    )
    pipeline.add_argument(
        "--progress-interval",
        type=int,
        default=256,
        help="with --watch: publish a solver progress snapshot every N "
        "conflicts (default: %(default)s)",
    )
    pipeline.add_argument(
        "--stall-after",
        type=float,
        default=10.0,
        help="with --watch: warn when a previously heartbeating worker "
        "goes silent for this many seconds (default: %(default)s)",
    )
    pipeline.add_argument("--report", help="write the JSON run report here")
    pipeline.add_argument(
        "--findings", help="write canonical JSON findings here"
    )
    pipeline.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task timeout in seconds on the process-pool path "
        "(default: none)",
    )
    pipeline.add_argument(
        "--task-retries",
        type=int,
        default=2,
        help="retries per task after its first attempt "
        "(default: %(default)s)",
    )
    pipeline.add_argument(
        "--conflict-budget",
        type=int,
        default=None,
        help="max CDCL conflicts per synthesis task; exhausting it "
        "degrades the task to a partial result (default: unlimited)",
    )
    pipeline.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock seconds per synthesis task before it degrades "
        "to a partial result (default: unlimited)",
    )
    pipeline.add_argument(
        "--strict",
        action="store_true",
        help="exit 3 if any task failed and 2 if any task degraded "
        "(default: exit 0 whenever the run completes)",
    )
    pipeline.add_argument(
        "--shared-encoding",
        dest="shared_encoding",
        action="store_true",
        default=True,
        help="one synthesis task per bundle on a shared warm solver "
        "(default)",
    )
    pipeline.add_argument(
        "--per-signature",
        dest="shared_encoding",
        action="store_false",
        help="one synthesis task per (bundle, signature) pair "
        "(byte-identical findings; finer parallel granularity)",
    )
    pipeline.add_argument(
        "--solver-backend",
        choices=sorted(SOLVER_BACKENDS),
        default=DEFAULT_BACKEND,
        help="SAT backend: 'fast' (flat-arena, default) or 'reference' "
        "(the readable oracle); outputs and cache keys are "
        "backend-independent",
    )
    pipeline.set_defaults(func=_cmd_pipeline)

    simulate = sub.add_parser(
        "simulate",
        help="enforce synthesized policies against the Figure 1 attack",
        description=(
            "Synthesize policies for the running example, install the two "
            "benign apps plus the malicious app on the simulated device, "
            "run the attack under PEP/PDP enforcement, and print the "
            "enforcement audit log (every decision, in order)."
        ),
    )
    simulate.add_argument(
        "--scenarios",
        type=int,
        default=8,
        help="max scenarios per signature during synthesis "
        "(default: %(default)s)",
    )
    simulate.add_argument(
        "--entry",
        default="com.example.navigation/LocationFinder",
        help="component the framework starts to trigger the attack "
        "(default: %(default)s)",
    )
    simulate.add_argument(
        "--consent",
        action="store_true",
        help="answer every security prompt with 'allow' "
        "(default: the cautious user denies)",
    )
    from repro.enforcement import DEFAULT_PDP_BACKEND, PDP_BACKENDS

    simulate.add_argument(
        "--pdp-backend",
        choices=sorted(PDP_BACKENDS),
        default=DEFAULT_PDP_BACKEND,
        help="policy decision engine: 'compiled' (indexed dispatch + "
        "decision cache, default) or 'linear' (the readable reference "
        "scan); decisions and audit output are identical either way",
    )
    simulate.add_argument(
        "--audit", help="write the audit log here as JSONL"
    )
    simulate.set_defaults(func=_cmd_simulate)

    trace = sub.add_parser(
        "trace",
        help="render a JSONL span trace: tree + top-k hotspots",
        description=(
            "Read a JSONL trace file (from `pipeline --trace` or "
            "repro.obs.enable_tracing) and print the nested span tree "
            "followed by the top-k span names by self time."
        ),
    )
    trace.add_argument("trace_file", help="JSONL trace file to render")
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="hotspot rows to show (default: %(default)s)",
    )
    trace.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="limit the rendered tree depth (default: unlimited)",
    )
    trace.set_defaults(func=_cmd_trace)

    export_trace = sub.add_parser(
        "export-trace",
        help="convert a JSONL trace to Chrome trace-event JSON (Perfetto)",
        description=(
            "Read a JSONL span trace (spans, begin events, solver progress "
            "heartbeats) and write Chrome trace-event JSON: one process "
            "track per pid, counter tracks for the solver's live counters, "
            "unfinished spans as open slices.  Load the result in "
            "https://ui.perfetto.dev or chrome://tracing."
        ),
    )
    export_trace.add_argument("trace_file", help="JSONL trace file to convert")
    export_trace.add_argument(
        "-o",
        "--output",
        required=True,
        help="write the Chrome trace-event JSON here",
    )
    export_trace.set_defaults(func=_cmd_export_trace)

    export_metrics = sub.add_parser(
        "export-metrics",
        help="render a run report's metrics as Prometheus text exposition",
        description=(
            "Read the metrics snapshot inside a pipeline run report (from "
            "`repro pipeline --report`) -- or a bare snapshot JSON -- and "
            "render it as Prometheus text exposition format 0.0.4."
        ),
    )
    export_metrics.add_argument(
        "report", help="run-report JSON (or bare metrics snapshot JSON)"
    )
    export_metrics.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the exposition here (default: stdout)",
    )
    export_metrics.set_defaults(func=_cmd_export_metrics)

    serve_metrics = sub.add_parser(
        "serve-metrics",
        help="serve a run report's metrics on a local /metrics endpoint",
        description=(
            "Serve the metrics snapshot inside a run report as Prometheus "
            "text exposition on GET /metrics (stdlib HTTP server, no "
            "dependencies).  The report file is re-read on every scrape."
        ),
    )
    serve_metrics.add_argument(
        "report", help="run-report JSON (or bare metrics snapshot JSON)"
    )
    serve_metrics.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve_metrics.add_argument(
        "--port",
        type=int,
        default=9464,
        help="bind port (default: %(default)s; 0 picks a free port)",
    )
    serve_metrics.set_defaults(func=_cmd_serve_metrics)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived policy service (warm incremental state)",
        description=(
            "Start the repro policy daemon: line-delimited JSON requests "
            "over TCP (or a UNIX socket with --socket), one warm analysis "
            "session per device.  install/uninstall/update/grant/revoke "
            "answer with detection deltas; analyze/policies/decide pay at "
            "most one warm re-synthesis per composition and are byte-"
            "identical to cold runs.  --metrics-port exposes Prometheus "
            "gauges for sessions, queue depth, warm-hit rate and request "
            "latency.  See docs/SERVICE.md for the protocol."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=7461,
        help="bind port (default: %(default)s; 0 picks a free port)",
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="listen on a UNIX socket at PATH instead of TCP",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve Prometheus metrics on this port "
        "(0 picks a free port; default: no metrics endpoint)",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write a JSON line with the bound address to PATH once "
        "accepting (lets scripts wait for startup)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="analysis worker threads (default: %(default)s)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=32,
        help="max queued requests drained per device batch "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock bound per request (default: none; synthesis is "
        "bounded by --conflict-budget/--time-budget degradation instead)",
    )
    serve.add_argument(
        "--scenarios",
        type=int,
        default=2,
        help="max scenarios per signature (default: %(default)s)",
    )
    serve.add_argument(
        "--conflict-budget",
        type=int,
        default=None,
        help="per-signature solver conflict budget; over-budget synthesis "
        "degrades to a partial result (default: unbounded)",
    )
    serve.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-signature synthesis time budget with the same "
        "degradation semantics (default: unbounded)",
    )
    serve.add_argument(
        "--per-signature",
        dest="shared_encoding",
        action="store_false",
        default=True,
        help="use per-signature synthesis instead of the shared-encoding "
        "default",
    )
    serve.add_argument(
        "--solver-backend",
        choices=sorted(SOLVER_BACKENDS),
        default=DEFAULT_BACKEND,
        help="SAT backend for session engines (default: %(default)s)",
    )
    serve.add_argument(
        "--pdp-backend",
        choices=["compiled", "linear"],
        default="compiled",
        help="policy decision engine (default: %(default)s)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="per-session warm result cache bound, 0 = unbounded "
        "(default: %(default)s)",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live view of a running policy service (sessions, queues, cost)",
        description=(
            "Poll a running `repro serve` daemon's healthz and status verbs "
            "and render a per-device table (installed apps, requests, queue "
            "depth, in-flight age, warm-hit rate, cache occupancy) plus the "
            "top cost-ledger accounts by solver conflicts."
        ),
    )
    top.add_argument(
        "--host", default="127.0.0.1", help="service address (default: %(default)s)"
    )
    top.add_argument(
        "--port",
        type=int,
        default=7461,
        help="service port (default: %(default)s)",
    )
    top.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="connect over a UNIX socket at PATH instead of TCP",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: %(default)s)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (scripting / tests)",
    )
    top.set_defaults(func=_cmd_top)

    adversarial = sub.add_parser(
        "adversarial",
        help="generate the seeded adversarial corpus and score detection",
        description=(
            "Generate power-law ICC bundles with planted multi-step "
            "attacks (permission re-delegation chains, provider leaks, "
            "dynamic-receiver hijacks, app collusion) plus near-miss "
            "decoys, optionally write the machine-readable ground-truth "
            "manifest, run the analysis and print per-signature "
            "precision/recall against the planted truth."
        ),
    )
    adversarial.add_argument(
        "--seed",
        type=int,
        default=2016,
        help="corpus seed; same seed reproduces the corpus byte-for-byte "
        "(default: %(default)s)",
    )
    adversarial.add_argument(
        "--bundles",
        type=int,
        default=4,
        help="number of independent app bundles (default: %(default)s)",
    )
    adversarial.add_argument(
        "--apps-per-bundle",
        type=int,
        default=10,
        help="background apps per bundle, minimum 4 (default: %(default)s)",
    )
    adversarial.add_argument(
        "--plants",
        type=int,
        default=1,
        help="planted attacks per signature per bundle "
        "(default: %(default)s)",
    )
    adversarial.add_argument(
        "--decoys",
        type=int,
        default=1,
        help="near-miss decoys per signature per bundle "
        "(default: %(default)s)",
    )
    adversarial.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the ground-truth manifest as JSON to PATH",
    )
    adversarial.add_argument(
        "--no-analyze",
        action="store_true",
        help="only generate (and optionally write the manifest); skip the "
        "synthesis run and scoring",
    )
    adversarial.add_argument(
        "--scenarios",
        type=int,
        default=4,
        help="max scenarios per signature during analysis "
        "(default: %(default)s)",
    )
    adversarial.add_argument(
        "--per-signature",
        dest="shared_encoding",
        action="store_false",
        default=True,
        help="analyze with the per-signature synthesis path instead of "
        "the shared-encoding default",
    )
    adversarial.add_argument(
        "--solver-backend",
        choices=sorted(SOLVER_BACKENDS),
        default=DEFAULT_BACKEND,
        help="SAT backend for the analysis (default: %(default)s)",
    )
    adversarial.add_argument(
        "--min-accuracy",
        type=float,
        default=0.0,
        help="exit 2 if any signature's precision or recall falls below "
        "this bound (default: %(default)s)",
    )
    adversarial.set_defaults(func=_cmd_adversarial)

    bench = sub.add_parser(
        "bench",
        help="run the benchmark workloads / compare two BENCH snapshots",
        description=(
            "Run the paper-corpus benchmark workloads (Fig 5 extraction, "
            "Table II cold/warm pipeline, Table I accuracy) and write a "
            "schema-versioned BENCH_<label>.json snapshot; or, with "
            "--compare OLD NEW, diff two snapshots with per-metric "
            "relative thresholds and exit 2 on regression."
        ),
    )
    bench.add_argument(
        "--label",
        default="local",
        help="snapshot label; the output file is BENCH_<label>.json "
        "(default: %(default)s)",
    )
    bench.add_argument(
        "-o",
        "--output",
        default=".",
        help="directory receiving the snapshot (default: %(default)s)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: tiny corpus, a slice of the accuracy suites",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="corpus fraction for the workloads (default: %(default)s)",
    )
    bench.add_argument(
        "--bundle-size",
        type=int,
        default=8,
        help="apps per pipeline bundle (default: %(default)s)",
    )
    bench.add_argument(
        "--scenarios",
        type=int,
        default=2,
        help="max scenarios per signature (default: %(default)s)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="pipeline worker processes (default: %(default)s)",
    )
    bench.add_argument(
        "--seed",
        type=int,
        default=2016,
        help="corpus/partition seed (default: %(default)s)",
    )
    bench.add_argument(
        "--per-signature",
        dest="shared_encoding",
        action="store_false",
        default=True,
        help="benchmark the per-signature synthesis path instead of the "
        "shared-encoding default",
    )
    bench.add_argument(
        "--solver-backend",
        choices=sorted(SOLVER_BACKENDS),
        default=DEFAULT_BACKEND,
        help="SAT backend the workloads run on (default: %(default)s)",
    )
    bench.add_argument(
        "--workloads",
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated subset of workloads to run (default: all); "
        "e.g. --workloads accuracy_scaled for the adversarial-corpus "
        "precision/recall run alone",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="compare two BENCH snapshots instead of running workloads",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="with --compare: relative change tolerated per metric "
        "(default: %(default)s)",
    )
    bench.add_argument(
        "--metric-threshold",
        action="append",
        default=[],
        metavar="METRIC=REL",
        help="with --compare: override the relative threshold for one "
        "metric (repeatable); e.g. --metric-threshold recall=0.0 fails "
        "on any recall drop beyond the noise floor",
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help="with --compare: also fail on missing metrics or "
        "non-comparable workload configs",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help="with --compare: report regressions but always exit 0 "
        "(CI smoke mode)",
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    level_name = args.log_level or os.environ.get("REPRO_LOG")
    if level_name:
        logging.basicConfig(
            level=getattr(logging, level_name.upper(), logging.INFO),
            stream=sys.stderr,
            format="[%(asctime)s %(levelname)s %(name)s] %(message)s",
            datefmt="%H:%M:%S",
        )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
