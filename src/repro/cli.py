"""Command-line interface.

Usage (``python -m repro <command>``):

- ``demo``                      -- run the paper's running example end to end.
- ``corpus --scale S -o DIR``   -- generate the synthetic market corpus and
  save each app's extracted model as JSON into DIR.
- ``analyze MODEL.json ...``    -- analyze a bundle of saved app models:
  print scenarios and policies; ``--alloy FILE`` additionally exports the
  bundle's Alloy specification; ``--jobs N`` fans synthesis across
  signatures in parallel.
- ``pipeline``                  -- generate a corpus, partition it into
  bundles, and run the parallel cached analysis pipeline end to end;
  ``--jobs N`` controls the process pool, ``--cache-dir`` the persistent
  cache, ``--report``/``--findings`` write machine-readable outputs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.core import serialize
from repro.core.model import BundleModel
from repro.core.separ import Separ


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.benchsuite.running_example import build_app1, build_app2

    report = Separ(
        scenarios_per_signature=args.scenarios
    ).analyze_apks([build_app1(), build_app2()])
    print(report.summary())
    print()
    for scenario in report.scenarios:
        print(f"[{scenario.vulnerability}] {scenario.description}")
    print()
    for policy in report.policies:
        print(f"policy ({policy.vulnerability}): {policy.description}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.statics import extract_app
    from repro.workloads import CorpusConfig, CorpusGenerator

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    generator = CorpusGenerator(CorpusConfig(scale=args.scale, seed=args.seed))
    apks = generator.generate()
    for apk in apks:
        model = extract_app(apk)
        path = out_dir / f"{model.package}.json"
        path.write_text(serialize.dumps_app(model))
    counts = generator.ledger.counts()
    print(f"wrote {len(apks)} app models to {out_dir}")
    print(f"injected vulnerabilities: {counts}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    apps = []
    for path in args.models:
        text = pathlib.Path(path).read_text()
        apps.append(serialize.loads_app(text))
    bundle = BundleModel(apps=apps)
    if args.jobs > 1:
        from repro.pipeline import AnalysisPipeline

        pipeline = AnalysisPipeline(
            jobs=args.jobs, scenarios_per_signature=args.scenarios
        )
        report = pipeline.analyze_bundles([bundle]).reports[0]
    else:
        separ = Separ(scenarios_per_signature=args.scenarios)
        report = separ.analyze_bundle(bundle)
    print(report.summary())
    for scenario in report.scenarios:
        print(f"\n[{scenario.vulnerability}] {scenario.description}")
    print()
    for policy in report.policies:
        print(f"policy ({policy.vulnerability}): {policy.description}")
    if args.alloy:
        from repro.core import alloy_export

        pathlib.Path(args.alloy).write_text(alloy_export.render_bundle(bundle))
        print(f"\nAlloy specification written to {args.alloy}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.pipeline import AnalysisPipeline, NullCache, PipelineCache
    from repro.workloads import CorpusConfig, CorpusGenerator
    from repro.workloads.bundles import partition_bundles

    generator = CorpusGenerator(CorpusConfig(scale=args.scale, seed=args.seed))
    apks = generator.generate()
    bundles = partition_bundles(
        apks, bundle_size=args.bundle_size, seed=args.seed
    )
    if args.no_cache:
        cache = NullCache()
    else:
        cache_dir = pathlib.Path(args.cache_dir) if args.cache_dir else None
        cache = PipelineCache(cache_dir)
    pipeline = AnalysisPipeline(
        jobs=args.jobs,
        cache=cache,
        scenarios_per_signature=args.scenarios,
    )
    result = pipeline.run(bundles)
    report = result.run_report
    print(
        f"pipeline: {report.num_apps} apps in {report.num_bundles} bundles, "
        f"jobs={report.jobs}"
    )
    print(
        f"  scenarios: {report.num_scenarios}, "
        f"policies: {report.num_policies}"
    )
    for timing in report.stages:
        print(f"  {timing.name}: {timing.seconds:.2f}s")
    print(
        f"  cache: {report.cache.total_hits} hits, "
        f"{report.cache.total_misses} misses, "
        f"{report.cache.total_invalidations} invalidations"
    )
    solver = report.solver
    print(
        f"  solver: {solver.solver_calls} calls, "
        f"{solver.conflicts} conflicts, {solver.decisions} decisions, "
        f"{solver.propagations} propagations"
    )
    if args.report:
        pathlib.Path(args.report).write_text(report.dumps())
        print(f"run report written to {args.report}")
    if args.findings:
        import json

        pathlib.Path(args.findings).write_text(
            json.dumps(result.findings_dict(), indent=2, sort_keys=True)
        )
        print(f"findings written to {args.findings}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SEPAR reproduction: formal synthesis and automatic enforcement "
            "of Android security policies (DSN 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.add_argument("--scenarios", type=int, default=8)
    demo.set_defaults(func=_cmd_demo)

    corpus = sub.add_parser(
        "corpus", help="generate the synthetic market corpus"
    )
    corpus.add_argument("--scale", type=float, default=0.01)
    corpus.add_argument("--seed", type=int, default=2016)
    corpus.add_argument("-o", "--output", required=True)
    corpus.set_defaults(func=_cmd_corpus)

    analyze = sub.add_parser(
        "analyze", help="analyze a bundle of saved app models"
    )
    analyze.add_argument("models", nargs="+")
    analyze.add_argument("--scenarios", type=int, default=8)
    analyze.add_argument("--alloy", help="export the Alloy spec here")
    analyze.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for per-signature synthesis",
    )
    analyze.set_defaults(func=_cmd_analyze)

    pipeline = sub.add_parser(
        "pipeline",
        help="run the parallel cached analysis pipeline over a corpus",
    )
    pipeline.add_argument("--scale", type=float, default=0.01)
    pipeline.add_argument("--seed", type=int, default=2016)
    pipeline.add_argument("--bundle-size", type=int, default=8)
    pipeline.add_argument("--scenarios", type=int, default=4)
    pipeline.add_argument(
        "--jobs", type=int, default=1, help="worker processes"
    )
    pipeline.add_argument(
        "--cache-dir",
        help="persistent cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-pipeline)",
    )
    pipeline.add_argument(
        "--no-cache", action="store_true", help="disable the persistent cache"
    )
    pipeline.add_argument("--report", help="write the JSON run report here")
    pipeline.add_argument(
        "--findings", help="write canonical JSON findings here"
    )
    pipeline.set_defaults(func=_cmd_pipeline)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
