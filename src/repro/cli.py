"""Command-line interface.

Usage (``python -m repro <command>``):

- ``demo``                      -- run the paper's running example end to end.
- ``corpus --scale S -o DIR``   -- generate the synthetic market corpus and
  save each app's extracted model as JSON into DIR.
- ``analyze MODEL.json ...``    -- analyze a bundle of saved app models:
  print scenarios and policies; ``--alloy FILE`` additionally exports the
  bundle's Alloy specification.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.core import serialize
from repro.core.model import BundleModel
from repro.core.separ import Separ


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.benchsuite.running_example import build_app1, build_app2

    report = Separ(
        scenarios_per_signature=args.scenarios
    ).analyze_apks([build_app1(), build_app2()])
    print(report.summary())
    print()
    for scenario in report.scenarios:
        print(f"[{scenario.vulnerability}] {scenario.description}")
    print()
    for policy in report.policies:
        print(f"policy ({policy.vulnerability}): {policy.description}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.statics import extract_app
    from repro.workloads import CorpusConfig, CorpusGenerator

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    generator = CorpusGenerator(CorpusConfig(scale=args.scale, seed=args.seed))
    apks = generator.generate()
    for apk in apks:
        model = extract_app(apk)
        path = out_dir / f"{model.package}.json"
        path.write_text(serialize.dumps_app(model))
    counts = generator.ledger.counts()
    print(f"wrote {len(apks)} app models to {out_dir}")
    print(f"injected vulnerabilities: {counts}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    apps = []
    for path in args.models:
        text = pathlib.Path(path).read_text()
        apps.append(serialize.loads_app(text))
    bundle = BundleModel(apps=apps)
    separ = Separ(scenarios_per_signature=args.scenarios)
    report = separ.analyze_bundle(bundle)
    print(report.summary())
    for scenario in report.scenarios:
        print(f"\n[{scenario.vulnerability}] {scenario.description}")
    print()
    for policy in report.policies:
        print(f"policy ({policy.vulnerability}): {policy.description}")
    if args.alloy:
        from repro.core import alloy_export

        pathlib.Path(args.alloy).write_text(alloy_export.render_bundle(bundle))
        print(f"\nAlloy specification written to {args.alloy}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SEPAR reproduction: formal synthesis and automatic enforcement "
            "of Android security policies (DSN 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.add_argument("--scenarios", type=int, default=8)
    demo.set_defaults(func=_cmd_demo)

    corpus = sub.add_parser(
        "corpus", help="generate the synthetic market corpus"
    )
    corpus.add_argument("--scale", type=float, default=0.01)
    corpus.add_argument("--seed", type=int, default=2016)
    corpus.add_argument("-o", "--output", required=True)
    corpus.set_defaults(func=_cmd_corpus)

    analyze = sub.add_parser(
        "analyze", help="analyze a bundle of saved app models"
    )
    analyze.add_argument("models", nargs="+")
    analyze.add_argument("--scenarios", type=int, default=8)
    analyze.add_argument("--alloy", help="export the Alloy spec here")
    analyze.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
