"""The policy decision point: ECA policies in, verdicts out.

Realized in the paper as an independent Android app storing the synthesized
policies; here an in-process object.  Two interchangeable backends
implement one decision contract (see ``docs/ENFORCEMENT.md``):

- :class:`PolicyDecisionPoint` (``linear``, this module) -- the readable
  reference: ``decide`` scans the ordered policy list and the **first**
  policy whose condition matches the intercepted event determines the
  outcome (first-match-wins).  Kept as the oracle the compiled backend is
  differentially tested against.
- :class:`~repro.enforcement.compiled.CompiledPolicyDecisionPoint`
  (``compiled``) -- hash-dispatches on ``(event kind, receiver, action)``
  with a fallback matcher chain and memoizes non-prompting decisions;
  decision- and audit-identical to the linear backend by construction and
  by test.

Construct either by name with :func:`repro.enforcement.make_pdp`
(mirroring :func:`repro.sat.make_solver`).

**The decision contract.**  ``decide(event_kind, event)`` returns a
:class:`Decision` (``ALLOW`` or ``DENY``) and, as a side effect, records
exactly one :class:`DecisionRecord` in :attr:`PolicyDecisionPoint.log`
(a bounded in-memory window of recent decisions) and exactly one
:class:`~repro.enforcement.audit.AuditRecord` in
:attr:`PolicyDecisionPoint.audit` -- including the default-allow
fallthroughs that match no policy.  The audit log is the durable,
queryable trail; ``log`` is a convenience view for interactive use and
keeps only the most recent ``log_window`` records.

**Prompt-callback semantics.**  A matching policy whose action is
``PolicyAction.DENY`` denies outright.  A matching ``PROMPT`` policy
routes to the injectable user-consent callback (the paper shows the user
the threat description and the event parameters, see
:func:`format_prompt`): the callback receives ``(policy, event)`` and its
boolean answer becomes the verdict (``True`` -> allow).  The default
callback, :func:`deny_all_prompts`, models the cautious user and refuses
everything; tests and headless deployments inject their own.  Because a
prompt consults the user *per event*, prompt outcomes are never memoized
by the compiled backend.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent
from repro.enforcement.audit import AuditLog
from repro.obs import get_metrics

#: Default bound on the in-memory ``PolicyDecisionPoint.log`` window.
#: The audit log is the unbounded (or rotation-managed) record; the
#: decision log only exists for interactive inspection and must not grow
#: without bound at enforcement-traffic rates.
DECISION_LOG_WINDOW = 1024


class Decision(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass
class DecisionRecord:
    event_kind: PolicyEvent
    event: IccEvent
    policy: Optional[ECAPolicy]
    decision: Decision
    prompted: bool = False


PromptCallback = Callable[[ECAPolicy, IccEvent], bool]


def deny_all_prompts(policy: ECAPolicy, event: IccEvent) -> bool:
    """Default consent callback: the cautious user refuses."""
    return False


def format_prompt(policy: ECAPolicy, event: IccEvent) -> str:
    """The dialog text shown to the user (Section VI: "the description of
    security threat as well as the name and parameters of the intercepted
    event")."""
    lines = [
        "Security prompt",
        f"  threat:   {policy.vulnerability}",
        f"  details:  {policy.description}" if policy.description else None,
        f"  event:    {policy.event.value}",
        f"  sender:   {event.sender}",
        f"  receiver: {event.receiver or '(unresolved)'}",
    ]
    if event.action:
        lines.append(f"  action:   {event.action}")
    if event.extras:
        payload = ", ".join(sorted(r.value for r in event.extras))
        lines.append(f"  payload:  {payload}")
    lines.append("Allow this operation?")
    return "\n".join(l for l in lines if l)


class PolicyDecisionPoint:
    """The linear reference PDP: first-match-wins over the policy list."""

    def __init__(
        self,
        policies: Sequence[ECAPolicy] = (),
        prompt_callback: PromptCallback = deny_all_prompts,
        audit: Optional[AuditLog] = None,
        log_window: int = DECISION_LOG_WINDOW,
    ) -> None:
        self.prompt_callback = prompt_callback
        #: Recent decisions, newest last, bounded to ``log_window`` entries
        #: (the audit log below is the complete trail).
        self.log: Deque[DecisionRecord] = deque(maxlen=log_window)
        #: Every decision is recorded here, in decision order, including the
        #: default-allow fallthroughs that match no policy.
        self.audit = audit if audit is not None else AuditLog()
        self._policies: List[ECAPolicy] = []
        self.policies = list(policies)

    # ------------------------------------------------------------------
    # Policy installation.  ``policies`` is a property so that backends
    # that precompute dispatch state (the compiled index, the decision
    # cache) observe every install/remove -- DeviceGuard._refresh swaps
    # the whole set via plain assignment.
    @property
    def policies(self) -> List[ECAPolicy]:
        return self._policies

    @policies.setter
    def policies(self, policies: Sequence[ECAPolicy]) -> None:
        self._policies = list(policies)
        self._policies_changed()

    def add_policy(self, policy: ECAPolicy) -> None:
        self._policies.append(policy)
        self._policies_changed()

    def _policies_changed(self) -> None:
        """Hook for backends with derived dispatch state; linear has none."""

    # ------------------------------------------------------------------
    def _audit(
        self,
        event_kind: PolicyEvent,
        event: IccEvent,
        policy: Optional[ECAPolicy],
        decision: Decision,
        prompted: bool,
        approved: Optional[bool],
        context: Optional[str],
    ) -> None:
        self.audit.append(
            event_kind=event_kind.value,
            sender=event.sender,
            receiver=event.receiver,
            action=event.action,
            payload=sorted(r.value for r in event.extras),
            sender_permissions=sorted(event.sender_permissions),
            verdict=decision.value,
            policy_vulnerability=policy.vulnerability if policy else None,
            policy_action=policy.action.value if policy else None,
            policy_description=policy.description if policy else None,
            prompted=prompted,
            prompt_approved=approved,
            context=context,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"pdp.decisions.{decision.value}").inc()
            if prompted:
                metrics.counter("pdp.prompts").inc()

    def _match(
        self, event_kind: PolicyEvent, event: IccEvent
    ) -> Optional[ECAPolicy]:
        """First policy whose condition the event violates, else None.

        This linear scan *is* the reference semantics; the compiled
        backend overrides it with indexed dispatch and must return the
        identical policy for every event.
        """
        for policy in self._policies:
            if policy.matches(event_kind, event):
                return policy
        return None

    def decide(
        self,
        event_kind: PolicyEvent,
        event: IccEvent,
        context: Optional[str] = None,
    ) -> Decision:
        policy = self._match(event_kind, event)
        return self._finalize(event_kind, event, policy, context)

    def _finalize(
        self,
        event_kind: PolicyEvent,
        event: IccEvent,
        policy: Optional[ECAPolicy],
        context: Optional[str],
    ) -> Decision:
        """Act on the matched policy: verdict, prompt, log, audit."""
        approved: Optional[bool] = None
        prompted = False
        if policy is None:
            decision = Decision.ALLOW
        elif policy.action is PolicyAction.DENY:
            decision = Decision.DENY
        else:
            approved = self.prompt_callback(policy, event)
            decision = Decision.ALLOW if approved else Decision.DENY
            prompted = True
        self.log.append(
            DecisionRecord(event_kind, event, policy, decision, prompted)
        )
        self._audit(
            event_kind, event, policy, decision, prompted, approved, context
        )
        return decision
