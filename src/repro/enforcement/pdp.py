"""The policy decision point.

Realized in the paper as an independent Android app storing the synthesized
policies; here an in-process object.  ``decide`` evaluates an intercepted
ICC event against every stored policy: the first matching policy determines
the outcome.  PROMPT policies route to a user-consent callback (the paper
prompts the user with the threat description and event parameters); the
callback is injectable so tests and headless deployments can fix an answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent
from repro.enforcement.audit import AuditLog
from repro.obs import get_metrics


class Decision(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass
class DecisionRecord:
    event_kind: PolicyEvent
    event: IccEvent
    policy: Optional[ECAPolicy]
    decision: Decision
    prompted: bool = False


PromptCallback = Callable[[ECAPolicy, IccEvent], bool]


def deny_all_prompts(policy: ECAPolicy, event: IccEvent) -> bool:
    """Default consent callback: the cautious user refuses."""
    return False


def format_prompt(policy: ECAPolicy, event: IccEvent) -> str:
    """The dialog text shown to the user (Section VI: "the description of
    security threat as well as the name and parameters of the intercepted
    event")."""
    lines = [
        "Security prompt",
        f"  threat:   {policy.vulnerability}",
        f"  details:  {policy.description}" if policy.description else None,
        f"  event:    {policy.event.value}",
        f"  sender:   {event.sender}",
        f"  receiver: {event.receiver or '(unresolved)'}",
    ]
    if event.action:
        lines.append(f"  action:   {event.action}")
    if event.extras:
        payload = ", ".join(sorted(r.value for r in event.extras))
        lines.append(f"  payload:  {payload}")
    lines.append("Allow this operation?")
    return "\n".join(l for l in lines if l)


class PolicyDecisionPoint:
    def __init__(
        self,
        policies: Sequence[ECAPolicy] = (),
        prompt_callback: PromptCallback = deny_all_prompts,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self.policies: List[ECAPolicy] = list(policies)
        self.prompt_callback = prompt_callback
        self.log: List[DecisionRecord] = []
        #: Every decision is recorded here, in decision order, including the
        #: default-allow fallthroughs that match no policy.
        self.audit = audit if audit is not None else AuditLog()

    def add_policy(self, policy: ECAPolicy) -> None:
        self.policies.append(policy)

    def _audit(
        self,
        event_kind: PolicyEvent,
        event: IccEvent,
        policy: Optional[ECAPolicy],
        decision: Decision,
        prompted: bool,
        approved: Optional[bool],
        context: Optional[str],
    ) -> None:
        self.audit.append(
            event_kind=event_kind.value,
            sender=event.sender,
            receiver=event.receiver,
            action=event.action,
            payload=sorted(r.value for r in event.extras),
            sender_permissions=sorted(event.sender_permissions),
            verdict=decision.value,
            policy_vulnerability=policy.vulnerability if policy else None,
            policy_action=policy.action.value if policy else None,
            policy_description=policy.description if policy else None,
            prompted=prompted,
            prompt_approved=approved,
            context=context,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"pdp.decisions.{decision.value}").inc()
            if prompted:
                metrics.counter("pdp.prompts").inc()

    def decide(
        self,
        event_kind: PolicyEvent,
        event: IccEvent,
        context: Optional[str] = None,
    ) -> Decision:
        for policy in self.policies:
            if not policy.matches(event_kind, event):
                continue
            approved: Optional[bool] = None
            if policy.action is PolicyAction.DENY:
                decision = Decision.DENY
                prompted = False
            else:
                approved = self.prompt_callback(policy, event)
                decision = Decision.ALLOW if approved else Decision.DENY
                prompted = True
            self.log.append(
                DecisionRecord(event_kind, event, policy, decision, prompted)
            )
            self._audit(
                event_kind, event, policy, decision, prompted, approved, context
            )
            return decision
        self.log.append(DecisionRecord(event_kind, event, None, Decision.ALLOW))
        self._audit(
            event_kind, event, None, Decision.ALLOW, False, None, context
        )
        return Decision.ALLOW
