"""The policy decision point.

Realized in the paper as an independent Android app storing the synthesized
policies; here an in-process object.  ``decide`` evaluates an intercepted
ICC event against every stored policy: the first matching policy determines
the outcome.  PROMPT policies route to a user-consent callback (the paper
prompts the user with the threat description and event parameters); the
callback is injectable so tests and headless deployments can fix an answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent


class Decision(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass
class DecisionRecord:
    event_kind: PolicyEvent
    event: IccEvent
    policy: Optional[ECAPolicy]
    decision: Decision
    prompted: bool = False


PromptCallback = Callable[[ECAPolicy, IccEvent], bool]


def deny_all_prompts(policy: ECAPolicy, event: IccEvent) -> bool:
    """Default consent callback: the cautious user refuses."""
    return False


def format_prompt(policy: ECAPolicy, event: IccEvent) -> str:
    """The dialog text shown to the user (Section VI: "the description of
    security threat as well as the name and parameters of the intercepted
    event")."""
    lines = [
        "Security prompt",
        f"  threat:   {policy.vulnerability}",
        f"  details:  {policy.description}" if policy.description else None,
        f"  event:    {policy.event.value}",
        f"  sender:   {event.sender}",
        f"  receiver: {event.receiver or '(unresolved)'}",
    ]
    if event.action:
        lines.append(f"  action:   {event.action}")
    if event.extras:
        payload = ", ".join(sorted(r.value for r in event.extras))
        lines.append(f"  payload:  {payload}")
    lines.append("Allow this operation?")
    return "\n".join(l for l in lines if l)


class PolicyDecisionPoint:
    def __init__(
        self,
        policies: Sequence[ECAPolicy] = (),
        prompt_callback: PromptCallback = deny_all_prompts,
    ) -> None:
        self.policies: List[ECAPolicy] = list(policies)
        self.prompt_callback = prompt_callback
        self.log: List[DecisionRecord] = []

    def add_policy(self, policy: ECAPolicy) -> None:
        self.policies.append(policy)

    def decide(self, event_kind: PolicyEvent, event: IccEvent) -> Decision:
        for policy in self.policies:
            if not policy.matches(event_kind, event):
                continue
            if policy.action is PolicyAction.DENY:
                decision = Decision.DENY
                prompted = False
            else:
                approved = self.prompt_callback(policy, event)
                decision = Decision.ALLOW if approved else Decision.DENY
                prompted = True
            self.log.append(
                DecisionRecord(event_kind, event, policy, decision, prompted)
            )
            return decision
        self.log.append(DecisionRecord(event_kind, event, None, Decision.ALLOW))
        return Decision.ALLOW
