"""APE: the Android Policy Enforcer (Section VI).

A simulated Android runtime executes app IR with real ICC dispatch
(:mod:`repro.enforcement.runtime`); an Xposed-style hooking layer
(:mod:`repro.enforcement.hooks`) intercepts method calls without modifying
the apps.  The policy decision point (:mod:`repro.enforcement.pdp`)
evaluates intercepted ICC events against the synthesized ECA policies, and
the policy enforcement point (:mod:`repro.enforcement.pep`) installs the
hooks, consults the PDP, and skips violating calls -- the app continues in
degraded mode, exactly as inhibiting an asynchronous ICC call does on real
Android.
"""

from repro.enforcement.hooks import HookManager, MethodCall
from repro.enforcement.runtime import AndroidRuntime, Device, RuntimeIntent
from repro.enforcement.pdp import Decision, PolicyDecisionPoint
from repro.enforcement.pep import PolicyEnforcementPoint

__all__ = [
    "HookManager",
    "MethodCall",
    "AndroidRuntime",
    "Device",
    "RuntimeIntent",
    "Decision",
    "PolicyDecisionPoint",
    "PolicyEnforcementPoint",
]
