"""APE: the Android Policy Enforcer (Section VI).

A simulated Android runtime executes app IR with real ICC dispatch
(:mod:`repro.enforcement.runtime`); an Xposed-style hooking layer
(:mod:`repro.enforcement.hooks`) intercepts method calls without modifying
the apps.  The policy decision point (:mod:`repro.enforcement.pdp`)
evaluates intercepted ICC events against the synthesized ECA policies, and
the policy enforcement point (:mod:`repro.enforcement.pep`) installs the
hooks, consults the PDP, and skips violating calls -- the app continues in
degraded mode, exactly as inhibiting an asynchronous ICC call does on real
Android.  Every decision the PDP makes is appended, in decision order, to
an :class:`~repro.enforcement.audit.AuditLog` (:mod:`repro.enforcement.audit`)
that can be queried and serialized to JSONL after a run, with optional
rotation and sampling for sustained traffic.

Two interchangeable PDP backends implement the decision contract
(mirroring the ``repro.sat`` solver-backend registry; full architecture
notes in ``docs/ENFORCEMENT.md``):

- ``linear`` (:class:`~repro.enforcement.pdp.PolicyDecisionPoint`) -- the
  readable first-match-wins scan, kept as the differential-testing oracle.
- ``compiled`` (:class:`~repro.enforcement.compiled.CompiledPolicyDecisionPoint`,
  the default) -- indexed hash-dispatch plus a memoized decision cache;
  decision- and audit-identical to ``linear``, selected for throughput.

Use :func:`make_pdp` to construct one by name.
"""

from typing import Optional, Sequence

from repro.core.policy import ECAPolicy
from repro.enforcement.audit import AuditLog, AuditRecord
from repro.enforcement.compiled import CompiledPolicyDecisionPoint, CompiledPolicySet
from repro.enforcement.hooks import HookManager, MethodCall
from repro.enforcement.runtime import AndroidRuntime, Device, RuntimeIntent
from repro.enforcement.pdp import (
    Decision,
    PolicyDecisionPoint,
    PromptCallback,
    deny_all_prompts,
)
from repro.enforcement.pep import PolicyEnforcementPoint

#: Name -> constructor for every PDP backend.  Names are the values
#: accepted by ``make_pdp(backend=...)`` and ``repro simulate
#: --pdp-backend``.
PDP_BACKENDS = {
    "linear": PolicyDecisionPoint,
    "compiled": CompiledPolicyDecisionPoint,
}

DEFAULT_PDP_BACKEND = "compiled"


def make_pdp(
    policies: Sequence[ECAPolicy] = (),
    backend: str = DEFAULT_PDP_BACKEND,
    prompt_callback: PromptCallback = deny_all_prompts,
    audit: Optional[AuditLog] = None,
) -> PolicyDecisionPoint:
    """Construct a PDP by backend name (``"compiled"`` or ``"linear"``).

    The choice never affects decisions or audit sequences -- the backends
    are held identical by ``tests/enforcement/test_pdp_differential.py``
    -- only the per-event dispatch cost, so callers may treat the name as
    a pure performance knob.
    """
    try:
        factory = PDP_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown PDP backend {backend!r}; "
            f"expected one of {sorted(PDP_BACKENDS)}"
        ) from None
    return factory(policies, prompt_callback=prompt_callback, audit=audit)


__all__ = [
    "AuditLog",
    "AuditRecord",
    "HookManager",
    "MethodCall",
    "AndroidRuntime",
    "Device",
    "RuntimeIntent",
    "Decision",
    "PolicyDecisionPoint",
    "CompiledPolicyDecisionPoint",
    "CompiledPolicySet",
    "PolicyEnforcementPoint",
    "PDP_BACKENDS",
    "DEFAULT_PDP_BACKEND",
    "make_pdp",
]
