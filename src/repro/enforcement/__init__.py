"""APE: the Android Policy Enforcer (Section VI).

A simulated Android runtime executes app IR with real ICC dispatch
(:mod:`repro.enforcement.runtime`); an Xposed-style hooking layer
(:mod:`repro.enforcement.hooks`) intercepts method calls without modifying
the apps.  The policy decision point (:mod:`repro.enforcement.pdp`)
evaluates intercepted ICC events against the synthesized ECA policies, and
the policy enforcement point (:mod:`repro.enforcement.pep`) installs the
hooks, consults the PDP, and skips violating calls -- the app continues in
degraded mode, exactly as inhibiting an asynchronous ICC call does on real
Android.  Every decision the PDP makes is appended, in decision order, to
an :class:`~repro.enforcement.audit.AuditLog` (:mod:`repro.enforcement.audit`)
that can be queried and serialized to JSONL after a run.
"""

from repro.enforcement.audit import AuditLog, AuditRecord
from repro.enforcement.hooks import HookManager, MethodCall
from repro.enforcement.runtime import AndroidRuntime, Device, RuntimeIntent
from repro.enforcement.pdp import Decision, PolicyDecisionPoint
from repro.enforcement.pep import PolicyEnforcementPoint

__all__ = [
    "AuditLog",
    "AuditRecord",
    "HookManager",
    "MethodCall",
    "AndroidRuntime",
    "Device",
    "RuntimeIntent",
    "Decision",
    "PolicyDecisionPoint",
    "PolicyEnforcementPoint",
]
