"""The simulated Android runtime: device, ICC dispatch, IR interpreter.

Executes app bytecode concretely.  Sensitive source APIs return values
tagged with their flow-permission resource, Intent payloads carry those
tags, and sink APIs record what reached them -- so an exploit that
exfiltrates the device location through two vulnerable apps is observable
as a concrete ``sms_sent`` effect tagged LOCATION.  ICC is dispatched
through a queue (Android's ICC calls are asynchronous), resolved with the
framework's matching rules, permission-checked, and -- crucially --
interceptable through the Xposed-style :class:`HookManager`, which is where
the policy enforcement point attaches.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.intents import Intent as ModelIntent
from repro.android.permissions import SINK_API_MAP, SOURCE_API_MAP
from repro.android.resources import Resource
from repro.dex.instructions import (
    ConstString,
    Goto,
    IGet,
    IPut,
    If,
    Invoke,
    Move,
    NewInstance,
    Return,
    SGet,
    SPut,
)
from repro.dex.program import DexMethod
from repro.enforcement.hooks import HookManager, MethodCall
from repro.obs import get_metrics, get_tracer

_MAX_DISPATCH = 10_000  # runaway-broadcast backstop
_MAX_FRAMES = 256


@dataclass
class Tagged:
    """A runtime value carrying taint tags (sensitive-resource provenance)."""

    text: str
    taints: FrozenSet[Resource] = frozenset()

    def __str__(self) -> str:
        return self.text


def taints_of(value: Any) -> FrozenSet[Resource]:
    if isinstance(value, Tagged):
        return value.taints
    if isinstance(value, RuntimeIntent):
        merged: Set[Resource] = set()
        for v in value.extras.values():
            merged |= taints_of(v)
        return frozenset(merged)
    return frozenset()


class RuntimeIntent:
    """A concrete Intent under construction / in flight."""

    _ids = itertools.count(1)

    def __init__(self, sender: Optional[str] = None) -> None:
        self.id = next(self._ids)
        self.sender = sender
        self.target: Optional[str] = None
        self.action: Optional[str] = None
        self.categories: Set[str] = set()
        self.data_type: Optional[str] = None
        self.data_scheme: Optional[str] = None
        self.extras: Dict[str, Any] = {}
        self.wants_result = False

    @property
    def carried_resources(self) -> FrozenSet[Resource]:
        merged: Set[Resource] = set()
        for value in self.extras.values():
            merged |= taints_of(value)
        return frozenset(merged)

    def to_model(self) -> ModelIntent:
        return ModelIntent(
            sender=self.sender or "?",
            target=self.target,
            action=self.action,
            categories=frozenset(self.categories),
            data_type=self.data_type,
            data_scheme=self.data_scheme,
            extras=self.carried_resources,
            extra_keys=frozenset(self.extras),
            wants_result=self.wants_result,
        )

    def __repr__(self) -> str:
        return (
            f"RuntimeIntent#{self.id}(action={self.action!r}, "
            f"target={self.target!r}, extras={sorted(self.extras)})"
        )


class RuntimeFilter:
    def __init__(self) -> None:
        self.actions: Set[str] = set()
        self.categories: Set[str] = set()
        self.data_types: Set[str] = set()
        self.data_schemes: Set[str] = set()

    def to_model(self) -> IntentFilter:
        return IntentFilter(
            actions=frozenset(self.actions) or frozenset({"<none>"}),
            categories=frozenset(self.categories),
            data_types=frozenset(self.data_types),
            data_schemes=frozenset(self.data_schemes),
        )


@dataclass
class InstalledComponent:
    decl: ComponentDecl
    qualified: str
    app: str
    dynamic_filters: List[IntentFilter] = field(default_factory=list)

    @property
    def exported(self) -> bool:
        return self.decl.is_public

    @property
    def intent_filters(self) -> List[IntentFilter]:
        return list(self.decl.intent_filters) + self.dynamic_filters

    # resolve_intent duck-type
    @property
    def name(self) -> str:
        return self.qualified

    @property
    def kind(self) -> "ComponentKind":
        return self.decl.kind


@dataclass
class InstalledApp:
    apk: Apk
    components: Dict[str, InstalledComponent]

    @property
    def package(self) -> str:
        return self.apk.package

    @property
    def permissions(self) -> FrozenSet[str]:
        return frozenset(self.apk.manifest.uses_permissions)


class Device:
    """Installed-app registry."""

    def __init__(self) -> None:
        self.apps: Dict[str, InstalledApp] = {}

    def install(self, apk: Apk) -> InstalledApp:
        if apk.package in self.apps:
            raise ValueError(f"{apk.package} already installed")
        components = {}
        for decl in apk.manifest.components:
            qualified = apk.manifest.qualified(decl)
            components[qualified] = InstalledComponent(decl, qualified, apk.package)
        app = InstalledApp(apk, components)
        self.apps[apk.package] = app
        return app

    def uninstall(self, package: str) -> None:
        del self.apps[package]

    def all_components(self) -> List[InstalledComponent]:
        return [c for app in self.apps.values() for c in app.components.values()]

    def component(self, qualified: str) -> Optional[InstalledComponent]:
        package = qualified.split("/", 1)[0]
        app = self.apps.get(package)
        if app is None:
            return None
        return app.components.get(qualified)


@dataclass
class Effect:
    """An observable runtime effect (the enforcement tests' oracle)."""

    kind: str  # sms_sent / log / network / file_write / icc_delivered / ...
    component: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class _PendingDelivery:
    intent: RuntimeIntent
    receiver: str
    entry: str  # lifecycle method to invoke
    caller_app: str
    result_to: Optional[str] = None  # startActivityForResult return channel


_ENTRY_FOR_KIND = {
    ComponentKind.SERVICE: "onStartCommand",
    ComponentKind.ACTIVITY: "onCreate",
    ComponentKind.RECEIVER: "onReceive",
}

_SEND_KIND = {
    "Context.startService": ComponentKind.SERVICE,
    "Context.startActivity": ComponentKind.ACTIVITY,
    "Context.startActivityForResult": ComponentKind.ACTIVITY,
    "Context.bindService": ComponentKind.SERVICE,
    "Context.sendBroadcast": ComponentKind.RECEIVER,
    "Context.sendOrderedBroadcast": ComponentKind.RECEIVER,
}

_RESOLVER_APIS = {
    "ContentResolver.query": "query",
    "ContentResolver.insert": "insert",
    "ContentResolver.update": "update",
    "ContentResolver.delete": "delete",
}

ICC_API_SIGNATURES = tuple(_SEND_KIND) + ("Activity.setResult",) + tuple(
    _RESOLVER_APIS
)


class AndroidRuntime:
    """Executes installed apps and dispatches ICC, with hook interception."""

    def __init__(self, device: Optional[Device] = None) -> None:
        self.device = device or Device()
        self.hooks = HookManager()
        self.effects: List[Effect] = []
        self._queue: deque = deque()
        self._heap: Dict[Tuple[int, str], Any] = {}  # (object id, field)
        self._statics: Dict[str, Any] = {}
        self._this_fields: Dict[Tuple[str, str], Any] = {}  # (component, field)
        self._result_channel: Dict[str, str] = {}  # receiver -> original caller
        self._dispatch_count = 0
        self.icc_sent = 0
        self.icc_delivered = 0

    # ------------------------------------------------------------------
    # Public driving API
    # ------------------------------------------------------------------
    def install(self, apk: Apk) -> InstalledApp:
        return self.device.install(apk)

    def start_component(
        self, qualified: str, intent: Optional[RuntimeIntent] = None
    ) -> None:
        """Framework-initiated start (e.g. the user taps the app icon)."""
        component = self.device.component(qualified)
        if component is None:
            raise KeyError(f"component {qualified} not installed")
        entry = _ENTRY_FOR_KIND.get(component.decl.kind, "onCreate")
        self._queue.append(
            _PendingDelivery(
                intent=intent or RuntimeIntent(sender="android/framework"),
                receiver=qualified,
                entry=entry,
                caller_app=component.app,
            )
        )
        self._drain()

    def _drain(self) -> None:
        tracer = get_tracer()
        metrics = get_metrics()
        while self._queue:
            self._dispatch_count += 1
            if self._dispatch_count > _MAX_DISPATCH:
                raise RuntimeError("ICC dispatch budget exceeded")
            delivery = self._queue.popleft()
            if metrics.enabled:
                metrics.counter("runtime.dispatches").inc()
            if tracer.enabled:
                with tracer.span(
                    "runtime.dispatch",
                    receiver=delivery.receiver,
                    entry=delivery.entry,
                ):
                    self._execute_entry(delivery)
            else:
                self._execute_entry(delivery)

    # ------------------------------------------------------------------
    # ICC dispatch
    # ------------------------------------------------------------------
    def resolve_icc(
        self, sender: str, signature: str, intent: RuntimeIntent
    ) -> List[InstalledComponent]:
        """Resolution half of an ICC send (framework matching rules)."""
        intent.sender = sender
        kind = _SEND_KIND[signature]
        if signature == "Context.startActivityForResult":
            intent.wants_result = True
        model = intent.to_model()
        candidates = [
            c for c in self.device.all_components() if c.decl.kind is kind
        ]
        from repro.android.intents import resolve_intent

        matches = resolve_intent(model, candidates)
        if kind is not ComponentKind.RECEIVER and len(matches) > 1:
            # The framework delivers a non-broadcast implicit Intent to a
            # single recipient: highest filter priority wins, name breaks
            # ties deterministically.
            def rank(component):
                priorities = [
                    f.priority for f in component.intent_filters
                ] or [0]
                return (-max(priorities), component.name)

            matches = sorted(matches, key=rank)[:1]
        return matches

    def sender_permissions(self, sender: str) -> FrozenSet[str]:
        sender_app = sender.split("/", 1)[0]
        app = self.device.apps.get(sender_app)
        return app.permissions if app is not None else frozenset()

    def _send_icc(
        self, sender: str, signature: str, intent: RuntimeIntent
    ) -> None:
        matches = self.resolve_icc(sender, signature, intent)
        self.deliver_icc(sender, signature, intent, matches)

    def deliver_icc(
        self,
        sender: str,
        signature: str,
        intent: RuntimeIntent,
        matches: List[InstalledComponent],
    ) -> None:
        """Delivery half: permission checks, effects, queueing."""
        self.icc_sent += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("runtime.icc_sent").inc()
        kind = _SEND_KIND[signature]
        sender_app = sender.split("/", 1)[0]
        sender_perms = self.sender_permissions(sender)
        for component in matches:
            # Manifest permission enforcement.
            required = component.decl.permission
            if required and required not in sender_perms:
                self.effects.append(
                    Effect(
                        "icc_permission_denied",
                        component.qualified,
                        {"sender": sender, "permission": required},
                    )
                )
                continue
            self.icc_delivered += 1
            if metrics.enabled:
                metrics.counter("runtime.icc_delivered").inc()
            self.effects.append(
                Effect(
                    "icc_delivered",
                    component.qualified,
                    {"sender": sender, "intent": intent},
                )
            )
            if intent.wants_result:
                self._result_channel[component.qualified] = sender
            self._queue.append(
                _PendingDelivery(
                    intent=intent,
                    receiver=component.qualified,
                    entry=_ENTRY_FOR_KIND[kind],
                    caller_app=sender_app,
                )
            )

    def _resolver_call(
        self,
        app: InstalledApp,
        component: str,
        signature: str,
        args: List[Any],
        caller_app: str,
    ) -> Any:
        """ContentResolver operation: synchronous dispatch to the provider
        whose authority matches the content URI."""
        operation = _RESOLVER_APIS[signature]
        uri = str(args[0]) if args else ""
        authority = None
        if uri.startswith("content://"):
            authority = uri[len("content://"):].split("/", 1)[0]
        for installed in self.device.all_components():
            if installed.decl.kind is not ComponentKind.PROVIDER:
                continue
            if installed.decl.authority not in (None, authority):
                continue
            if authority is not None and installed.decl.authority != authority:
                continue
            same_app = installed.app == app.package
            if not installed.exported and not same_app:
                continue
            required = installed.decl.permission
            if required and required not in app.permissions:
                self.effects.append(
                    Effect(
                        "icc_permission_denied",
                        installed.qualified,
                        {"sender": component, "permission": required},
                    )
                )
                continue
            self.effects.append(
                Effect(
                    "provider_access",
                    installed.qualified,
                    {"sender": component, "operation": operation},
                )
            )
            provider_app = self.device.apps[installed.app]
            cls = provider_app.apk.component_class(installed.decl.name)
            if cls is None or not cls.has_method(operation):
                continue
            method = cls.method(operation)
            call_args = list(args[: len(method.params)])
            call_args += [None] * (len(method.params) - len(call_args))
            return self._run_method(
                provider_app,
                installed.qualified,
                method,
                call_args,
                depth=0,
                caller_app=app.package,
            )
        return None

    def _send_result(self, sender: str, intent: RuntimeIntent) -> None:
        """Activity.setResult: deliver back over the recorded channel."""
        intent.sender = sender
        caller = self._result_channel.get(sender)
        if caller is None:
            return
        self.icc_sent += 1
        self.icc_delivered += 1
        self.effects.append(
            Effect("icc_delivered", caller, {"sender": sender, "intent": intent})
        )
        self._queue.append(
            _PendingDelivery(
                intent=intent,
                receiver=caller,
                entry="onActivityResult",
                caller_app=sender.split("/", 1)[0],
            )
        )

    # ------------------------------------------------------------------
    # Interpreter
    # ------------------------------------------------------------------
    def _execute_entry(self, delivery: _PendingDelivery) -> None:
        component = self.device.component(delivery.receiver)
        if component is None:
            return
        app = self.device.apps[component.app]
        cls = app.apk.component_class(component.decl.name)
        if cls is None or not cls.has_method(delivery.entry):
            return
        method = cls.method(delivery.entry)
        args: List[Any] = []
        if method.params:
            args = [delivery.intent] + [None] * (len(method.params) - 1)
        self._run_method(
            app, component.qualified, method, args, depth=0,
            caller_app=delivery.caller_app,
        )

    def _run_method(
        self,
        app: InstalledApp,
        component: str,
        method: DexMethod,
        args: List[Any],
        depth: int,
        caller_app: str,
    ) -> Any:
        if depth > _MAX_FRAMES:
            raise RuntimeError(f"call depth exceeded in {method.qualified_name}")
        regs: Dict[str, Any] = {}
        for pi, param in enumerate(method.params):
            regs[param] = args[pi] if pi < len(args) else None
        pc = 0
        instrs = method.instructions
        steps = 0
        while 0 <= pc < len(instrs):
            steps += 1
            if steps > 100_000:
                raise RuntimeError(f"instruction budget exceeded in {method.name}")
            instr = instrs[pc]
            if isinstance(instr, ConstString):
                regs[instr.dest] = instr.value
            elif isinstance(instr, Move):
                regs[instr.dest] = regs.get(instr.src)
            elif isinstance(instr, NewInstance):
                regs[instr.dest] = self._new_instance(instr.type_name)
            elif isinstance(instr, IGet):
                obj = regs.get(instr.obj)
                if instr.obj == "this":
                    regs[instr.dest] = self._this_fields.get(
                        (component, instr.field_name)
                    )
                else:
                    regs[instr.dest] = self._heap.get(
                        (id(obj), instr.field_name)
                    )
            elif isinstance(instr, IPut):
                obj = regs.get(instr.obj)
                if instr.obj == "this":
                    self._this_fields[(component, instr.field_name)] = regs.get(
                        instr.src
                    )
                else:
                    self._heap[(id(obj), instr.field_name)] = regs.get(instr.src)
            elif isinstance(instr, SGet):
                regs[instr.dest] = self._statics.get(instr.class_field)
            elif isinstance(instr, SPut):
                self._statics[instr.class_field] = regs.get(instr.src)
            elif isinstance(instr, If):
                if regs.get(instr.cond):
                    pc = instr.target
                    continue
            elif isinstance(instr, Goto):
                pc = instr.target
                continue
            elif isinstance(instr, Return):
                return regs.get(instr.src) if instr.src else None
            elif isinstance(instr, Invoke):
                result = self._invoke(
                    app, component, method, instr, regs, depth, caller_app
                )
                if instr.dest is not None:
                    regs[instr.dest] = result
            pc += 1
        return None

    @staticmethod
    def _new_instance(type_name: str) -> Any:
        if type_name == "Intent":
            return RuntimeIntent()
        if type_name == "IntentFilter":
            return RuntimeFilter()
        return {"__type__": type_name}

    # ------------------------------------------------------------------
    def _invoke(
        self,
        app: InstalledApp,
        component: str,
        method: DexMethod,
        instr: Invoke,
        regs: Dict[str, Any],
        depth: int,
        caller_app: str,
    ) -> Any:
        receiver = regs.get(instr.receiver) if instr.receiver else None
        args = [regs.get(a) for a in instr.args]

        # App-internal call?
        callee = None
        if instr.class_name == "this":
            cls = app.apk.program.cls(method.class_name)
            if cls.has_method(instr.method_name):
                callee = cls.method(instr.method_name)
        else:
            callee = app.apk.program.lookup(instr.signature)
        if callee is not None:
            return self._run_method(
                app, component, callee, args, depth + 1, caller_app
            )

        # Platform API: hookable.
        call = MethodCall(
            signature=instr.signature,
            component=component,
            receiver=receiver,
            args=args,
        )
        self.hooks.run_before(call)
        if call.skip:
            self.effects.append(
                Effect("call_skipped", component, {"signature": instr.signature})
            )
            return call.result
        call.result = self._platform_api(app, component, call, caller_app)
        self.hooks.run_after(call)
        return call.result

    def _platform_api(
        self, app: InstalledApp, component: str, call: MethodCall, caller_app: str
    ) -> Any:
        sig = call.signature
        receiver = call.receiver
        args = call.args

        # Intent construction APIs.
        if isinstance(receiver, RuntimeIntent):
            if sig == "Intent.setAction":
                receiver.action = args[0]
                return receiver
            if sig == "Intent.addCategory":
                receiver.categories.add(args[0])
                return receiver
            if sig == "Intent.setType":
                receiver.data_type = args[0]
                return receiver
            if sig == "Intent.setData":
                uri = str(args[0]) if args else ""
                receiver.data_scheme = uri.split("://", 1)[0] if "://" in uri else uri
                return receiver
            if sig in ("Intent.setClass", "Intent.setClassName", "Intent.setComponent"):
                target = str(args[0])
                receiver.target = (
                    target if "/" in target else f"{app.package}/{target}"
                )
                return receiver
            if sig == "Intent.putExtra":
                receiver.extras[str(args[0])] = args[1] if len(args) > 1 else None
                return receiver
            if sig in (
                "Intent.getStringExtra",
                "Intent.getExtra",
                "Intent.getParcelableExtra",
                "Intent.getIntExtra",
            ):
                return receiver.extras.get(str(args[0]))
            if sig == "Intent.getExtras":
                return dict(receiver.extras)
            if sig == "Intent.getData":
                return receiver.data_scheme
        if isinstance(receiver, RuntimeFilter):
            if sig == "IntentFilter.addAction":
                receiver.actions.add(args[0])
                return receiver
            if sig == "IntentFilter.addCategory":
                receiver.categories.add(args[0])
                return receiver
            if sig == "IntentFilter.addDataType":
                receiver.data_types.add(args[0])
                return receiver
            if sig == "IntentFilter.addDataScheme":
                receiver.data_schemes.add(args[0])
                return receiver

        # ICC sends.
        if sig in _SEND_KIND:
            intent = args[0] if args else None
            if isinstance(intent, RuntimeIntent):
                self._send_icc(component, sig, intent)
            return None
        if sig in _RESOLVER_APIS:
            return self._resolver_call(app, component, sig, args, caller_app)
        if sig == "Activity.setResult":
            intent = args[0] if args else None
            if isinstance(intent, RuntimeIntent):
                self._send_result(component, intent)
            return None
        if sig == "Context.registerReceiver":
            filt = args[1] if len(args) > 1 else None
            target = args[0]
            if isinstance(filt, RuntimeFilter) and isinstance(target, dict):
                cmp_name = f"{app.package}/{target.get('__type__')}"
                installed = self.device.component(cmp_name)
                if installed is not None:
                    installed.dynamic_filters.append(filt.to_model())
            return None

        # Sensitive sources: return tagged data.
        if sig in SOURCE_API_MAP:
            resource = SOURCE_API_MAP[sig]
            return Tagged(f"<{resource.value}-data>", frozenset({resource}))

        # Sinks: record what reached them.
        if sig in SINK_API_MAP:
            resource, data_arg = SINK_API_MAP[sig]
            payload = args[data_arg] if data_arg < len(args) else None
            kind = {
                Resource.SMS: "sms_sent",
                Resource.NETWORK: "network_send",
                Resource.SDCARD: "file_write",
                Resource.LOG: "log",
            }.get(resource, "sink")
            self.effects.append(
                Effect(
                    kind,
                    component,
                    {
                        "payload": str(payload) if payload is not None else None,
                        "taints": taints_of(payload),
                    },
                )
            )
            return None

        # Permission checks against the *calling* app.
        if sig in (
            "Context.checkCallingPermission",
            "Context.checkCallingOrSelfPermission",
        ):
            wanted = str(args[0]) if args else ""
            caller = self.device.apps.get(caller_app)
            granted = caller is not None and wanted in caller.permissions
            return granted

        # Generic platform call: propagate taints (toString, concat, ...).
        merged: Set[Resource] = set(taints_of(receiver))
        for arg in args:
            merged |= taints_of(arg)
        if merged:
            return Tagged(f"<derived:{sig}>", frozenset(merged))
        return None

    # ------------------------------------------------------------------
    def effects_of_kind(self, kind: str) -> List[Effect]:
        return [e for e in self.effects if e.kind == kind]
