"""The enforcement audit log: every PDP decision, ordered and queryable.

A real reference-validation mechanism must leave an audit trail; here
every call to :meth:`~repro.enforcement.pdp.PolicyDecisionPoint.decide`
appends one :class:`AuditRecord` carrying the intercepted ICC event, the
policy that matched (if any), the verdict, and -- for PROMPT policies --
the user's answer.  Records are numbered with a monotonically increasing
sequence counter under a lock, so the log's order is exactly the order in
which decisions were made even when the runtime's queued ICC dispatch
interleaves deliveries from many components.

The log is in-memory during a run and serializes to JSONL for later
querying (``AuditLog.write`` / ``AuditLog.load``); the ``repro simulate``
CLI subcommand writes one per enforcement run.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass
class AuditRecord:
    """One PDP decision over one intercepted ICC event."""

    seq: int
    event_kind: str  # icc_send / icc_receive
    sender: str
    receiver: Optional[str]
    action: Optional[str]
    payload: List[str]  # sorted resource names carried by the event
    sender_permissions: List[str]
    verdict: str  # allow / deny
    policy_vulnerability: Optional[str] = None
    policy_action: Optional[str] = None  # deny / prompt (None: no match)
    policy_description: Optional[str] = None
    prompted: bool = False
    prompt_approved: Optional[bool] = None
    context: Optional[str] = None  # hooked API signature, when known

    @property
    def matched(self) -> bool:
        return self.policy_vulnerability is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "event_kind": self.event_kind,
            "sender": self.sender,
            "receiver": self.receiver,
            "action": self.action,
            "payload": list(self.payload),
            "sender_permissions": list(self.sender_permissions),
            "verdict": self.verdict,
            "policy_vulnerability": self.policy_vulnerability,
            "policy_action": self.policy_action,
            "policy_description": self.policy_description,
            "prompted": self.prompted,
            "prompt_approved": self.prompt_approved,
            "context": self.context,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "AuditRecord":
        return AuditRecord(
            seq=data["seq"],
            event_kind=data["event_kind"],
            sender=data["sender"],
            receiver=data.get("receiver"),
            action=data.get("action"),
            payload=list(data.get("payload", ())),
            sender_permissions=list(data.get("sender_permissions", ())),
            verdict=data["verdict"],
            policy_vulnerability=data.get("policy_vulnerability"),
            policy_action=data.get("policy_action"),
            policy_description=data.get("policy_description"),
            prompted=data.get("prompted", False),
            prompt_approved=data.get("prompt_approved"),
            context=data.get("context"),
        )


class AuditLog:
    """An append-only, thread-safe, ordered log of PDP decisions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: List[AuditRecord] = []

    def append(self, **fields: Any) -> AuditRecord:
        """Number and store a record (``seq`` is assigned here)."""
        with self._lock:
            record = AuditRecord(seq=len(self.records), **fields)
            self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(list(self.records))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        verdict: Optional[str] = None,
        vulnerability: Optional[str] = None,
        sender: Optional[str] = None,
        receiver: Optional[str] = None,
        prompted: Optional[bool] = None,
        matched: Optional[bool] = None,
    ) -> List[AuditRecord]:
        """Filter records; every given criterion must hold."""
        out = []
        for record in self.records:
            if verdict is not None and record.verdict != verdict:
                continue
            if (
                vulnerability is not None
                and record.policy_vulnerability != vulnerability
            ):
                continue
            if sender is not None and record.sender != sender:
                continue
            if receiver is not None and record.receiver != receiver:
                continue
            if prompted is not None and record.prompted != prompted:
                continue
            if matched is not None and record.matched != matched:
                continue
            out.append(record)
        return out

    def denials(self) -> List[AuditRecord]:
        return self.query(verdict="deny")

    def allows(self) -> List[AuditRecord]:
        return self.query(verdict="allow")

    def summary(self) -> Dict[str, int]:
        """Headline counts for dashboards and CLI output."""
        return {
            "decisions": len(self.records),
            "allowed": sum(1 for r in self.records if r.verdict == "allow"),
            "denied": sum(1 for r in self.records if r.verdict == "deny"),
            "prompted": sum(1 for r in self.records if r.prompted),
            "matched": sum(1 for r in self.records if r.matched),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """JSONL: one record per line, in sequence order."""
        return "".join(
            json.dumps(r.to_dict(), sort_keys=True) + "\n" for r in self.records
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @staticmethod
    def from_records(records: Iterable[AuditRecord]) -> "AuditLog":
        log = AuditLog()
        log.records = sorted(records, key=lambda r: r.seq)
        return log

    @staticmethod
    def loads(text: str) -> "AuditLog":
        records = [
            AuditRecord.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return AuditLog.from_records(records)

    @staticmethod
    def load(path: str) -> "AuditLog":
        with open(path, "r", encoding="utf-8") as handle:
            return AuditLog.loads(handle.read())
