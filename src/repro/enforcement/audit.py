"""The enforcement audit log: every PDP decision, ordered and queryable.

A real reference-validation mechanism must leave an audit trail; here
every call to :meth:`~repro.enforcement.pdp.PolicyDecisionPoint.decide`
appends one :class:`AuditRecord` carrying the intercepted ICC event, the
policy that matched (if any), the verdict, and -- for PROMPT policies --
the user's answer.  Records are numbered with a monotonically increasing
sequence counter under a lock, so the log's order is exactly the order in
which decisions were made even when the runtime's queued ICC dispatch
interleaves deliveries from many components.

By default the log keeps every record in memory and serializes to JSONL
(:meth:`AuditLog.write` / :meth:`AuditLog.load`; ``repro simulate
--audit`` writes one per enforcement run).  At enforcement-traffic rates
an unbounded in-memory log is wrong, so three retention controls exist
(all off by default -- see ``docs/ENFORCEMENT.md``):

- ``window=N`` bounds the resident record list; overflow evicts the
  oldest records in amortized batches (**rotation**).
- ``spill_dir=DIR`` makes rotation durable: each evicted batch appends
  to a numbered JSONL segment file (``audit-000000.jsonl``, ...) instead
  of being dropped; :meth:`iter_all` / :meth:`dump_all` stitch segments
  and the resident window back together in sequence order.
- ``sample_default_allow=N`` materializes only one in every N
  *default-allow fallthrough* records (no policy matched -- the
  overwhelming bulk of benign traffic); denials, prompts, and every
  matched-policy decision are always materialized.

Retention never lies: sequence numbers advance for every decision, and
:meth:`summary` counts from exact counters maintained at append time, so
its totals cover rotated-away and sampled-out decisions too.
:meth:`retention` reports what was elided.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional


@dataclass
class AuditRecord:
    """One PDP decision over one intercepted ICC event."""

    seq: int
    event_kind: str  # icc_send / icc_receive
    sender: str
    receiver: Optional[str]
    action: Optional[str]
    payload: List[str]  # sorted resource names carried by the event
    sender_permissions: List[str]
    verdict: str  # allow / deny
    policy_vulnerability: Optional[str] = None
    policy_action: Optional[str] = None  # deny / prompt (None: no match)
    policy_description: Optional[str] = None
    prompted: bool = False
    prompt_approved: Optional[bool] = None
    context: Optional[str] = None  # hooked API signature, when known

    @property
    def matched(self) -> bool:
        return self.policy_vulnerability is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "event_kind": self.event_kind,
            "sender": self.sender,
            "receiver": self.receiver,
            "action": self.action,
            "payload": list(self.payload),
            "sender_permissions": list(self.sender_permissions),
            "verdict": self.verdict,
            "policy_vulnerability": self.policy_vulnerability,
            "policy_action": self.policy_action,
            "policy_description": self.policy_description,
            "prompted": self.prompted,
            "prompt_approved": self.prompt_approved,
            "context": self.context,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "AuditRecord":
        return AuditRecord(
            seq=data["seq"],
            event_kind=data["event_kind"],
            sender=data["sender"],
            receiver=data.get("receiver"),
            action=data.get("action"),
            payload=list(data.get("payload", ())),
            sender_permissions=list(data.get("sender_permissions", ())),
            verdict=data["verdict"],
            policy_vulnerability=data.get("policy_vulnerability"),
            policy_action=data.get("policy_action"),
            policy_description=data.get("policy_description"),
            prompted=data.get("prompted", False),
            prompt_approved=data.get("prompt_approved"),
            context=data.get("context"),
        )


class AuditLog:
    """An append-only, thread-safe, ordered log of PDP decisions.

    ``window`` / ``spill_dir`` / ``sample_default_allow`` configure
    retention (rotation and sampling); by default every record stays
    resident, matching the original unbounded behaviour.
    """

    def __init__(
        self,
        window: Optional[int] = None,
        spill_dir: Optional[str] = None,
        sample_default_allow: int = 1,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be a positive record count")
        self._lock = threading.Lock()
        self.records: Deque[AuditRecord] = deque()
        self.window = window
        self.spill_dir = spill_dir
        self.sample_default_allow = max(1, int(sample_default_allow))
        self._seq = 0
        self._counts = {
            "decisions": 0,
            "allowed": 0,
            "denied": 0,
            "prompted": 0,
            "matched": 0,
        }
        self._fallthroughs = 0
        self._sampled_out = 0
        self._rotated = 0
        self._segments: List[str] = []

    def append(self, **fields: Any) -> AuditRecord:
        """Number and store a record (``seq`` is assigned here).

        The sequence number always advances and the summary counters are
        always updated; whether the record itself stays resident is
        subject to sampling and rotation.
        """
        with self._lock:
            record = AuditRecord(seq=self._seq, **fields)
            self._seq += 1
            self._count(record)
            if self._sampled_away(record):
                self._sampled_out += 1
                self._publish_retention("audit.sampled_out")
                return record
            self.records.append(record)
            if self.window is not None and len(self.records) > self.window:
                self._rotate()
        return record

    def _count(self, record: AuditRecord) -> None:
        counts = self._counts
        counts["decisions"] += 1
        if record.verdict == "allow":
            counts["allowed"] += 1
        else:
            counts["denied"] += 1
        if record.prompted:
            counts["prompted"] += 1
        if record.matched:
            counts["matched"] += 1

    def _sampled_away(self, record: AuditRecord) -> bool:
        """1-in-N sampling of default-allow fallthroughs: keep the first
        of every N; everything that matched a policy is always kept."""
        if self.sample_default_allow <= 1:
            return False
        if record.matched or record.verdict != "allow" or record.prompted:
            return False
        self._fallthroughs += 1
        return (self._fallthroughs - 1) % self.sample_default_allow != 0

    def _rotate(self) -> None:
        """Evict the oldest records (amortized: overflow plus half the
        window per rotation) into a spill segment, or drop them when no
        ``spill_dir`` is configured.  Caller holds the lock."""
        assert self.window is not None
        evict_n = len(self.records) - self.window + max(1, self.window // 2)
        evict_n = min(evict_n, len(self.records))
        evicted = [self.records.popleft() for _ in range(evict_n)]
        self._rotated += len(evicted)
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
            path = os.path.join(
                self.spill_dir, f"audit-{len(self._segments):06d}.jsonl"
            )
            with open(path, "w", encoding="utf-8") as handle:
                for record in evicted:
                    handle.write(json.dumps(record.to_dict(), sort_keys=True))
                    handle.write("\n")
            self._segments.append(path)
        self._publish_retention("audit.rotated", len(evicted))

    @staticmethod
    def _publish_retention(counter: str, amount: int = 1) -> None:
        from repro.obs import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(counter).inc(amount)

    def __len__(self) -> int:
        """Resident records (see ``summary()['decisions']`` for the exact
        all-time decision count)."""
        return len(self.records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(list(self.records))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        verdict: Optional[str] = None,
        vulnerability: Optional[str] = None,
        sender: Optional[str] = None,
        receiver: Optional[str] = None,
        prompted: Optional[bool] = None,
        matched: Optional[bool] = None,
    ) -> List[AuditRecord]:
        """Filter resident records; every given criterion must hold."""
        out = []
        for record in list(self.records):
            if verdict is not None and record.verdict != verdict:
                continue
            if (
                vulnerability is not None
                and record.policy_vulnerability != vulnerability
            ):
                continue
            if sender is not None and record.sender != sender:
                continue
            if receiver is not None and record.receiver != receiver:
                continue
            if prompted is not None and record.prompted != prompted:
                continue
            if matched is not None and record.matched != matched:
                continue
            out.append(record)
        return out

    def denials(self) -> List[AuditRecord]:
        return self.query(verdict="deny")

    def allows(self) -> List[AuditRecord]:
        return self.query(verdict="allow")

    def summary(self) -> Dict[str, int]:
        """Headline counts for dashboards and CLI output.

        Computed from exact counters maintained at append time, so the
        totals are truthful even when rotation evicted or sampling
        skipped the underlying records.
        """
        return dict(self._counts)

    def retention(self) -> Dict[str, int]:
        """What retention elided: resident vs rotated vs sampled-out."""
        return {
            "resident": len(self.records),
            "rotated": self._rotated,
            "sampled_out": self._sampled_out,
            "segments": len(self._segments),
        }

    @property
    def segments(self) -> List[str]:
        """Spill segment paths, oldest first."""
        return list(self._segments)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """JSONL of the *resident* records, in sequence order (rotated
        segments live in their spill files; see :meth:`dump_all`)."""
        return "".join(
            json.dumps(r.to_dict(), sort_keys=True) + "\n" for r in self.records
        )

    def iter_all(self) -> Iterator[AuditRecord]:
        """Every retained record -- spilled segments first, then the
        resident window -- in sequence order."""
        for path in list(self._segments):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        yield AuditRecord.from_dict(json.loads(line))
        yield from list(self.records)

    def dump_all(self) -> str:
        """JSONL across every spill segment plus the resident window."""
        return "".join(
            json.dumps(r.to_dict(), sort_keys=True) + "\n"
            for r in self.iter_all()
        )

    def write(self, path: str) -> None:
        """Write every retained record (segments included) to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_all())

    @staticmethod
    def from_records(records: Iterable[AuditRecord]) -> "AuditLog":
        log = AuditLog()
        log.records = deque(sorted(records, key=lambda r: r.seq))
        for record in log.records:
            log._count(record)
        log._seq = log.records[-1].seq + 1 if log.records else 0
        return log

    @staticmethod
    def loads(text: str) -> "AuditLog":
        records = [
            AuditRecord.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return AuditLog.from_records(records)

    @staticmethod
    def load(path: str) -> "AuditLog":
        with open(path, "r", encoding="utf-8") as handle:
            return AuditLog.loads(handle.read())
