"""DeviceGuard: the end-user deployment loop.

Ties the whole system together the way SEPAR runs on a device:

- apps are installed/uninstalled over time;
- after each change, the guard re-extracts only the new app (cached
  models for the rest), re-runs synthesis for the current bundle, and
  refreshes the PDP's policy set;
- the PEP stays installed on the runtime the whole time, so protection is
  continuous and always specific to the *current* app combination --
  "fine-tuned to the user-specific, continuously-evolving configuration of
  apps" (Section IX).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.android.apk import Apk
from repro.core.model import AppModel, BundleModel
from repro.core.policy import ECAPolicy
from repro.core.separ import Separ, SeparReport
from repro.enforcement.pdp import PromptCallback, deny_all_prompts
from repro.enforcement.pep import PolicyEnforcementPoint
from repro.enforcement.runtime import AndroidRuntime
from repro.statics.extractor import ModelExtractor
from repro.statics.intent_extraction import update_passive_intent_targets


class DeviceGuard:
    """Continuously protects a simulated device with synthesized policies."""

    def __init__(
        self,
        runtime: Optional[AndroidRuntime] = None,
        separ: Optional[Separ] = None,
        prompt_callback: PromptCallback = deny_all_prompts,
        pdp_backend: Optional[str] = None,
    ) -> None:
        from repro.enforcement import DEFAULT_PDP_BACKEND, make_pdp

        self.runtime = runtime or AndroidRuntime()
        self.separ = separ or Separ(scenarios_per_signature=4)
        self._extractor = ModelExtractor()
        self._models: Dict[str, AppModel] = {}
        self.pdp = make_pdp(
            [],
            backend=pdp_backend or DEFAULT_PDP_BACKEND,
            prompt_callback=prompt_callback,
        )
        self.pep = PolicyEnforcementPoint(self.runtime, self.pdp)
        self.pep.install()
        self.last_report: Optional[SeparReport] = None

    # ------------------------------------------------------------------
    def install(self, apk: Apk) -> SeparReport:
        """Install an app: extract it, re-synthesize, refresh policies."""
        self.runtime.install(apk)
        self._models[apk.package] = self._extractor.extract(apk)
        return self._refresh()

    def uninstall(self, package: str) -> SeparReport:
        self.runtime.device.uninstall(package)
        self._models.pop(package, None)
        return self._refresh()

    # ------------------------------------------------------------------
    def current_bundle(self) -> BundleModel:
        bundle = BundleModel(apps=list(self._models.values()))
        # Re-run Algorithm 1 bundle-wide: result channels may cross apps.
        updated = update_passive_intent_targets(bundle.all_intents())
        by_id = {i.entity_id: i for i in updated}
        for app in bundle.apps:
            app.intents = [by_id.get(i.entity_id, i) for i in app.intents]
        return bundle

    def _refresh(self) -> SeparReport:
        report = self.separ.analyze_bundle(self.current_bundle())
        # Plain assignment is the whole invalidation protocol: the PDP's
        # ``policies`` setter recompiles the dispatch index and clears the
        # decision cache on the compiled backend.
        self.pdp.policies = list(report.policies)
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    @property
    def policies(self) -> List[ECAPolicy]:
        return list(self.pdp.policies)

    def start_component(self, qualified: str) -> None:
        self.runtime.start_component(qualified)

    def protection_summary(self) -> str:
        lines = [
            f"installed apps:   {len(self._models)}",
            f"active policies:  {len(self.pdp.policies)}",
            # Audit counters are exact even after the decision-log window
            # or audit rotation has evicted old records.
            f"prompts so far:   {self.pdp.audit.summary()['prompted']}",
            f"blocked so far:   {self.pep.blocked_deliveries}",
        ]
        if self.last_report is not None:
            by_vuln: Dict[str, int] = {}
            for scenario in self.last_report.scenarios:
                by_vuln[scenario.vulnerability] = (
                    by_vuln.get(scenario.vulnerability, 0) + 1
                )
            for vuln, count in sorted(by_vuln.items()):
                lines.append(f"  {vuln}: {count} scenario(s)")
        return "\n".join(lines)
