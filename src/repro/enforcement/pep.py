"""The policy enforcement point: hooks in, ICC events out.

Hooks every ICC API (``startService``, ``startActivity``,
``startActivityForResult``, ``bindService``, ``sendBroadcast``,
``setResult``) through the Xposed-style hook manager.  When a hooked call
fires, the PEP resolves the Intent's prospective receivers, builds one
:class:`~repro.core.policy.IccEvent` per prospective receiver, and asks
the PDP **twice per event** -- once as ``ICC_SEND`` (is the sender allowed
to emit this?) and once as ``ICC_RECEIVE`` (is the receiver allowed to
get it?); delivery requires both :class:`~repro.enforcement.pdp.Decision`
values to be ``ALLOW``.  Each ``decide`` call appends its own
``DecisionRecord``/audit record, so one intercepted call with *k*
resolved receivers produces exactly *2k* audit entries (this is the
decision contract documented in :mod:`repro.enforcement.pdp` and
``docs/ENFORCEMENT.md``).

Receivers the PDP denies are cut out of the delivery; the call itself is
skipped and re-issued with the approved subset, so a blocked ICC call
simply never delivers -- the sending app continues in degraded mode
without crashing (ICC is asynchronous, so no response was guaranteed
anyway).  Prompt semantics live entirely in the PDP: when a PROMPT
policy matches, the PDP's injected consent callback runs synchronously
inside ``decide`` and the PEP only ever sees the resulting verdict.  The
PEP works against either PDP backend (``linear`` or ``compiled``) --
it holds a reference to the PDP's shared audit trail and never inspects
policy internals."""

from __future__ import annotations


from repro.core.policy import IccEvent, PolicyEvent
from repro.enforcement.hooks import MethodCall
from repro.enforcement.pdp import Decision, PolicyDecisionPoint
from repro.enforcement.runtime import (
    AndroidRuntime,
    RuntimeIntent,
    _SEND_KIND,
)
from repro.obs import get_metrics


class PolicyEnforcementPoint:
    """Installs ICC hooks on a runtime and enforces via a PDP."""

    def __init__(self, runtime: AndroidRuntime, pdp: PolicyDecisionPoint) -> None:
        self.runtime = runtime
        self.pdp = pdp
        self.audit = pdp.audit  # the shared enforcement audit trail
        self.blocked_deliveries = 0
        self.allowed_deliveries = 0
        self._installed = False

    def install(self) -> None:
        if self._installed:
            return
        for signature in _SEND_KIND:
            self.runtime.hooks.hook(signature, before=self._on_icc_send)
        self.runtime.hooks.hook("Activity.setResult", before=self._on_set_result)
        self._installed = True

    def uninstall(self) -> None:
        for signature in _SEND_KIND:
            self.runtime.hooks.unhook_all(signature)
        self.runtime.hooks.unhook_all("Activity.setResult")
        self._installed = False

    # ------------------------------------------------------------------
    def _on_icc_send(self, call: MethodCall) -> None:
        intent = call.args[0] if call.args else None
        if not isinstance(intent, RuntimeIntent):
            return
        sender = call.component
        matches = self.runtime.resolve_icc(sender, call.signature, intent)
        sender_perms = self.runtime.sender_permissions(sender)
        allowed = []
        for component in matches:
            event = IccEvent(
                sender=sender,
                receiver=component.qualified,
                action=intent.action,
                extras=intent.carried_resources,
                sender_permissions=sender_perms,
            )
            send_ok = (
                self.pdp.decide(
                    PolicyEvent.ICC_SEND, event, context=call.signature
                )
                is Decision.ALLOW
            )
            receive_ok = (
                self.pdp.decide(
                    PolicyEvent.ICC_RECEIVE, event, context=call.signature
                )
                is Decision.ALLOW
            )
            if send_ok and receive_ok:
                allowed.append(component)
                self.allowed_deliveries += 1
            else:
                self.blocked_deliveries += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("pep.allowed_deliveries").inc(len(allowed))
            metrics.counter("pep.blocked_deliveries").inc(
                len(matches) - len(allowed)
            )
        if len(allowed) == len(matches):
            return  # nothing denied: let the framework dispatch normally
        # Replace the framework's own dispatch with the approved subset.
        call.skip = True
        self.runtime.deliver_icc(sender, call.signature, intent, allowed)

    def _on_set_result(self, call: MethodCall) -> None:
        intent = call.args[0] if call.args else None
        if not isinstance(intent, RuntimeIntent):
            return
        sender = call.component
        receiver = self.runtime._result_channel.get(sender)
        if receiver is None:
            return
        event = IccEvent(
            sender=sender,
            receiver=receiver,
            action=intent.action,
            extras=intent.carried_resources,
            sender_permissions=self.runtime.sender_permissions(sender),
        )
        if self.pdp.decide(
            PolicyEvent.ICC_SEND, event, context=call.signature
        ) is Decision.ALLOW and (
            self.pdp.decide(
                PolicyEvent.ICC_RECEIVE, event, context=call.signature
            )
            is Decision.ALLOW
        ):
            self.allowed_deliveries += 1
            return  # let the call proceed normally
        self.blocked_deliveries += 1
        call.skip = True
