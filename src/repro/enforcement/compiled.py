"""Compiled policy dispatch: the fast PDP backend.

The linear :class:`~repro.enforcement.pdp.PolicyDecisionPoint` scans every
installed policy per intercepted ICC event -- the right *reference*
semantics, and the wrong cost model for enforcement traffic (ROADMAP:
millions of events/sec).  This module compiles the synthesized policy set
into an indexed decision engine:

- :class:`CompiledPolicySet` buckets the ordered policy list by the parts
  of an ECA condition that are equality tests against event fields:
  an exact ``(event kind, receiver, intent action)`` bucket, a
  receiver-pinned bucket, a sender-pinned bucket, and a small linear
  **fallback chain** for wildcard policies whose conditions constrain
  neither endpoint (category/extras/permission-predicate matchers).
  Dispatch looks up at most four buckets per event and evaluates the
  merged candidates in original priority order, so **first-match-wins
  ordering is preserved exactly**.  The index is a conservative filter:
  a policy lands in a bucket only when ``ECAPolicy.matches`` would
  require the corresponding event field to equal the bucket key, so no
  potentially matching policy is ever skipped -- ``matches`` itself
  remains the ground truth on every candidate.
- :class:`CompiledPolicyDecisionPoint` wraps the index in a memoized
  **decision cache** keyed by the canonical intent shape
  ``(event kind, sender, receiver, action, sorted extras, sorted
  sender permissions)``.  Only *non-prompting* resolutions are cached --
  a DENY policy match or a default-allow fallthrough -- because a PROMPT
  policy consults the user per event.  Any policy install or remove
  (``pdp.policies = ...``, ``add_policy``; ``DeviceGuard._refresh`` goes
  through the former) recompiles the index and invalidates the whole
  cache.  Every decision, cached or not, still appends its
  :class:`~repro.enforcement.audit.AuditRecord`, so the audit sequence is
  byte-identical to the linear backend's.

``tests/enforcement/test_pdp_differential.py`` replays randomized policy
sets and event streams through both backends and asserts identical
decision and audit-record sequences; the ``enforcement`` workload of
``repro bench`` guards the throughput win.  See ``docs/ENFORCEMENT.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent
from repro.enforcement.audit import AuditLog
from repro.enforcement.pdp import (
    DECISION_LOG_WINDOW,
    PolicyDecisionPoint,
    PromptCallback,
    deny_all_prompts,
)
from repro.obs import get_metrics

#: A policy with its original position; candidates merge on this so
#: indexed dispatch decides in exactly the order the list was installed.
_Ranked = Tuple[int, ECAPolicy]

#: Cache sentinel distinct from "cached fallthrough" (which is ``None``).
_MISS = object()


class CompiledPolicySet:
    """An ordered policy list compiled into hash-dispatch buckets."""

    __slots__ = ("policies", "_exact", "_by_receiver", "_by_sender", "_fallback")

    def __init__(self, policies: Sequence[ECAPolicy] = ()) -> None:
        self.policies: Tuple[ECAPolicy, ...] = tuple(policies)
        # Bucket keys mirror the equality tests in ECAPolicy.matches:
        # a policy whose ``receiver`` condition is set can only match an
        # event with that exact receiver, so it is safe to file it under
        # that key -- and so on for sender and intent action.
        self._exact: Dict[Tuple[PolicyEvent, str, str], List[_Ranked]] = {}
        self._by_receiver: Dict[Tuple[PolicyEvent, str], List[_Ranked]] = {}
        self._by_sender: Dict[Tuple[PolicyEvent, str], List[_Ranked]] = {}
        self._fallback: Dict[PolicyEvent, List[_Ranked]] = {}
        for priority, policy in enumerate(self.policies):
            entry = (priority, policy)
            if policy.receiver is not None and policy.intent_action is not None:
                key3 = (policy.event, policy.receiver, policy.intent_action)
                self._exact.setdefault(key3, []).append(entry)
            elif policy.receiver is not None:
                key2 = (policy.event, policy.receiver)
                self._by_receiver.setdefault(key2, []).append(entry)
            elif policy.sender is not None:
                key2 = (policy.event, policy.sender)
                self._by_sender.setdefault(key2, []).append(entry)
            else:
                # Wildcard: neither endpoint pinned (category / extras /
                # permission-predicate conditions).  Small by construction
                # -- policy derivation pins a component whenever the
                # scenario names one -- and scanned last-resort-linear.
                self._fallback.setdefault(policy.event, []).append(entry)

    def __len__(self) -> int:
        return len(self.policies)

    def candidates(
        self, event_kind: PolicyEvent, event: IccEvent
    ) -> List[_Ranked]:
        """Every policy that could match the event, in priority order."""
        found: List[_Ranked] = []
        if event.receiver is not None:
            if event.action is not None:
                found += self._exact.get(
                    (event_kind, event.receiver, event.action), ()
                )
            found += self._by_receiver.get((event_kind, event.receiver), ())
        found += self._by_sender.get((event_kind, event.sender), ())
        found += self._fallback.get(event_kind, ())
        # Candidate lists are tiny (each bucket is one hash hit); a sort
        # on the priority rank restores global first-match order.
        found.sort(key=lambda ranked: ranked[0])
        return found

    def match(
        self, event_kind: PolicyEvent, event: IccEvent
    ) -> Optional[ECAPolicy]:
        """First matching policy under first-match-wins order, else None."""
        for _, policy in self.candidates(event_kind, event):
            if policy.matches(event_kind, event):
                return policy
        return None


def cache_key(
    event_kind: PolicyEvent, event: IccEvent
) -> Tuple[PolicyEvent, str, Optional[str], Optional[str], Tuple[str, ...], Tuple[str, ...]]:
    """Canonical intent shape: two events that ``ECAPolicy.matches``
    cannot distinguish map to the same key (extras and permissions are
    order-insensitive sets, hence sorted)."""
    return (
        event_kind,
        event.sender,
        event.receiver,
        event.action,
        tuple(sorted(r.value for r in event.extras)),
        tuple(sorted(event.sender_permissions)),
    )


class CompiledPolicyDecisionPoint(PolicyDecisionPoint):
    """PDP backend with indexed dispatch and a memoized decision cache.

    Decision- and audit-identical to the linear reference; only the cost
    of resolving the matching policy changes.
    """

    def __init__(
        self,
        policies: Sequence[ECAPolicy] = (),
        prompt_callback: PromptCallback = deny_all_prompts,
        audit: Optional[AuditLog] = None,
        log_window: int = DECISION_LOG_WINDOW,
        cache_max_entries: int = 65536,
    ) -> None:
        # Derived dispatch state must exist before super().__init__
        # assigns ``policies`` (the setter recompiles through it).
        self._compiled = CompiledPolicySet()
        self._cache: Dict[tuple, Optional[ECAPolicy]] = {}
        self._cache_max_entries = cache_max_entries
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        super().__init__(
            policies,
            prompt_callback=prompt_callback,
            audit=audit,
            log_window=log_window,
        )

    @property
    def compiled(self) -> CompiledPolicySet:
        return self._compiled

    def _policies_changed(self) -> None:
        """Recompile the index; any install/remove invalidates the whole
        decision cache (a new policy may out-prioritize any cached
        resolution, a removed one may un-deny any cached DENY)."""
        self._compiled = CompiledPolicySet(self._policies)
        if self._cache:
            self.cache_invalidations += 1
            self._cache.clear()

    def _match(
        self, event_kind: PolicyEvent, event: IccEvent
    ) -> Optional[ECAPolicy]:
        key = cache_key(event_kind, event)
        cached = self._cache.get(key, _MISS)
        metrics = get_metrics()
        if cached is not _MISS:
            self.cache_hits += 1
            if metrics.enabled:
                metrics.counter("pdp.cache.hits").inc()
            return cached
        self.cache_misses += 1
        if metrics.enabled:
            metrics.counter("pdp.cache.misses").inc()
        policy = self._compiled.match(event_kind, event)
        if policy is None or policy.action is PolicyAction.DENY:
            # Non-prompting resolutions only: a PROMPT match must consult
            # the user on every event, so it is resolved fresh each time.
            if len(self._cache) >= self._cache_max_entries:
                # Bounded by whole-cache reset: adversarially diverse
                # event shapes must not grow memory without limit.
                self._cache.clear()
            self._cache[key] = policy
        return policy
