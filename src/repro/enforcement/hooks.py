"""Xposed-style method hooking.

The Xposed framework lets a module register callbacks that run before and
after any method call, with the power to rewrite arguments, replace the
return value, or skip the call entirely -- all without touching the app's
APK.  :class:`HookManager` reproduces that contract for the IR interpreter:
the runtime consults it at every platform-API invoke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class MethodCall:
    """The mutable view of one intercepted invocation.

    Before-hooks may mutate ``args``, set ``skip = True`` (optionally with
    ``result``) to suppress the call, or leave it untouched.  After-hooks
    may replace ``result``."""

    signature: str
    component: str  # qualified component whose code is executing
    receiver: Any = None
    args: List[Any] = field(default_factory=list)
    skip: bool = False
    result: Any = None


BeforeHook = Callable[[MethodCall], None]
AfterHook = Callable[[MethodCall], None]


class HookManager:
    """Registry of per-signature before/after hooks."""

    def __init__(self) -> None:
        self._before: Dict[str, List[BeforeHook]] = {}
        self._after: Dict[str, List[AfterHook]] = {}
        self.invocations: int = 0  # intercepted-call counter (overhead stats)

    def hook(
        self,
        signature: str,
        before: Optional[BeforeHook] = None,
        after: Optional[AfterHook] = None,
    ) -> None:
        if before is None and after is None:
            raise ValueError("a hook needs a before or an after callback")
        if before is not None:
            self._before.setdefault(signature, []).append(before)
        if after is not None:
            self._after.setdefault(signature, []).append(after)

    def unhook_all(self, signature: Optional[str] = None) -> None:
        if signature is None:
            self._before.clear()
            self._after.clear()
        else:
            self._before.pop(signature, None)
            self._after.pop(signature, None)

    def is_hooked(self, signature: str) -> bool:
        return signature in self._before or signature in self._after

    def run_before(self, call: MethodCall) -> None:
        hooks = self._before.get(call.signature)
        if not hooks:
            return
        self.invocations += 1
        for hook in hooks:
            hook(call)
            if call.skip:
                return

    def run_after(self, call: MethodCall) -> None:
        hooks = self._after.get(call.signature)
        if not hooks:
            return
        for hook in hooks:
            hook(call)
