"""Bundle partitioning: 80 non-overlapping bundles of 50 apps (Section VII.B).

The paper simulates end-user devices by partitioning the 4,000-app corpus
into fixed-size bundles and analyzing each independently.  Shuffling with
the corpus seed mixes repositories within a bundle, as a real device mixes
install sources.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def partition_bundles(
    apps: Sequence[T], bundle_size: int = 50, seed: int = 2016
) -> List[List[T]]:
    """Shuffle and split into non-overlapping bundles.

    A trailing remainder smaller than ``bundle_size`` forms its own bundle
    (the paper's 4,000 / 50 divides evenly; scaled-down runs may not).
    """
    if bundle_size < 1:
        raise ValueError("bundle_size must be positive")
    pool = list(apps)
    random.Random(seed).shuffle(pool)
    return [
        pool[start:start + bundle_size]
        for start in range(0, len(pool), bundle_size)
    ]
