"""Seeded synthetic market corpus.

Every generated app is a real IR program the full AME pipeline analyzes;
vulnerability patterns are *injected as code*, not as labels -- whether
SEPAR finds them is up to the analysis.  The generator also tracks what it
injected, giving the RQ2 benchmark a ground-truth baseline to report
against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.dex import DexClass, DexProgram, MethodBuilder

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE
R = ComponentKind.RECEIVER

# A shared action vocabulary: cross-app filter collisions (and therefore
# inter-app attack surface) require apps to speak overlapping dialects.
COMMON_ACTIONS = [f"market.action.COMMON{i}" for i in range(30)]

SOURCE_APIS = [
    "TelephonyManager.getDeviceId",
    "LocationManager.getLastKnownLocation",
    "ContactsProvider.query",
    "AccountManager.getAccounts",
    "SmsProvider.query",
]

SINK_APIS = [
    "SmsManager.sendTextMessage",
    "URL.openConnection",
    "Log.d",
    "ExternalStorage.writeFile",
]

GUARDED_APIS = {
    "SmsManager.sendTextMessage": perms.SEND_SMS,
    "URL.openConnection": perms.INTERNET,
    "LocationManager.getLastKnownLocation": perms.ACCESS_FINE_LOCATION,
    "TelephonyManager.getDeviceId": perms.READ_PHONE_STATE,
}


@dataclass
class RepositoryProfile:
    """Population parameters for one app market."""

    name: str
    count: int
    # app size: components per app and filler methods per component
    components: Tuple[int, int]
    filler_methods: Tuple[int, int]
    # per-app injection probabilities
    p_hijack: float
    p_launch: float
    p_leak: float
    p_escalation: float


# Calibrated so 4,000 apps yield roughly the paper's counts
# (97 / 124 / 128 / 36 vulnerable apps).  Malgenome apps -- repackaged
# malware carriers -- skew toward exposed surfaces and sensitive flows.
REPOSITORIES: Dict[str, RepositoryProfile] = {
    "google_play": RepositoryProfile(
        "google_play", 1600, (4, 9), (1, 6), 0.020, 0.020, 0.028, 0.007
    ),
    "f_droid": RepositoryProfile(
        "f_droid", 1100, (3, 7), (1, 5), 0.014, 0.012, 0.020, 0.004
    ),
    "malgenome": RepositoryProfile(
        "malgenome", 1200, (4, 8), (1, 4), 0.035, 0.036, 0.050, 0.017
    ),
    "bazaar": RepositoryProfile(
        "bazaar", 100, (4, 9), (1, 6), 0.030, 0.028, 0.040, 0.010
    ),
}


@dataclass
class CorpusConfig:
    seed: int = 2016  # the paper's year; fixed for reproducibility
    scale: float = 1.0  # fraction of each repository's population
    repositories: Dict[str, RepositoryProfile] = field(
        default_factory=lambda: dict(REPOSITORIES)
    )

    def scaled_count(self, profile: RepositoryProfile) -> int:
        return max(1, round(profile.count * self.scale))


@dataclass
class InjectionLedger:
    """What the generator actually injected (RQ2's ground truth)."""

    hijack_apps: Set[str] = field(default_factory=set)
    launch_apps: Set[str] = field(default_factory=set)
    leak_apps: Set[str] = field(default_factory=set)
    escalation_apps: Set[str] = field(default_factory=set)

    def counts(self) -> Dict[str, int]:
        return {
            "intent_hijack": len(self.hijack_apps),
            "activity_service_launch": len(self.launch_apps),
            "information_leak": len(self.leak_apps),
            "privilege_escalation": len(self.escalation_apps),
        }


class CorpusGenerator:
    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()
        self.rng = random.Random(self.config.seed)
        self.ledger = InjectionLedger()

    # ------------------------------------------------------------------
    def generate(self) -> List[Apk]:
        apks: List[Apk] = []
        for profile in self.config.repositories.values():
            for i in range(self.config.scaled_count(profile)):
                apks.append(self._generate_app(profile, i))
        return apks

    # ------------------------------------------------------------------
    def _generate_app(self, profile: RepositoryProfile, index: int) -> Apk:
        rng = self.rng
        package = f"{profile.name}.app{index}"
        decls: List[ComponentDecl] = []
        classes: List[DexClass] = []
        permissions: Set[str] = set()

        n_components = rng.randint(*profile.components)
        decls.append(ComponentDecl("Launcher", A, exported=True))
        classes.append(self._benign_activity("Launcher", profile, rng))
        for ci in range(1, n_components):
            name = f"Cmp{ci}"
            kind = rng.choice([A, A, S, S, R])
            filters = []
            if kind is not ComponentKind.PROVIDER and rng.random() < 0.60:
                filters = [IntentFilter.for_action(f"{package}.ACT{ci}")]
            decls.append(ComponentDecl(name, kind, intent_filters=filters))
            classes.append(self._benign_component(name, kind, profile, rng))

        # --- vulnerability injections -----------------------------------
        if rng.random() < profile.p_hijack:
            self._inject_hijack(package, decls, classes, permissions, rng)
            self.ledger.hijack_apps.add(package)
        if rng.random() < profile.p_launch:
            self._inject_launch(package, decls, classes, permissions, rng)
            self.ledger.launch_apps.add(package)
        if rng.random() < profile.p_leak:
            self._inject_leak(package, decls, classes, permissions, rng)
            self.ledger.leak_apps.add(package)
        if rng.random() < profile.p_escalation:
            self._inject_escalation(package, decls, classes, permissions, rng)
            self.ledger.escalation_apps.add(package)

        return Apk(
            Manifest(
                package=package,
                uses_permissions=frozenset(permissions),
                components=decls,
            ),
            DexProgram(classes),
            repository=profile.name,
        )

    # ------------------------------------------------------------------
    def _benign_activity(
        self, name: str, profile: RepositoryProfile, rng: random.Random
    ) -> DexClass:
        return self._benign_component(name, A, profile, rng)

    def _benign_component(
        self,
        name: str,
        kind: ComponentKind,
        profile: RepositoryProfile,
        rng: random.Random,
    ) -> DexClass:
        entry = {A: "onCreate", S: "onStartCommand", R: "onReceive"}[kind]
        main = MethodBuilder(entry, params=("p0",))
        for i in range(rng.randint(2, 10)):
            main.const_string(f"v{i % 8}", f"ui-state-{i}")
        # Benign ICC chatter: real apps send plenty of harmless Intents
        # (Table II averages ~6 Intent entities per app), mostly addressed
        # within the app or under app-private actions.
        roll = rng.random()
        if roll < 0.65:
            main.new_instance("v0", "Intent")
            main.const_string("v1", f"{name}.internal")
            main.invoke("Intent.setAction", receiver="v0", args=("v1",))
            main.invoke(
                "Context.startService" if kind is not R else "Context.sendBroadcast",
                args=("v0",),
            )
        elif roll < 0.95:
            main.new_instance("v0", "Intent")
            main.const_string("v1", "Launcher")
            main.invoke("Intent.setClassName", receiver="v0", args=("v1",))
            main.invoke("Context.startActivity", args=("v0",))
        main.ret()
        methods = [main.build()]
        # Long-tailed code volume: most components are small, a few are
        # huge, mirroring real market size distributions (Figure 5's x-axis
        # spans two orders of magnitude).
        n_fillers = rng.randint(*profile.filler_methods)
        if rng.random() < 0.12:
            n_fillers += rng.randint(10, 60)
        for mi in range(n_fillers):
            helper = MethodBuilder(f"helper{mi}", params=("p0",))
            for i in range(rng.randint(5, 60)):
                helper.const_string(f"v{i % 8}", f"work-{i}")
            helper.ret("v0")
            methods.append(helper.build())
        superclass = {A: "Activity", S: "Service", R: "BroadcastReceiver"}[kind]
        return DexClass(name, superclass=superclass, methods=methods)

    # ------------------------------------------------------------------
    def _inject_hijack(self, package, decls, classes, permissions, rng) -> None:
        """A component broadcasting sensitive data under a common action."""
        source_api = rng.choice(SOURCE_APIS)
        action = rng.choice(COMMON_ACTIONS)
        permissions.add(GUARDED_APIS.get(source_api, perms.INTERNET))
        name = "LeakyBroadcaster"
        decls.append(ComponentDecl(name, S))
        classes.append(
            DexClass(
                name,
                superclass="Service",
                methods=[
                    MethodBuilder("onStartCommand", params=("p0",))
                    .invoke(source_api, receiver="v9", dest="v8")
                    .new_instance("v0", "Intent")
                    .const_string("v1", action)
                    .invoke("Intent.setAction", receiver="v0", args=("v1",))
                    .const_string("v2", "payload")
                    .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
                    .invoke(
                        rng.choice(
                            ["Context.sendBroadcast", "Context.startService"]
                        ),
                        args=("v0",),
                    )
                    .ret()
                    .build()
                ],
            )
        )

    def _inject_launch(self, package, decls, classes, permissions, rng) -> None:
        """An exported component whose ICC surface drives a sink.

        Sinks here are normal-permission or unguarded so the injection is a
        launch vulnerability but not also a privilege escalation (the
        escalation injection covers that pattern separately)."""
        sink_api = rng.choice(["Log.d", "URL.openConnection"])
        permissions.add(GUARDED_APIS.get(sink_api, perms.INTERNET))
        kind = rng.choice([A, S])
        name = "OpenWorker"
        action = rng.choice(COMMON_ACTIONS)
        decls.append(
            ComponentDecl(
                name, kind, intent_filters=[IntentFilter.for_action(action)]
            )
        )
        entry = "onCreate" if kind is A else "onStartCommand"
        b = (
            MethodBuilder(entry, params=("p0",))
            .const_string("v1", "task")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
        )
        if sink_api == "SmsManager.sendTextMessage":
            b.invoke("SmsManager.getDefault", dest="v3")
            b.invoke(sink_api, receiver="v3", args=("v2", "v2", "v2", "v2", "v2"))
        elif sink_api == "ExternalStorage.writeFile":
            b.const_string("v4", "/sdcard/task")
            b.invoke(sink_api, args=("v4", "v2"))
        elif sink_api == "Log.d":
            b.invoke(sink_api, args=("v0", "v2"))
        else:
            b.invoke(sink_api, args=("v2",))
        b.ret()
        classes.append(
            DexClass(
                name,
                superclass="Activity" if kind is A else "Service",
                methods=[b.build()],
            )
        )

    def _inject_leak(self, package, decls, classes, permissions, rng) -> None:
        """A two-component intra-app leak: source -> Intent -> sink."""
        source_api = rng.choice(SOURCE_APIS)
        sink_api = rng.choice(SINK_APIS)
        permissions.add(GUARDED_APIS.get(source_api, perms.INTERNET))
        permissions.add(GUARDED_APIS.get(sink_api, perms.INTERNET))
        decls.append(ComponentDecl("Gather", A, exported=True))
        decls.append(ComponentDecl("Relay", S))
        classes.append(
            DexClass(
                "Gather",
                superclass="Activity",
                methods=[
                    MethodBuilder("onCreate", params=("p0",))
                    .invoke(source_api, receiver="v9", dest="v8")
                    .new_instance("v0", "Intent")
                    .const_string("v1", f"{package}/Relay")
                    .invoke("Intent.setClassName", receiver="v0", args=("v1",))
                    .const_string("v2", "data")
                    .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
                    .invoke("Context.startService", args=("v0",))
                    .ret()
                    .build()
                ],
            )
        )
        b = (
            MethodBuilder("onStartCommand", params=("p0",))
            .const_string("v1", "data")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
        )
        if sink_api == "SmsManager.sendTextMessage":
            b.invoke("SmsManager.getDefault", dest="v3")
            b.invoke(sink_api, receiver="v3", args=("v2", "v2", "v2", "v2", "v2"))
        elif sink_api == "ExternalStorage.writeFile":
            b.const_string("v4", "/sdcard/cache")
            b.invoke(sink_api, args=("v4", "v2"))
        elif sink_api == "Log.d":
            b.invoke(sink_api, args=("v0", "v2"))
        else:
            b.invoke(sink_api, args=("v2",))
        b.ret()
        classes.append(DexClass("Relay", superclass="Service", methods=[b.build()]))

    def _inject_escalation(self, package, decls, classes, permissions, rng) -> None:
        """An exported component handing out a guarded capability."""
        permissions.add(perms.SEND_SMS)
        decls.append(ComponentDecl("Composer", A, exported=True))
        classes.append(
            DexClass(
                "Composer",
                superclass="Activity",
                methods=[
                    MethodBuilder("onCreate", params=("p0",))
                    .const_string("v1", "msg")
                    .invoke(
                        "Intent.getStringExtra",
                        receiver="p0", args=("v1",), dest="v2",
                    )
                    .invoke("SmsManager.getDefault", dest="v3")
                    .invoke(
                        "SmsManager.sendTextMessage",
                        receiver="v3",
                        args=("v2", "v2", "v2", "v2", "v2"),
                    )
                    .ret()
                    .build()
                ],
            )
        )
