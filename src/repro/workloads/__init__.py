"""Synthetic app-market corpus generation (the RQ2/RQ3 workload).

The paper evaluates SEPAR on 4,000 apps drawn from four repositories
(Google Play, F-Droid, Malgenome, Bazaar) partitioned into 80 bundles of
50.  With no access to those archives, :mod:`repro.workloads.corpus`
generates a seeded synthetic population whose structure matches what the
evaluation depends on: per-repository app-size distributions, a shared
Intent-action vocabulary, and per-repository base rates of the four
vulnerability patterns calibrated to the paper's reported counts (97
Intent-hijack, 124 launch, 128 information-leak, 36
privilege-escalation vulnerable apps in 4,000).
"""

from repro.workloads.corpus import CorpusConfig, CorpusGenerator, REPOSITORIES
from repro.workloads.bundles import partition_bundles

__all__ = [
    "CorpusConfig",
    "CorpusGenerator",
    "REPOSITORIES",
    "partition_bundles",
]
