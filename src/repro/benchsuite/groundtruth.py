"""Benchmark case records: apps plus ground-truth leak pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.android.apk import Apk

LeakPair = Tuple[str, str]  # (source component, sink component), qualified


@dataclass
class BenchmarkCase:
    """One test-case row of Table I."""

    name: str
    suite: str  # "DroidBench2" or "ICC-Bench"
    apks: List[Apk]
    expected: FrozenSet[LeakPair]
    notes: str = ""

    @property
    def num_leaks(self) -> int:
        return len(self.expected)
