"""Benchmark case records (apps plus ground-truth leak pairs) and the
precision/recall scorer for the adversarial corpus's ground-truth manifest.

The manifest scorer works at (bundle, app) granularity: a planted attack
implicates a set of packages, and the analysis is right when it reports
exactly those packages under that signature.  TP/FP/FN conventions follow
:class:`~repro.benchsuite.metrics.ToolScore`: nothing reported means
precision 1.0, nothing planted means recall 1.0."""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.android.apk import Apk
from repro.core.attack_generation import GroundTruthManifest, SCALED_SIGNATURES
from repro.core.vulnerabilities.base import ExploitScenario

LeakPair = Tuple[str, str]  # (source component, sink component), qualified

BundleApp = Tuple[int, str]  # (bundle index, package)


@dataclass
class BenchmarkCase:
    """One test-case row of Table I."""

    name: str
    suite: str  # "DroidBench2" or "ICC-Bench"
    apks: List[Apk]
    expected: FrozenSet[LeakPair]
    notes: str = ""

    @property
    def num_leaks(self) -> int:
        return len(self.expected)


@dataclass
class SignatureAccuracy:
    """Detection accuracy for one signature against the planted truth."""

    signature: str
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f_measure(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def findings_from_scenarios(
    scenarios_by_bundle: Sequence[Iterable[ExploitScenario]],
) -> Dict[str, Set[BundleApp]]:
    """Collapse per-bundle exploit scenarios to the (bundle, package)
    pairs each signature implicates.  Role atoms naming components are
    qualified ``package/Component``; postulated (attacker) atoms carry no
    slash and are skipped -- they name no installed app."""
    found: Dict[str, Set[BundleApp]] = {}
    for b, scenarios in enumerate(scenarios_by_bundle):
        for scenario in scenarios:
            apps = {
                atom.split("/", 1)[0]
                for atom in scenario.roles.values()
                if isinstance(atom, str) and "/" in atom
            }
            found.setdefault(scenario.vulnerability, set()).update(
                (b, app) for app in apps
            )
    return found


def score_against_manifest(
    manifest: GroundTruthManifest,
    found: Dict[str, Set[BundleApp]],
    signatures: Optional[Sequence[str]] = None,
) -> Dict[str, SignatureAccuracy]:
    """Score reported (bundle, package) findings against the planted
    ground truth, per signature.  ``signatures`` defaults to the scaled
    set the adversarial generator plants."""
    names = tuple(signatures) if signatures is not None else SCALED_SIGNATURES
    scores: Dict[str, SignatureAccuracy] = {}
    for name in names:
        expected: Set[BundleApp] = set()
        for b in range(manifest.bundles):
            expected |= {(b, app) for app in manifest.expected(name, b)}
        got = found.get(name, set())
        scores[name] = SignatureAccuracy(
            signature=name,
            true_positives=len(got & expected),
            false_positives=len(got - expected),
            false_negatives=len(expected - got),
        )
    return scores
