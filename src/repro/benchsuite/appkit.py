"""Compact builders for benchmark apps.

The DroidBench / ICC-Bench re-creations assemble dozens of small apps with
the same few shapes: a component that reads a sensitive source and sends it
onward over some ICC API, and a component that receives ICC data and leaks
it to a sink.  These helpers keep each test case definition short and
legible while still producing real IR that the full AME pipeline analyzes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import CATEGORY_DEFAULT, IntentFilter
from repro.android.manifest import Manifest
from repro.dex import DexClass, DexProgram, MethodBuilder

DEFAULT_SOURCE = "TelephonyManager.getDeviceId"  # IMEI: DroidBench's favorite
DEFAULT_SINK = "SmsManager.sendTextMessage"

_ENTRY_FOR_KIND = {
    ComponentKind.ACTIVITY: "onCreate",
    ComponentKind.SERVICE: "onStartCommand",
    ComponentKind.RECEIVER: "onReceive",
}


def source_sender_class(
    name: str,
    kind: ComponentKind,
    send_api: str,
    action: Optional[str] = None,
    target: Optional[str] = None,
    data_scheme: Optional[str] = None,
    category: Optional[str] = None,
    data_type: Optional[str] = None,
    source_api: str = DEFAULT_SOURCE,
    extra_key: str = "secret",
    entry: Optional[str] = None,
    via_helper: bool = False,
) -> DexClass:
    """A component that reads a source and ships it via an ICC send API."""
    b = MethodBuilder(entry or _ENTRY_FOR_KIND[kind], params=("p0",))
    b.invoke(source_api, receiver="v9", dest="v8")
    b.new_instance("v0", "Intent")
    if action is not None:
        b.const_string("v1", action)
        b.invoke("Intent.setAction", receiver="v0", args=("v1",))
    if target is not None:
        b.const_string("v2", target)
        b.invoke("Intent.setClassName", receiver="v0", args=("v2",))
    if category is not None:
        b.const_string("v3", category)
        b.invoke("Intent.addCategory", receiver="v0", args=("v3",))
    if data_scheme is not None:
        b.const_string("v4", f"{data_scheme}://payload")
        b.invoke("Intent.setData", receiver="v0", args=("v4",))
    if data_type is not None:
        b.const_string("v5", data_type)
        b.invoke("Intent.setType", receiver="v0", args=("v5",))
    b.const_string("v6", extra_key)
    b.invoke("Intent.putExtra", receiver="v0", args=("v6", "v8"))
    if via_helper:
        b.invoke("this.doSend", args=("v0",))
        b.ret()
        methods = [
            b.build(),
            MethodBuilder("doSend", params=("p0",))
            .invoke(send_api, args=("p0",))
            .ret()
            .build(),
        ]
    else:
        b.invoke(send_api, args=("v0",))
        b.ret()
        methods = [b.build()]
    superclass = kind.value if kind is not ComponentKind.RECEIVER else "BroadcastReceiver"
    return DexClass(name, superclass=superclass, methods=methods)


def leaking_receiver_class(
    name: str,
    kind: ComponentKind,
    sink_api: str = DEFAULT_SINK,
    extra_key: str = "secret",
    entry: Optional[str] = None,
) -> DexClass:
    """A component that reads an Intent extra and leaks it to a sink."""
    b = MethodBuilder(entry or _ENTRY_FOR_KIND[kind], params=("p0",))
    b.const_string("v1", extra_key)
    b.invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
    if sink_api == DEFAULT_SINK:
        b.invoke("SmsManager.getDefault", dest="v3")
        b.const_string("v4", "5550001")
        b.invoke(
            sink_api, receiver="v3", args=("v4", "v4", "v2", "v4", "v4")
        )
    elif sink_api.startswith("Log."):
        b.invoke(sink_api, args=("v0", "v2"))
    elif sink_api == "URL.openConnection":
        b.invoke(sink_api, args=("v2",))
    elif sink_api == "ExternalStorage.writeFile":
        b.const_string("v5", "/sdcard/out.txt")
        b.invoke(sink_api, args=("v5", "v2"))
    else:
        b.invoke(sink_api, args=("v2",))
    b.ret()
    superclass = kind.value if kind is not ComponentKind.RECEIVER else "BroadcastReceiver"
    return DexClass(name, superclass=superclass, methods=[b.build()])


def result_returning_class(
    name: str,
    source_api: str = DEFAULT_SOURCE,
    extra_key: str = "secret",
) -> DexClass:
    """An Activity that reads a source and hands it back via setResult."""
    return DexClass(
        name,
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .invoke(source_api, receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", extra_key)
            .invoke("Intent.putExtra", receiver="v0", args=("v1", "v8"))
            .invoke("Activity.setResult", args=("v0",))
            .ret()
            .build()
        ],
    )


def result_consuming_class(
    name: str,
    callee_target: str,
    sink_api: str = DEFAULT_SINK,
    extra_key: str = "secret",
) -> DexClass:
    """An Activity that startActivityForResult's a callee, then leaks the
    returned payload."""
    leak = MethodBuilder("onActivityResult", params=("p0",))
    leak.const_string("v1", extra_key)
    leak.invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
    if sink_api == DEFAULT_SINK:
        leak.invoke("SmsManager.getDefault", dest="v3")
        leak.const_string("v4", "5550001")
        leak.invoke(sink_api, receiver="v3", args=("v4", "v4", "v2", "v4", "v4"))
    else:
        leak.invoke(sink_api, args=("v0", "v2"))
    leak.ret()
    return DexClass(
        name,
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .new_instance("v0", "Intent")
            .const_string("v1", callee_target)
            .invoke("Intent.setClassName", receiver="v0", args=("v1",))
            .invoke("Context.startActivityForResult", args=("v0",))
            .ret()
            .build(),
            leak.build(),
        ],
    )


def component_decl(
    name: str,
    kind: ComponentKind,
    action: Optional[str] = None,
    category: Optional[str] = None,
    data_scheme: Optional[str] = None,
    data_type: Optional[str] = None,
    exported: Optional[bool] = None,
    authority: Optional[str] = None,
) -> ComponentDecl:
    filters = []
    if action is not None:
        categories = {category} if category else set()
        # Real manifests declare DEFAULT on Activity filters so implicit
        # startActivity Intents can resolve to them; mirror that here.
        if kind is ComponentKind.ACTIVITY:
            categories.add(CATEGORY_DEFAULT)
        filters.append(
            IntentFilter(
                actions=frozenset({action}),
                categories=frozenset(categories),
                data_schemes=frozenset({data_scheme} if data_scheme else ()),
                data_types=frozenset({data_type} if data_type else ()),
            )
        )
    return ComponentDecl(
        name,
        kind,
        exported=exported,
        intent_filters=filters,
        authority=authority,
    )


def make_apk(
    package: str,
    decls: Sequence[ComponentDecl],
    classes: Sequence[DexClass],
    uses_permissions: Iterable[str] = (),
    repository: str = "benchmark",
) -> Apk:
    return Apk(
        Manifest(
            package=package,
            uses_permissions=frozenset(uses_permissions),
            components=list(decls),
        ),
        DexProgram(list(classes)),
        repository=repository,
    )
