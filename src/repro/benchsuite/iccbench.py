"""ICC-Bench test cases (Table I, lower block), rebuilt on the IR.

Nine single-app cases: one explicit leak, six implicit leaks exercising
each dimension of filter matching (action, category, data scheme, MIME
type, and mixes), and two dynamically-registered-receiver leaks -- the two
rows the published SEPAR misses because its model extractor does not handle
``registerReceiver`` (Section VII.A).
"""

from __future__ import annotations

from typing import List

from repro.android.components import ComponentKind
from repro.benchsuite.appkit import (
    component_decl,
    leaking_receiver_class,
    make_apk,
    source_sender_class,
)
from repro.benchsuite.groundtruth import BenchmarkCase
from repro.dex import DexClass, MethodBuilder

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE
R = ComponentKind.RECEIVER


def _case(name, apks, expected, notes="") -> BenchmarkCase:
    return BenchmarkCase(
        name=name, suite="ICC-Bench", apks=apks,
        expected=frozenset(expected), notes=notes,
    )


def explicit_src_sink() -> BenchmarkCase:
    pkg = "icc.explicit"
    apk = make_apk(
        pkg,
        [component_decl("Main", A, exported=True), component_decl("Sink", S)],
        [
            source_sender_class(
                "Main", A, "Context.startService", target=f"{pkg}/Sink"
            ),
            leaking_receiver_class("Sink", S),
        ],
    )
    return _case("Explicit_Src_Sink", [apk], [(f"{pkg}/Main", f"{pkg}/Sink")])


def implicit_action() -> BenchmarkCase:
    pkg = "icc.action"
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Sink", S, action="icc.ACTION"),
        ],
        [
            source_sender_class("Main", A, "Context.startService", action="icc.ACTION"),
            leaking_receiver_class("Sink", S),
        ],
    )
    return _case("Implicit_Action", [apk], [(f"{pkg}/Main", f"{pkg}/Sink")])


def implicit_category() -> BenchmarkCase:
    pkg = "icc.category"
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl(
                "Sink", S, action="icc.CAT", category="icc.category.TEST"
            ),
        ],
        [
            source_sender_class(
                "Main", A, "Context.startService",
                action="icc.CAT", category="icc.category.TEST",
            ),
            leaking_receiver_class("Sink", S),
        ],
    )
    return _case("Implicit_Category", [apk], [(f"{pkg}/Main", f"{pkg}/Sink")])


def implicit_data(n: int) -> BenchmarkCase:
    pkg = f"icc.data{n}"
    if n == 1:
        decl = component_decl("Sink", S, action="icc.DATA", data_scheme="content")
        sender = source_sender_class(
            "Main", A, "Context.startService",
            action="icc.DATA", data_scheme="content",
        )
    else:
        decl = component_decl("Sink", S, action="icc.DATA", data_type="text/plain")
        sender = source_sender_class(
            "Main", A, "Context.startService",
            action="icc.DATA", data_type="text/plain",
        )
    apk = make_apk(
        pkg,
        [component_decl("Main", A, exported=True), decl],
        [sender, leaking_receiver_class("Sink", S)],
    )
    return _case(f"Implicit_Data{n}", [apk], [(f"{pkg}/Main", f"{pkg}/Sink")])


def implicit_mix(n: int) -> BenchmarkCase:
    pkg = f"icc.mix{n}"
    category = "icc.category.MIX" if n == 1 else None
    scheme = "content" if n == 2 else None
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl(
                "Sink", S, action=f"icc.MIX{n}",
                category=category, data_scheme=scheme,
            ),
        ],
        [
            source_sender_class(
                "Main", A, "Context.startService",
                action=f"icc.MIX{n}", category=category, data_scheme=scheme,
            ),
            leaking_receiver_class("Sink", S),
        ],
    )
    return _case(f"Implicit_Mix{n}", [apk], [(f"{pkg}/Main", f"{pkg}/Sink")])


def dyn_registered_receiver(n: int) -> BenchmarkCase:
    """A Broadcast Receiver registered in code, not the manifest.

    Case 1 resolves the action from a constant string -- analyzable by a
    tool that models ``registerReceiver``.  Case 2 fetches the action from
    an opaque platform call (``Resources.getString``), defeating constant
    propagation for every tool.
    """
    pkg = f"icc.dynreg{n}"
    action = f"icc.DYN{n}"
    if n == 1:
        action_setup = (
            MethodBuilder("onCreate", params=("p0",))
            .new_instance("v0", "DynRecv")
            .new_instance("v1", "IntentFilter")
            .const_string("v2", action)
            .invoke("IntentFilter.addAction", receiver="v1", args=("v2",))
            .invoke("Context.registerReceiver", args=("v0", "v1"))
            # Then broadcast the tainted payload to it.
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .new_instance("v3", "Intent")
            .invoke("Intent.setAction", receiver="v3", args=("v2",))
            .const_string("v4", "secret")
            .invoke("Intent.putExtra", receiver="v3", args=("v4", "v8"))
            .invoke("Context.sendBroadcast", args=("v3",))
            .ret()
            .build()
        )
    else:
        action_setup = (
            MethodBuilder("onCreate", params=("p0",))
            .new_instance("v0", "DynRecv")
            .new_instance("v1", "IntentFilter")
            # The action string comes from an unmodeled platform call.
            .invoke("Resources.getString", receiver="v9", dest="v2")
            .invoke("IntentFilter.addAction", receiver="v1", args=("v2",))
            .invoke("Context.registerReceiver", args=("v0", "v1"))
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .new_instance("v3", "Intent")
            .invoke("Intent.setAction", receiver="v3", args=("v2",))
            .const_string("v4", "secret")
            .invoke("Intent.putExtra", receiver="v3", args=("v4", "v8"))
            .invoke("Context.sendBroadcast", args=("v3",))
            .ret()
            .build()
        )
    registrar = DexClass("Main", superclass="Activity", methods=[action_setup])
    receiver = leaking_receiver_class("DynRecv", R)
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("DynRecv", R),  # no manifest filter
        ],
        [registrar, receiver],
    )
    return _case(
        f"DynRegisteredReceiver{n}",
        [apk],
        [(f"{pkg}/Main", f"{pkg}/DynRecv")],
        notes="dynamically registered receiver",
    )


def iccbench_cases() -> List[BenchmarkCase]:
    """All nine ICC-Bench rows of Table I, in table order."""
    return [
        explicit_src_sink(),
        implicit_action(),
        implicit_category(),
        implicit_data(1),
        implicit_data(2),
        implicit_mix(1),
        implicit_mix(2),
        dyn_registered_receiver(1),
        dyn_registered_receiver(2),
    ]
