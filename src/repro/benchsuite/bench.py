"""Continuous benchmark-regression harness (``repro bench``).

One command runs the paper's benchmark workloads -- Fig 5 per-app
extraction, Table II cold/warm pipeline synthesis, Table I accuracy over
DroidBench and ICC-Bench, and the sustained-throughput enforcement
workload (RQ4 extended: PDP events/sec and decision latency, compiled vs
linear backend, hooked vs unhooked runtime) -- and emits a
schema-versioned ``BENCH_<label>.json`` snapshot: per-workload wall
clock, solver counters, cache hit rates, shared-encoding reuse figures,
accuracy scores, peak RSS and an environment fingerprint.

A second invocation with ``--compare OLD NEW`` diffs two snapshots with
per-metric relative thresholds (direction-aware: ``*_seconds`` going up
is a regression, ``precision`` going down is) and reports regressions,
so a checked-in baseline turns any run into a perf gate.  The comparison
is pure data -> data, which is what the regression tests exercise.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Bump when the snapshot layout changes incompatibly; ``compare_bench``
#: refuses to diff across versions.
BENCH_SCHEMA_VERSION = 1

DEFAULT_THRESHOLD = 0.25

#: Metrics where *larger* is the good direction; everything else regresses
#: when it grows (wall clock, memory, solver effort, failure counts).
HIGHER_BETTER = frozenset(
    {
        "cache_hit_rate",
        "precision",
        "recall",
        "f_measure",
        "true_positives",
        "shared_speedup",
        "compiled_speedup",
        "linear_events_per_sec",
        "compiled_events_per_sec",
        "warm_speedup",
        "warm_hit_rate",
        "requests_per_sec",
    }
)

def _higher_better(metric: str) -> bool:
    """Direction tag for a metric.  Beyond the fixed set, any
    per-signature accuracy metric (``<signature>_precision`` etc., as the
    accuracy_scaled workload emits for arbitrary registered signatures)
    is better when larger."""
    return metric in HIGHER_BETTER or metric.endswith(
        ("_precision", "_recall", "_f_measure")
    )


#: Workload-configuration identity: these must match between two snapshots
#: for a perf comparison to mean anything.  A difference is reported as a
#: mismatch, never as a regression.
IDENTITY_METRICS = frozenset(
    {
        "jobs",
        "num_apps",
        "num_bundles",
        "num_scenarios",
        "num_policies",
        "cases",
        "apps",
        "bundles",
        "scenarios",
        "policies",
        "events",
        "queries",
        "socket_requests",
        "planted",
        "decoys",
    }
)


@dataclass
class BenchConfig:
    """What to run and at which scale."""

    label: str = "local"
    scale: float = 0.01  # corpus fraction (paper full scale = 1.0)
    bundle_size: int = 8
    scenarios: int = 2
    jobs: int = 1
    seed: int = 2016
    shared_encoding: bool = True
    solver_backend: str = "fast"
    quick: bool = False
    workloads: Sequence[str] = field(
        default_factory=lambda: (
            "extraction",
            "pipeline_cold",
            "pipeline_warm",
            "synthesis_modes",
            "accuracy",
            "accuracy_scaled",
            "enforcement",
            "service",
        )
    )

    def effective_scale(self) -> float:
        return min(self.scale, 0.005) if self.quick else self.scale

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["workloads"] = list(self.workloads)
        return data


def environment_fingerprint() -> Dict[str, Any]:
    """Where this snapshot was taken -- enough to judge comparability."""
    fingerprint: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
        fingerprint["git_rev"] = rev.stdout.strip() if rev.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        fingerprint["git_rev"] = None
    return fingerprint


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, when the platform tells us."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak * 1024 if sys.platform.startswith("linux") else peak


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


# ----------------------------------------------------------------------
# Workloads


def _bench_extraction(config: BenchConfig) -> Dict[str, float]:
    """Fig 5: per-app model extraction over a generated corpus."""
    from repro.statics import extract_app
    from repro.workloads import CorpusConfig, CorpusGenerator

    generator = CorpusGenerator(
        CorpusConfig(seed=config.seed, scale=config.effective_scale())
    )
    apks = generator.generate()
    per_app: List[float] = []
    t0 = time.perf_counter()
    for apk in apks:
        start = time.perf_counter()
        extract_app(apk)
        per_app.append(time.perf_counter() - start)
    return {
        "apps": float(len(apks)),
        "total_seconds": time.perf_counter() - t0,
        "mean_seconds": sum(per_app) / len(per_app) if per_app else 0.0,
        "p95_seconds": _percentile(per_app, 0.95),
        "max_seconds": max(per_app) if per_app else 0.0,
    }


def _bench_pipeline(config: BenchConfig) -> Dict[str, Dict[str, float]]:
    """Table II via the cached pipeline: a cold run then a warm rerun."""
    from repro.benchsuite.metrics import summarize_run_report
    from repro.pipeline import AnalysisPipeline, PipelineCache
    from repro.workloads import CorpusConfig, CorpusGenerator, partition_bundles

    generator = CorpusGenerator(
        CorpusConfig(seed=config.seed, scale=config.effective_scale())
    )
    apks = generator.generate()
    bundles = partition_bundles(
        apks, bundle_size=config.bundle_size, seed=config.seed
    )
    out: Dict[str, Dict[str, float]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        for phase in ("pipeline_cold", "pipeline_warm"):
            pipeline = AnalysisPipeline(
                jobs=config.jobs,
                cache=PipelineCache(cache_dir),
                scenarios_per_signature=config.scenarios,
                shared_encoding=config.shared_encoding,
                solver_backend=config.solver_backend,
            )
            t0 = time.perf_counter()
            result = pipeline.run(bundles)
            wall = time.perf_counter() - t0
            summary = summarize_run_report(result.run_report)
            summary["wall_seconds"] = wall
            out[phase] = summary
    return out


def _bench_accuracy(config: BenchConfig) -> Dict[str, float]:
    """Table I: SEPAR leak detection over DroidBench + ICC-Bench."""
    from repro.baselines.separ_tool import SeparTool
    from repro.benchsuite.droidbench import droidbench_cases
    from repro.benchsuite.iccbench import iccbench_cases
    from repro.benchsuite.metrics import score_tool

    cases = droidbench_cases() + iccbench_cases()
    if config.quick:
        # A representative slice: enough to catch a broken analysis or a
        # gross slowdown without paying for all 33 cases.
        cases = cases[::4]
    tool = SeparTool()
    results = {}
    t0 = time.perf_counter()
    for case in cases:
        results[case.name] = tool.find_leaks(case.apks)
    seconds = time.perf_counter() - t0
    score = score_tool("separ", cases, results)
    return {
        "cases": float(len(cases)),
        "total_seconds": seconds,
        "mean_seconds": seconds / len(cases) if cases else 0.0,
        "precision": score.precision,
        "recall": score.recall,
        "f_measure": score.f_measure,
        "true_positives": float(score.true_positives),
        "false_positives": float(score.false_positives),
        "false_negatives": float(score.false_negatives),
    }


def _bench_accuracy_scaled(config: BenchConfig) -> Dict[str, float]:
    """Scaled threat model: precision/recall of the four multi-step
    signatures against the adversarial generator's planted ground truth.

    Every metric ending in ``_precision``/``_recall``/``_f_measure`` is
    direction-tagged higher-is-better, so a comparison flags any accuracy
    drop as a regression the same way it flags a slowdown."""
    from repro.benchsuite.groundtruth import (
        findings_from_scenarios,
        score_against_manifest,
    )
    from repro.core.attack_generation import (
        AdversarialCorpusConfig,
        AdversarialCorpusGenerator,
    )
    from repro.core.synthesis import AnalysisAndSynthesisEngine
    from repro.statics import extract_bundle

    corpus_config = AdversarialCorpusConfig(
        seed=config.seed,
        bundles=2 if config.quick else 6,
        apps_per_bundle=6 if config.quick else 10,
    )
    bundles, manifest = AdversarialCorpusGenerator(corpus_config).generate()
    engine = AnalysisAndSynthesisEngine(
        scenarios_per_signature=max(config.scenarios, 4),
        shared_encoding=config.shared_encoding,
        solver_backend=config.solver_backend,
    )
    t0 = time.perf_counter()
    per_bundle = []
    for apks in bundles:
        bundle = extract_bundle(apks, handle_dynamic_receivers=True)
        per_bundle.append(engine.run(bundle).scenarios)
    seconds = time.perf_counter() - t0

    found = findings_from_scenarios(per_bundle)
    scores = score_against_manifest(manifest, found)
    metrics: Dict[str, float] = {
        "bundles": float(corpus_config.bundles),
        "apps": float(corpus_config.bundles * corpus_config.apps_per_bundle),
        "planted": float(len(manifest.planted)),
        "decoys": float(len(manifest.decoys)),
        "total_seconds": seconds,
        "mean_bundle_seconds": (
            seconds / corpus_config.bundles if corpus_config.bundles else 0.0
        ),
    }
    tp = fp = fn = 0
    for name, accuracy in sorted(scores.items()):
        metrics[f"{name}_precision"] = accuracy.precision
        metrics[f"{name}_recall"] = accuracy.recall
        metrics[f"{name}_f_measure"] = accuracy.f_measure
        tp += accuracy.true_positives
        fp += accuracy.false_positives
        fn += accuracy.false_negatives
    reported = tp + fp
    actual = tp + fn
    precision = tp / reported if reported else 1.0
    recall = tp / actual if actual else 1.0
    metrics["precision"] = precision
    metrics["recall"] = recall
    metrics["f_measure"] = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    metrics["true_positives"] = float(tp)
    metrics["false_positives"] = float(fp)
    metrics["false_negatives"] = float(fn)
    return metrics


def _bench_synthesis_modes(config: BenchConfig) -> Dict[str, float]:
    """Shared vs per-signature synthesis wall-clock on identical bundles.

    The PR 4 tradeoff, measured head-on: the shared encoding saves ~5x
    on translations but used to *lose* end-to-end because every gated
    query re-propagated the larger shared DB.  ``shared_speedup`` > 1.0
    means the shared mode wins outright (the target state on the fast
    backend); it is direction-tagged in ``HIGHER_BETTER`` so a
    comparison flags any slide back below parity.

    Runs at the engine level (no cache, no worker pool) so the numbers
    isolate encoding + solving, and uses the corpus ledger to bias
    bundles toward injected-vulnerable apps -- all-clean bundles solve
    too fast to measure anything.
    """
    import random

    from repro.core.synthesis import AnalysisAndSynthesisEngine
    from repro.statics import extract_bundle
    from repro.workloads import CorpusConfig, CorpusGenerator

    generator = CorpusGenerator(
        CorpusConfig(seed=config.seed, scale=config.effective_scale())
    )
    apks = generator.generate()
    ledger = generator.ledger
    flagged = set()
    for group in (
        ledger.hijack_apps,
        ledger.launch_apps,
        ledger.leak_apps,
        ledger.escalation_apps,
    ):
        flagged.update(group)
    rng = random.Random(config.seed)
    vulnerable = [a for a in apks if a.package in flagged]
    neutral = [a for a in apks if a.package not in flagged]
    size = min(3, max(2, config.bundle_size))
    bundles = []
    for _ in range(2 if config.quick else 3):
        picked = rng.sample(vulnerable, min(2, len(vulnerable)))
        picked += rng.sample(
            neutral, min(len(neutral), max(0, size - len(picked)))
        )
        bundles.append(extract_bundle(picked))

    def run_mode(shared: bool) -> Dict[str, float]:
        engine = AnalysisAndSynthesisEngine(
            scenarios_per_signature=config.scenarios,
            shared_encoding=shared,
            solver_backend=config.solver_backend,
        )
        t0 = time.perf_counter()
        scenarios = 0
        propagations = 0
        for bundle in bundles:
            result = engine.run(bundle)
            scenarios += len(result.scenarios)
            propagations += result.stats.propagations
        return {
            "seconds": time.perf_counter() - t0,
            "scenarios": float(scenarios),
            "propagations": float(propagations),
        }

    per_sig = run_mode(shared=False)
    shared = run_mode(shared=True)
    return {
        "bundles": float(len(bundles)),
        "scenarios": shared["scenarios"],
        "per_signature_seconds": per_sig["seconds"],
        "shared_seconds": shared["seconds"],
        "shared_speedup": (
            per_sig["seconds"] / shared["seconds"]
            if shared["seconds"] > 0
            else 0.0
        ),
        "per_signature_propagations": per_sig["propagations"],
        "shared_propagations": shared["propagations"],
    }


def make_enforcement_workload(
    seed: int = 2016,
    num_policies: int = 192,
    num_shapes: int = 512,
    num_events: int = 24000,
):
    """Deterministic policy set + ICC event stream for enforcement benches.

    Generates policies across every condition shape the compiled PDP
    dispatches on -- exact ``(receiver, action)`` pins, receiver-only,
    sender-pinned hijack-style (``allowed_receivers``),
    permission-predicate, and endpoint-free wildcard (extras-only) rules
    -- plus a skewed event stream: a bounded pool of distinct intent
    shapes sampled with replacement, so the decision cache sees realistic
    re-occurrence, most events fall through to default-allow, and a
    policy-matching minority exercises both verdicts.  Also reused by the
    RQ4 benchmark and the backend-differential tests, so the measured
    stream and the verified stream are the same distribution.

    Returns ``(policies, stream)`` with ``stream`` a list of
    ``(PolicyEvent, IccEvent)`` pairs.
    """
    import random

    from repro.android.resources import Resource
    from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent

    rng = random.Random(seed)
    components = [f"app{i:03d}.pkg/Comp{i:03d}" for i in range(96)]
    actions = [f"com.bench.ACTION_{i}" for i in range(24)]
    permissions = [f"perm.P{i}" for i in range(12)]
    resources = sorted(Resource, key=lambda r: r.value)

    def some_resources() -> frozenset:
        return frozenset(rng.sample(resources, rng.randint(1, 2)))

    policies = []
    for i in range(num_policies):
        verdict = (
            PolicyAction.DENY if rng.random() < 0.75 else PolicyAction.PROMPT
        )
        shape = rng.randrange(8)
        if shape <= 2:  # exact (receiver, action) pin
            policy = ECAPolicy(
                event=PolicyEvent.ICC_RECEIVE,
                vulnerability="service_launch",
                action=verdict,
                receiver=rng.choice(components),
                intent_action=rng.choice(actions),
            )
        elif shape <= 4:  # receiver-only, payload condition
            policy = ECAPolicy(
                event=PolicyEvent.ICC_RECEIVE,
                vulnerability="information_leak",
                action=verdict,
                receiver=rng.choice(components),
                extras_any=some_resources(),
            )
        elif shape == 5:  # sender-pinned hijack shape
            policy = ECAPolicy(
                event=PolicyEvent.ICC_SEND,
                vulnerability="intent_hijack",
                action=verdict,
                sender=rng.choice(components),
                intent_action=rng.choice(actions),
                allowed_receivers=frozenset(rng.sample(components, 3)),
            )
        elif shape == 6:  # permission predicate
            policy = ECAPolicy(
                event=PolicyEvent.ICC_RECEIVE,
                vulnerability="privilege_escalation",
                action=verdict,
                receiver=rng.choice(components),
                sender_lacks_permission=rng.choice(permissions),
            )
        else:  # wildcard: no endpoint pinned, fallback-chain matcher
            policy = ECAPolicy(
                event=PolicyEvent.ICC_RECEIVE,
                vulnerability="information_leak",
                action=verdict,
                extras_any=frozenset({rng.choice(resources)}),
            )
        policies.append(policy)

    shapes = []
    for _ in range(num_shapes):
        kind = (
            PolicyEvent.ICC_SEND
            if rng.random() < 0.4
            else PolicyEvent.ICC_RECEIVE
        )
        event = IccEvent(
            sender=rng.choice(components),
            receiver=rng.choice(components) if rng.random() < 0.9 else None,
            action=rng.choice(actions) if rng.random() < 0.8 else None,
            extras=some_resources() if rng.random() < 0.3 else frozenset(),
            sender_permissions=(
                frozenset(rng.sample(permissions, 2))
                if rng.random() < 0.5
                else frozenset()
            ),
        )
        shapes.append((kind, event))
    stream = [rng.choice(shapes) for _ in range(num_events)]
    return policies, stream


def _bench_icc_heavy_apk(ops: int):
    """An app whose activation fires ``ops`` hooked startService calls."""
    from repro.android.apk import Apk
    from repro.android.components import ComponentDecl, ComponentKind
    from repro.android.intents import IntentFilter
    from repro.android.manifest import Manifest
    from repro.dex import DexClass, DexProgram, MethodBuilder

    pinger = MethodBuilder("onCreate", params=("p0",))
    for i in range(ops):
        pinger.new_instance("v0", "Intent")
        pinger.const_string("v1", "bench.PING")
        pinger.invoke("Intent.setAction", receiver="v0", args=("v1",))
        pinger.invoke("Context.startService", args=("v0",))
    pinger.ret()
    ponger = MethodBuilder("onStartCommand", params=("p0",)).ret().build()
    return Apk(
        Manifest(
            package="bench.icc",
            components=[
                ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True),
                ComponentDecl(
                    "Pong",
                    ComponentKind.SERVICE,
                    intent_filters=[IntentFilter.for_action("bench.PING")],
                ),
            ],
        ),
        DexProgram(
            [
                DexClass("Main", superclass="Activity", methods=[pinger.build()]),
                DexClass("Pong", superclass="Service", methods=[ponger]),
            ]
        ),
    )


def _bench_enforcement(config: BenchConfig) -> Dict[str, float]:
    """RQ4 extended: sustained-throughput policy enforcement.

    Replays one deterministic ICC event stream through both PDP backends
    (events/sec, p50/p99 per-decision latency, decision-cache hit rate)
    and measures end-to-end hooked vs unhooked runtime dispatch on an
    ICC-heavy app under the compiled backend.  ``compiled_speedup`` > 1.0
    means the compiled backend beats the linear reference on identical
    traffic; it is direction-tagged in ``HIGHER_BETTER`` so a comparison
    flags any slide back toward linear scanning.
    """
    from repro.core.policy import PolicyAction, PolicyEvent
    from repro.enforcement import (
        AndroidRuntime,
        AuditLog,
        PolicyEnforcementPoint,
        make_pdp,
    )

    num_policies = 48 if config.quick else 192
    num_events = 4000 if config.quick else 24000
    policies, stream = make_enforcement_workload(
        seed=config.seed, num_policies=num_policies, num_events=num_events
    )

    def drive(backend: str):
        # Retention keeps the measured loop allocation-flat: bounded
        # window, fallthroughs sampled 1-in-8 (counters stay exact).
        audit = AuditLog(window=2048, sample_default_allow=8)
        pdp = make_pdp(
            policies,
            backend=backend,
            prompt_callback=lambda policy, event: True,
            audit=audit,
        )
        latencies: List[float] = []
        t0 = time.perf_counter()
        for kind, event in stream:
            start = time.perf_counter()
            pdp.decide(kind, event)
            latencies.append(time.perf_counter() - start)
        return pdp, time.perf_counter() - t0, latencies

    linear_pdp, linear_seconds, linear_lat = drive("linear")
    compiled_pdp, compiled_seconds, compiled_lat = drive("compiled")
    # Identical traffic must produce identical verdict totals; a mismatch
    # means the numbers compare different work and must not be reported.
    assert linear_pdp.audit.summary() == compiled_pdp.audit.summary(), (
        "PDP backends diverged on the benchmark stream"
    )

    apk = _bench_icc_heavy_apk(ops=10 if config.quick else 40)
    hook_policies, _ = make_enforcement_workload(
        seed=config.seed, num_policies=16, num_events=0
    )

    def dispatch(protect: bool) -> float:
        samples = []
        for _ in range(3 if config.quick else 7):
            runtime = AndroidRuntime()
            runtime.install(apk)
            if protect:
                pdp = make_pdp(
                    hook_policies,
                    backend="compiled",
                    prompt_callback=lambda policy, event: True,
                )
                PolicyEnforcementPoint(runtime, pdp).install()
            t0 = time.perf_counter()
            runtime.start_component("bench.icc/Main")
            samples.append(time.perf_counter() - t0)
        return _percentile(samples, 0.5)

    unhooked = dispatch(protect=False)
    hooked = dispatch(protect=True)

    cache_lookups = compiled_pdp.cache_hits + compiled_pdp.cache_misses
    return {
        "policies": float(num_policies),
        "events": float(num_events),
        "linear_seconds": linear_seconds,
        "compiled_seconds": compiled_seconds,
        "linear_events_per_sec": num_events / linear_seconds,
        "compiled_events_per_sec": num_events / compiled_seconds,
        "compiled_speedup": (
            linear_seconds / compiled_seconds if compiled_seconds > 0 else 0.0
        ),
        "linear_p50_us": _percentile(linear_lat, 0.5) * 1e6,
        "linear_p99_us": _percentile(linear_lat, 0.99) * 1e6,
        "compiled_p50_us": _percentile(compiled_lat, 0.5) * 1e6,
        "compiled_p99_us": _percentile(compiled_lat, 0.99) * 1e6,
        "cache_hit_rate": (
            compiled_pdp.cache_hits / cache_lookups if cache_lookups else 0.0
        ),
        "unhooked_dispatch_seconds": unhooked,
        "hooked_dispatch_seconds": hooked,
        "hook_overhead_pct": (
            (hooked - unhooked) / unhooked * 100.0 if unhooked > 0 else 0.0
        ),
    }


def _bench_service(config: BenchConfig) -> Dict[str, float]:
    """Sustained service throughput: warm sessions vs cold reruns.

    Replays a seeded install / uninstall / reinstall stream with an
    ``analyze`` re-query after every event, twice: once through one
    resident :class:`DeviceSession` (warm engine + in-memory
    content-addressed cache), once as cold full-bundle runs (a fresh
    engine per queried composition, extraction already paid on both
    sides).  Every warm answer is asserted byte-identical to its cold
    answer before any number is reported -- the measured speedup never
    compares different work.  ``warm_speedup`` > 1.0 means the resident
    session beats cold re-analysis; it is direction-tagged in
    ``HIGHER_BETTER``.  A second phase drives a ``decide`` stream
    through a live socket server for end-to-end requests/sec and
    per-request latency, then replays a shorter stream twice -- once
    with the whole telemetry stack (span tracing + cost ledger) swapped
    out, once with it live -- and reports the per-request p50/p99 of
    each plus ``telemetry_overhead_pct``, the price of attribution on
    the hot decide path.
    """
    import json as _json
    import random

    from repro.core import serialize
    from repro.service import (
        PolicyService,
        ServerConfig,
        ServiceClient,
        SessionConfig,
    )
    from repro.service.session import DeviceSession, cold_analysis
    from repro.statics import extract_app
    from repro.workloads import CorpusConfig, CorpusGenerator

    generator = CorpusGenerator(
        CorpusConfig(seed=config.seed, scale=config.effective_scale())
    )
    apks = generator.generate()
    ledger = generator.ledger
    flagged = set()
    for group in (
        ledger.hijack_apps,
        ledger.launch_apps,
        ledger.leak_apps,
        ledger.escalation_apps,
    ):
        flagged.update(group)
    rng = random.Random(config.seed)
    vulnerable = [a for a in apks if a.package in flagged]
    neutral = [a for a in apks if a.package not in flagged]
    picked = rng.sample(vulnerable, min(3, len(vulnerable)))
    picked += rng.sample(neutral, min(len(neutral), 2))
    apps = [extract_app(a) for a in picked]
    app_dicts = {a.package: serialize.app_to_dict(a) for a in apps}
    session_config = SessionConfig(
        scenarios_per_signature=config.scenarios,
        shared_encoding=config.shared_encoding,
        solver_backend=config.solver_backend,
    )
    flips = 2 if config.quick else 4

    # ---- warm phase: one resident session replays the event stream
    session = DeviceSession("bench", config=session_config)
    queried: List[tuple] = []  # (packages, warm answer)
    resident = []
    t0 = time.perf_counter()
    for app in apps:
        session.install(app_dicts[app.package])
        resident.append(app.package)
        queried.append((tuple(sorted(resident)), session.analyze()))
    for i in range(flips):
        victim = apps[i % len(apps)].package
        session.uninstall(victim)
        queried.append(
            (
                tuple(sorted(p for p in resident if p != victim)),
                session.analyze(),
            )
        )
        session.install(app_dicts[victim])
        queried.append((tuple(sorted(resident)), session.analyze()))
    warm_seconds = time.perf_counter() - t0

    # ---- cold phase: a fresh full-bundle run per queried composition.
    # The session analyzes the device view under current permission
    # grants (the analyzer's Marshmallow semantics), so the cold side
    # must see the same grant-effective models -- comparing against the
    # raw extracted apps would diff two different compositions whenever
    # a component exercises an undeclared permission.
    from repro.core.incremental import effective_app

    by_package = {
        a.package: effective_app(a, frozenset(a.uses_permissions))
        for a in apps
    }
    t0 = time.perf_counter()
    cold_answers = [
        cold_analysis([by_package[p] for p in packages], session_config)
        for packages, _warm in queried
    ]
    cold_seconds = time.perf_counter() - t0
    for (packages, warm), cold in zip(queried, cold_answers):
        if _json.dumps(warm, sort_keys=True) != _json.dumps(
            cold, sort_keys=True
        ):
            raise RuntimeError(
                f"service session diverged from cold run on {packages}"
            )

    # ---- socket phase: sustained decide throughput on a live server
    num_requests = 200 if config.quick else 1000
    components = [
        f"{c.app}/{c.name}"
        for a in apps
        for c in a.components
    ] or ["bench.app/Main"]
    service = PolicyService(
        ServerConfig(port=0, session=session_config, heartbeat_seconds=0.5)
    )
    latencies: List[float] = []
    with service.background():
        host, port = service.address
        with ServiceClient(host, port) as client:
            for app in apps:
                client.install("bench", app_dicts[app.package])
            client.analyze("bench")  # pay the one synthesis up front
            t0 = time.perf_counter()
            for i in range(num_requests):
                event = {
                    "sender": components[i % len(components)],
                    "receiver": components[(i * 7 + 1) % len(components)],
                }
                start = time.perf_counter()
                client.decide("bench", "icc_receive", event)
                latencies.append(time.perf_counter() - start)
            socket_seconds = time.perf_counter() - t0

            # ---- telemetry-overhead phase: the same decide stream with
            # the observability stack off, then fully on.  The server's
            # event loop runs in this process, so the globals swapped
            # here govern its request handling too.
            from repro.obs import (
                NULL_COST_LEDGER,
                CostLedger,
                JsonlTracer,
                set_cost_ledger,
                set_tracer,
            )

            def drive_decides(count: int) -> List[float]:
                lat: List[float] = []
                for i in range(count):
                    event = {
                        "sender": components[i % len(components)],
                        "receiver": components[(i * 7 + 1) % len(components)],
                    }
                    start = time.perf_counter()
                    client.decide("bench", "icc_receive", event)
                    lat.append(time.perf_counter() - start)
                return lat

            telemetry_requests = max(1, num_requests // 2)
            previous_ledger = set_cost_ledger(NULL_COST_LEDGER)
            off_latencies = drive_decides(telemetry_requests)

            fd, trace_path = tempfile.mkstemp(
                prefix="repro-bench-trace-", suffix=".jsonl"
            )
            os.close(fd)
            tracer = JsonlTracer(trace_path)
            previous_tracer = set_tracer(tracer)
            set_cost_ledger(CostLedger())
            try:
                on_latencies = drive_decides(telemetry_requests)
            finally:
                set_tracer(previous_tracer)
                set_cost_ledger(previous_ledger)
                tracer.close()
                try:
                    os.unlink(trace_path)
                except OSError:
                    pass

    off_p50 = _percentile(off_latencies, 0.5)
    on_p50 = _percentile(on_latencies, 0.5)
    return {
        "apps": float(len(apps)),
        "events": float(len(apps) + 2 * flips),
        "queries": float(len(queried)),
        "warm_seconds": warm_seconds,
        "cold_seconds": cold_seconds,
        "warm_speedup": (
            cold_seconds / warm_seconds if warm_seconds > 0 else 0.0
        ),
        "warm_hit_rate": session.warm_hit_rate,
        "syntheses": float(session.syntheses),
        "socket_requests": float(num_requests),
        "socket_seconds": socket_seconds,
        "requests_per_sec": (
            num_requests / socket_seconds if socket_seconds > 0 else 0.0
        ),
        "request_p50_us": _percentile(latencies, 0.5) * 1e6,
        "request_p99_us": _percentile(latencies, 0.99) * 1e6,
        "telemetry_off_p50_us": off_p50 * 1e6,
        "telemetry_off_p99_us": _percentile(off_latencies, 0.99) * 1e6,
        "telemetry_on_p50_us": on_p50 * 1e6,
        "telemetry_on_p99_us": _percentile(on_latencies, 0.99) * 1e6,
        "telemetry_overhead_pct": (
            (on_p50 - off_p50) / off_p50 * 100.0 if off_p50 > 0 else 0.0
        ),
    }


_WORKLOADS: Dict[str, Callable[[BenchConfig], Any]] = {
    "extraction": _bench_extraction,
    "synthesis_modes": _bench_synthesis_modes,
    "accuracy": _bench_accuracy,
    "accuracy_scaled": _bench_accuracy_scaled,
    "enforcement": _bench_enforcement,
    "service": _bench_service,
}


def known_workloads() -> Tuple[str, ...]:
    """Every workload name ``run_bench`` understands (the pipeline pair
    is produced by a single shared runner, so it lives outside the
    registry)."""
    return tuple(sorted(set(_WORKLOADS) | {"pipeline_cold", "pipeline_warm"}))


def run_bench(
    config: BenchConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the configured workloads; returns the snapshot dict."""
    emit = progress or (lambda message: None)
    workloads: Dict[str, Dict[str, float]] = {}
    wanted = list(config.workloads)
    started = time.time()
    if "pipeline_cold" in wanted or "pipeline_warm" in wanted:
        emit("running pipeline_cold + pipeline_warm ...")
        pair = _bench_pipeline(config)
        for phase, summary in pair.items():
            if phase in wanted:
                workloads[phase] = summary
    for name in wanted:
        runner = _WORKLOADS.get(name)
        if runner is None:
            continue
        emit(f"running {name} ...")
        workloads[name] = runner(config)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": config.label,
        "created": started,
        "config": config.to_dict(),
        "environment": environment_fingerprint(),
        "peak_rss_bytes": peak_rss_bytes(),
        "workloads": workloads,
    }


def bench_filename(label: str) -> str:
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
    return f"BENCH_{safe or 'local'}.json"


def write_bench(result: Dict[str, Any], out_dir: str) -> str:
    """Write the snapshot as ``BENCH_<label>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(str(result.get("label", "local"))))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Comparison


def _noise_floor(metric: str) -> float:
    """Absolute change below which a metric difference is treated as noise
    (scaled-down workloads finish in milliseconds; relative thresholds
    alone would turn scheduler jitter into regressions)."""
    if metric.endswith("_seconds"):
        return 0.02
    if metric.endswith("_us"):
        return 2.0  # single-decision latencies sit near timer resolution
    if metric.endswith("_pct"):
        return 5.0  # hook-overhead percentages on millisecond dispatches
    if "rss" in metric:
        return 32 * 1024 * 1024
    if metric in (
        "cache_hit_rate",
        "warm_hit_rate",
        "precision",
        "recall",
        "f_measure",
    ) or metric.endswith(("_precision", "_recall", "_f_measure")):
        return 0.01
    if metric in ("compiled_speedup", "warm_speedup"):
        return 0.1
    return 1.0


@dataclass
class MetricDelta:
    workload: str
    metric: str
    old: float
    new: float
    change: float  # signed relative change vs old (new/old - 1)
    threshold: float

    def describe(self) -> str:
        return (
            f"{self.workload}.{self.metric}: {self.old:.4g} -> "
            f"{self.new:.4g} ({self.change:+.1%}, threshold "
            f"{self.threshold:.0%})"
        )


@dataclass
class BenchComparison:
    regressions: List[MetricDelta] = field(default_factory=list)
    improvements: List[MetricDelta] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    def ok(self, strict: bool = False) -> bool:
        if self.regressions:
            return False
        if strict and (self.mismatches or self.missing):
            return False
        return True


def _threshold_for(
    metric: str, thresholds: Dict[str, float], default: float
) -> float:
    """Per-metric threshold: exact name first, then the longest key that
    is an underscore-separated suffix (``"recall"`` covers every
    per-signature ``<name>_recall``)."""
    if metric in thresholds:
        return thresholds[metric]
    for key in sorted(thresholds, key=len, reverse=True):
        if metric.endswith("_" + key):
            return thresholds[key]
    return default


def compare_bench(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: Optional[Dict[str, float]] = None,
) -> BenchComparison:
    """Diff two snapshots; direction-aware, noise-floored, total.

    ``thresholds`` overrides the relative threshold per metric name
    (matching on the bare metric, e.g. ``"wall_seconds"``; a key also
    matches any metric carrying it as an underscore-separated suffix, so
    ``"recall"`` covers every per-signature ``<name>_recall``, longest
    key winning).  Workloads or
    metrics present in ``old`` but absent in ``new`` land in ``missing``
    (a strict-mode failure: the benchmark got narrower).  Identity
    metrics (app counts, job counts) that differ land in ``mismatches``.
    """
    old_version = old.get("schema_version")
    new_version = new.get("schema_version")
    if old_version != BENCH_SCHEMA_VERSION or new_version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench schema mismatch: old={old_version} new={new_version} "
            f"expected={BENCH_SCHEMA_VERSION}"
        )
    thresholds = thresholds or {}
    comparison = BenchComparison()
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})

    flat_old: Dict[str, Dict[str, float]] = dict(old_workloads)
    flat_new: Dict[str, Dict[str, float]] = dict(new_workloads)
    if old.get("peak_rss_bytes") is not None and new.get("peak_rss_bytes") is not None:
        flat_old["process"] = {"peak_rss_bytes": float(old["peak_rss_bytes"])}
        flat_new["process"] = {"peak_rss_bytes": float(new["peak_rss_bytes"])}

    for workload, old_metrics in sorted(flat_old.items()):
        new_metrics = flat_new.get(workload)
        if new_metrics is None:
            comparison.missing.append(f"workload {workload!r} absent in new")
            continue
        for metric, old_value in sorted(old_metrics.items()):
            if not isinstance(old_value, (int, float)):
                continue
            if metric not in new_metrics:
                comparison.missing.append(
                    f"metric {workload}.{metric} absent in new"
                )
                continue
            new_value = float(new_metrics[metric])
            old_value = float(old_value)
            if metric in IDENTITY_METRICS:
                if old_value != new_value:
                    comparison.mismatches.append(
                        f"{workload}.{metric}: {old_value:g} vs "
                        f"{new_value:g} (configs not comparable)"
                    )
                continue
            delta = new_value - old_value
            if abs(delta) < _noise_floor(metric):
                continue
            relative = (
                delta / abs(old_value) if old_value else math.inf * (
                    1 if delta > 0 else -1
                )
            )
            limit = _threshold_for(metric, thresholds, threshold)
            worse = (
                relative < -limit
                if _higher_better(metric)
                else relative > limit
            )
            better = (
                relative > limit
                if _higher_better(metric)
                else relative < -limit
            )
            record = MetricDelta(
                workload=workload,
                metric=metric,
                old=old_value,
                new=new_value,
                change=relative,
                threshold=limit,
            )
            if worse:
                comparison.regressions.append(record)
            elif better:
                comparison.improvements.append(record)
    return comparison


def render_comparison(comparison: BenchComparison, strict: bool = False) -> str:
    lines: List[str] = []
    for item in comparison.regressions:
        lines.append(f"REGRESSION  {item.describe()}")
    for item in comparison.improvements:
        lines.append(f"improvement {item.describe()}")
    for text in comparison.mismatches:
        lines.append(f"mismatch    {text}")
    for text in comparison.missing:
        lines.append(f"missing     {text}")
    verdict = "OK" if comparison.ok(strict=strict) else "FAIL"
    lines.append(
        f"{verdict}: {len(comparison.regressions)} regression(s), "
        f"{len(comparison.improvements)} improvement(s), "
        f"{len(comparison.mismatches)} mismatch(es), "
        f"{len(comparison.missing)} missing"
    )
    return "\n".join(lines)
