"""Hand-built ground-truth cases for the four scaled threat signatures.

Where :mod:`repro.benchsuite.droidbench` re-creates the published leak
benchmark, this module is the equivalent fixed suite for the PR-9 threat
model: permission re-delegation chains, content-provider read/write
leakage, dynamically-registered receiver hijack, and multi-app collusion.
Every positive case is paired with a near-miss decoy that differs by
exactly the guard the signature's axioms check (an enforced permission, a
non-sensitive payload, a collapsed protection domain), so the suite
exercises precision as well as recall.

Unlike the seeded adversarial corpus (:mod:`repro.core.attack_generation`)
these cases are deterministic by construction -- no RNG, no background
graph -- which makes them the right fixture for unit tests and for
debugging a signature in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Set

from repro.android import permissions as perms
from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.benchsuite.appkit import make_apk
from repro.core.vulnerabilities.base import ExploitScenario
from repro.dex import DexClass, MethodBuilder

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE
R = ComponentKind.RECEIVER
P = ComponentKind.PROVIDER


@dataclass
class ThreatCase:
    """One fixed scenario with its planted ground truth.

    ``expected_apps`` is empty for decoys: the analysis must stay silent.
    ``components`` documents the planted structure (qualified names) and
    bounds what the signature may implicate.
    """

    name: str
    signature: str
    apks: List[Apk]
    expected_apps: FrozenSet[str]
    components: FrozenSet[str] = field(default_factory=frozenset)
    notes: str = ""

    @property
    def is_decoy(self) -> bool:
        return not self.expected_apps


def detected_apps(
    scenarios: Iterable[ExploitScenario], signature: str
) -> Set[str]:
    """Packages a signature's scenarios implicate (via qualified roles)."""
    apps: Set[str] = set()
    for scenario in scenarios:
        if scenario.vulnerability != signature:
            continue
        apps.update(
            atom.split("/", 1)[0]
            for atom in scenario.roles.values()
            if isinstance(atom, str) and "/" in atom
        )
    return apps


# ---------------------------------------------------------------------------
# permission re-delegation
# ---------------------------------------------------------------------------
def _forwarder(name: str, target: str, entry: str) -> DexClass:
    b = MethodBuilder(entry, params=("p0",))
    b.new_instance("v0", "Intent")
    b.const_string("v1", target)
    b.invoke("Intent.setClassName", receiver="v0", args=("v1",))
    b.invoke("Context.startService", args=("v0",))
    b.ret()
    superclass = "Activity" if entry == "onCreate" else "Service"
    return DexClass(name, superclass=superclass, methods=[b.build()])


def _sms_terminal(name: str) -> DexClass:
    b = MethodBuilder("onStartCommand", params=("p0",))
    b.const_string("v1", "cmd")
    b.invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
    b.invoke("SmsManager.getDefault", dest="v3")
    b.invoke(
        "SmsManager.sendTextMessage",
        receiver="v3",
        args=("v2", "v2", "v2", "v2", "v2"),
    )
    b.ret()
    return DexClass(name, superclass="Service", methods=[b.build()])


def _redelegation(k: int, guarded: bool) -> ThreatCase:
    """Exported entry, ``k - 1`` silent hops, SmsManager terminal."""
    pkg = "tc.red"
    chain = ["Entry"] + [f"Hop{j}" for j in range(k - 1)] + ["Term"]
    decls = [ComponentDecl("Entry", A, exported=True)]
    classes = [_forwarder("Entry", f"{pkg}/{chain[1]}", "onCreate")]
    for j, name in enumerate(chain[1:-1]):
        decls.append(ComponentDecl(name, S))
        classes.append(
            _forwarder(name, f"{pkg}/{chain[j + 2]}", "onStartCommand")
        )
    decls.append(
        ComponentDecl(
            "Term", S, permission=perms.SEND_SMS if guarded else None
        )
    )
    classes.append(_sms_terminal("Term"))
    apk = make_apk(pkg, decls, classes, uses_permissions=[perms.SEND_SMS])
    return ThreatCase(
        name=f"redelegation_k{k}{'_guarded' if guarded else ''}",
        signature="permission_redelegation",
        apks=[apk],
        expected_apps=frozenset() if guarded else frozenset({pkg}),
        components=frozenset(f"{pkg}/{name}" for name in chain),
        notes=(
            "terminal enforces SEND_SMS on callers: nothing re-delegated"
            if guarded
            else f"SEND_SMS capability reachable through {k} ICC hop(s)"
        ),
    )


# ---------------------------------------------------------------------------
# content-provider read/write leakage
# ---------------------------------------------------------------------------
def _provider_writer(name: str, authority: str, sensitive: bool) -> DexClass:
    b = MethodBuilder("onCreate", params=("p0",))
    if sensitive:
        b.invoke(
            "LocationManager.getLastKnownLocation", receiver="v9", dest="v8"
        )
    else:
        b.const_string("v8", "telemetry-tag")
    b.const_string("v0", f"content://{authority}/rows")
    b.invoke("ContentResolver.insert", args=("v0", "v8"))
    b.ret()
    return DexClass(name, superclass="Activity", methods=[b.build()])


def _provider_class(name: str, logs: bool) -> DexClass:
    insert = MethodBuilder("insert", params=("p0", "p1"))
    if logs:
        insert.const_string("v0", "vault")
        insert.invoke("Log.d", args=("v0", "p1"))
    insert.ret()
    query = MethodBuilder("query", params=("p0", "p1"))
    query.ret()
    return DexClass(
        name,
        superclass="ContentProvider",
        methods=[insert.build(), query.build()],
    )


def _provider_leak(kind: str, sensitive: bool = True) -> ThreatCase:
    authority = "tc.vault"
    writer = make_apk(
        "tc.writer",
        [ComponentDecl("Uploader", A)],
        [_provider_writer("Uploader", authority, sensitive)],
        uses_permissions=[perms.ACCESS_FINE_LOCATION] if sensitive else [],
    )
    store = make_apk(
        "tc.store",
        [ComponentDecl("Vault", P, exported=True, authority=authority)],
        [_provider_class("Vault", logs=(kind == "write"))],
    )
    apks = [writer, store]
    components = {"tc.writer/Uploader", "tc.store/Vault"}
    expected = {"tc.writer", "tc.store"}
    if kind == "read":
        rb = MethodBuilder("onCreate", params=("p0",))
        rb.const_string("v0", f"content://{authority}/rows")
        rb.invoke("ContentResolver.query", args=("v0",), dest="v2")
        rb.invoke("URL.openConnection", args=("v2",))
        rb.ret()
        apks.append(
            make_apk(
                "tc.reader",
                [ComponentDecl("Harvester", A)],
                [DexClass("Harvester", superclass="Activity",
                          methods=[rb.build()])],
                uses_permissions=[perms.INTERNET],
            )
        )
        components.add("tc.reader/Harvester")
        expected.add("tc.reader")
    suffix = "" if sensitive else "_benign"
    return ThreatCase(
        name=f"provider_leak_{kind}{suffix}",
        signature="provider_leak",
        apks=apks,
        expected_apps=frozenset() if not sensitive else frozenset(expected),
        components=frozenset(components),
        notes=(
            "writer stores only a constant tag: nothing sensitive to leak"
            if not sensitive
            else f"location data escapes via the provider's {kind} path"
        ),
    )


# ---------------------------------------------------------------------------
# dynamically-registered receiver hijack
# ---------------------------------------------------------------------------
def _dynamic_receiver(guarded: bool) -> ThreatCase:
    pkg = "tc.dyn"
    reg = MethodBuilder("onCreate", params=("p0",))
    reg.new_instance("v0", "Recv")
    reg.new_instance("v1", "IntentFilter")
    reg.const_string("v2", "tc.DYN_CMD")
    reg.invoke("IntentFilter.addAction", receiver="v1", args=("v2",))
    reg.invoke("Context.registerReceiver", args=("v0", "v1"))
    reg.ret()
    recv = MethodBuilder("onReceive", params=("p0",))
    recv.const_string("v1", "cmd")
    recv.invoke("Intent.getStringExtra", receiver="p0", args=("v1",),
                dest="v2")
    recv.const_string("v0", "dyn")
    recv.invoke("Log.d", args=("v0", "v2"))
    recv.ret()
    apk = make_apk(
        pkg,
        [
            ComponentDecl("Main", A, exported=True),
            ComponentDecl(
                "Recv", R, permission=perms.INTERNET if guarded else None
            ),
        ],
        [
            DexClass("Main", superclass="Activity", methods=[reg.build()]),
            DexClass("Recv", superclass="BroadcastReceiver",
                     methods=[recv.build()]),
        ],
    )
    return ThreatCase(
        name=f"dynamic_receiver{'_guarded' if guarded else ''}",
        signature="dynamic_receiver_hijack",
        apks=[apk],
        expected_apps=frozenset() if guarded else frozenset({pkg}),
        components=frozenset({f"{pkg}/Main", f"{pkg}/Recv"}),
        notes=(
            "registration carries a permission guard: spoofs bounce"
            if guarded
            else "code-registered receiver accepts any sender's broadcast"
        ),
    )


# ---------------------------------------------------------------------------
# multi-app collusion
# ---------------------------------------------------------------------------
def _collusion(collapsed: bool) -> ThreatCase:
    """Contacts flow source -> forwarder -> network uploader.  The decoy
    hosts the uploader in the source's own app: only two protection
    domains, so no collusion."""
    src_pkg, mid_pkg = "tc.colsrc", "tc.colmid"
    dst_pkg = src_pkg if collapsed else "tc.coldst"

    src = MethodBuilder("onCreate", params=("p0",))
    src.invoke("ContactsProvider.query", receiver="v9", dest="v8")
    src.new_instance("v0", "Intent")
    src.const_string("v1", f"{mid_pkg}/Fwd")
    src.invoke("Intent.setClassName", receiver="v0", args=("v1",))
    src.const_string("v2", "loot")
    src.invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
    src.invoke("Context.startService", args=("v0",))
    src.ret()

    mid = MethodBuilder("onStartCommand", params=("p0",))
    mid.const_string("v1", "loot")
    mid.invoke("Intent.getStringExtra", receiver="p0", args=("v1",),
               dest="v2")
    mid.new_instance("v3", "Intent")
    mid.const_string("v4", f"{dst_pkg}/Up")
    mid.invoke("Intent.setClassName", receiver="v3", args=("v4",))
    mid.const_string("v5", "loot")
    mid.invoke("Intent.putExtra", receiver="v3", args=("v5", "v2"))
    mid.invoke("Context.startService", args=("v3",))
    mid.ret()

    dst = MethodBuilder("onStartCommand", params=("p0",))
    dst.const_string("v1", "loot")
    dst.invoke("Intent.getStringExtra", receiver="p0", args=("v1",),
               dest="v2")
    dst.invoke("URL.openConnection", args=("v2",))
    dst.ret()

    src_decls = [ComponentDecl("Src", A, exported=True)]
    src_classes = [
        DexClass("Src", superclass="Activity", methods=[src.build()])
    ]
    src_permissions: List[str] = []
    if collapsed:
        src_decls.append(ComponentDecl("Up", S, exported=True))
        src_classes.append(
            DexClass("Up", superclass="Service", methods=[dst.build()])
        )
        src_permissions.append(perms.INTERNET)
    apks = [
        make_apk(src_pkg, src_decls, src_classes,
                 uses_permissions=src_permissions),
        make_apk(
            mid_pkg,
            [ComponentDecl("Fwd", S, exported=True)],
            [DexClass("Fwd", superclass="Service", methods=[mid.build()])],
        ),
    ]
    if not collapsed:
        apks.append(
            make_apk(
                dst_pkg,
                [ComponentDecl("Up", S, exported=True)],
                [DexClass("Up", superclass="Service", methods=[dst.build()])],
                uses_permissions=[perms.INTERNET],
            )
        )
    # Collusion needs three installed protection domains even in the decoy,
    # so the bundle always carries a third (inert) app.
    apks.append(make_apk("tc.bystander", [ComponentDecl("Idle", A)], []))
    return ThreatCase(
        name=f"collusion{'_collapsed' if collapsed else '_three_app'}",
        signature="app_collusion",
        apks=apks,
        expected_apps=(
            frozenset()
            if collapsed
            else frozenset({src_pkg, mid_pkg, dst_pkg})
        ),
        components=frozenset(
            {f"{src_pkg}/Src", f"{mid_pkg}/Fwd", f"{dst_pkg}/Up"}
        ),
        notes=(
            "uploader lives in the source app: two domains, not collusion"
            if collapsed
            else "contacts relayed across three protection domains"
        ),
    )


def all_threat_cases() -> List[ThreatCase]:
    """The fixed suite: positives and near-miss decoys, all signatures."""
    return [
        _redelegation(k=1, guarded=False),
        _redelegation(k=3, guarded=False),
        _redelegation(k=3, guarded=True),
        _provider_leak("write"),
        _provider_leak("read"),
        _provider_leak("write", sensitive=False),
        _dynamic_receiver(guarded=False),
        _dynamic_receiver(guarded=True),
        _collusion(collapsed=False),
        _collusion(collapsed=True),
    ]
