"""DroidBench 2.0 ICC/IAC test cases (Table I, upper block), rebuilt on the IR.

The 23 known leaks and the trap cases (unreachable-but-vulnerable code,
data-scheme decoys) follow the published benchmark's structure:

- ``bindService1..4`` -- leaks through bound services (explicit Intents);
  case 4 carries two real leaks plus a dead-code decoy only a
  reachability-insensitive analyzer reports.
- ``sendBroadcast1`` -- implicit broadcast leak.
- ``startActivity1..3`` -- explicit intra-app Activity leaks.
- ``startActivity4..5`` -- *no* real leaks: the sending code lives in a
  method no lifecycle entry point ever calls.
- ``startActivityForResult1..4`` -- result-channel leaks (the passive
  Intents of Algorithm 1); case 4 has two.
- ``startService1..2`` -- implicit Service leaks guarded by data
  schemes, with same-action decoy components that only a scheme-blind
  matcher connects.
- ``delete1/insert1/query1/update1`` -- Content Provider leaks through
  ContentResolver operations.
- ``IAC_*`` -- the three inter-app (two-APK) leaks.
"""

from __future__ import annotations

from typing import List

from repro.android.components import ComponentKind
from repro.benchsuite.appkit import (
    component_decl,
    leaking_receiver_class,
    make_apk,
    result_consuming_class,
    result_returning_class,
    source_sender_class,
)
from repro.benchsuite.groundtruth import BenchmarkCase
from repro.dex import DexClass, MethodBuilder

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE
R = ComponentKind.RECEIVER
P = ComponentKind.PROVIDER


def _case(name: str, apks, expected, notes: str = "") -> BenchmarkCase:
    return BenchmarkCase(
        name=name,
        suite="DroidBench2",
        apks=apks,
        expected=frozenset(expected),
        notes=notes,
    )


# ---------------------------------------------------------------------------
# bindService
# ---------------------------------------------------------------------------
def bind_service1() -> BenchmarkCase:
    pkg = "db.bind1"
    # The real leak goes through the bound service; a dead helper method
    # also broadcasts the payload -- a false warning for tools that do not
    # prune framework-unreachable code.
    main = DexClass(
        "Main",
        superclass="Activity",
        methods=[
            source_sender_class(
                "Main", A, "Context.bindService", target=f"{pkg}/Bound"
            ).method("onCreate"),
            MethodBuilder("neverCalled")
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", "db.DEADBIND1")
            .invoke("Intent.setAction", receiver="v0", args=("v1",))
            .const_string("v2", "secret")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.sendBroadcast", args=("v0",))
            .ret()
            .build(),
        ],
    )
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Bound", S),
            component_decl("DeadRecv", R, action="db.DEADBIND1"),
        ],
        [
            main,
            leaking_receiver_class("Bound", S, entry="onBind"),
            leaking_receiver_class("DeadRecv", R),
        ],
    )
    return _case(
        "ICC_bindService1", [apk], [(f"{pkg}/Main", f"{pkg}/Bound")],
        notes="dead-code broadcast decoy",
    )


def bind_service2() -> BenchmarkCase:
    pkg = "db.bind2"
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Bound", S, action="db.BIND2"),
        ],
        [
            source_sender_class("Main", A, "Context.bindService", action="db.BIND2"),
            leaking_receiver_class("Bound", S, entry="onBind"),
        ],
    )
    return _case(
        "ICC_bindService2", [apk], [(f"{pkg}/Main", f"{pkg}/Bound")]
    )


def bind_service3() -> BenchmarkCase:
    pkg = "db.bind3"
    apk = make_apk(
        pkg,
        [component_decl("Main", A, exported=True), component_decl("Bound", S)],
        [
            source_sender_class(
                "Main", A, "Context.bindService",
                target=f"{pkg}/Bound", via_helper=True,
            ),
            leaking_receiver_class("Bound", S, entry="onBind"),
        ],
    )
    return _case(
        "ICC_bindService3", [apk], [(f"{pkg}/Main", f"{pkg}/Bound")],
        notes="payload routed through a helper method",
    )


def bind_service4() -> BenchmarkCase:
    pkg = "db.bind4"
    # Two real bound-service leaks, plus a dead-code send to a third
    # sink-bearing service that a reachability-insensitive tool flags.
    main = DexClass(
        "Main",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", f"{pkg}/BoundA")
            .invoke("Intent.setClassName", receiver="v0", args=("v1",))
            .const_string("v2", "secret")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.bindService", args=("v0",))
            .new_instance("v3", "Intent")
            .const_string("v4", f"{pkg}/BoundB")
            .invoke("Intent.setClassName", receiver="v3", args=("v4",))
            .invoke("Intent.putExtra", receiver="v3", args=("v2", "v8"))
            .invoke("Context.bindService", args=("v3",))
            .ret()
            .build(),
            # Never called from any lifecycle entry: dead as far as the
            # framework is concerned.
            MethodBuilder("neverCalled")
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", "db.DEADBIND")
            .invoke("Intent.setAction", receiver="v0", args=("v1",))
            .const_string("v2", "secret")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.sendBroadcast", args=("v0",))
            .ret()
            .build(),
        ],
    )
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("BoundA", S),
            component_decl("BoundB", S),
            component_decl("DeadRecv", R, action="db.DEADBIND"),
        ],
        [
            main,
            leaking_receiver_class("BoundA", S, entry="onBind"),
            leaking_receiver_class("BoundB", S, entry="onBind"),
            leaking_receiver_class("DeadRecv", R),
        ],
    )
    return _case(
        "ICC_bindService4",
        [apk],
        [
            (f"{pkg}/Main", f"{pkg}/BoundA"),
            (f"{pkg}/Main", f"{pkg}/BoundB"),
        ],
        notes="two leaks; dead-code decoy to BoundDead",
    )


# ---------------------------------------------------------------------------
# sendBroadcast / startActivity
# ---------------------------------------------------------------------------
def send_broadcast1() -> BenchmarkCase:
    pkg = "db.bcast1"
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Recv", R, action="db.BCAST1"),
        ],
        [
            source_sender_class("Main", A, "Context.sendBroadcast", action="db.BCAST1"),
            leaking_receiver_class("Recv", R),
        ],
    )
    return _case("ICC_sendBroadcast1", [apk], [(f"{pkg}/Main", f"{pkg}/Recv")])


def start_activity_n(n: int) -> BenchmarkCase:
    pkg = f"db.sact{n}"
    via_helper = n == 2
    extra_key = "secret" if n != 3 else "payload3"
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Leaker", A),
        ],
        [
            source_sender_class(
                "Main", A, "Context.startActivity",
                target=f"{pkg}/Leaker", via_helper=via_helper,
                extra_key=extra_key,
            ),
            leaking_receiver_class("Leaker", A, extra_key=extra_key),
        ],
    )
    return _case(f"ICC_startActivity{n}", [apk], [(f"{pkg}/Main", f"{pkg}/Leaker")])


def start_activity_unreachable(n: int) -> BenchmarkCase:
    """No real leak: the sending code is never invoked."""
    pkg = f"db.sact{n}"
    dead_sender = DexClass(
        "Main",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .const_string("v0", "benign")
            .ret()
            .build(),
            MethodBuilder("unreachableLeak")
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", f"db.DEAD{n}")
            .invoke("Intent.setAction", receiver="v0", args=("v1",))
            .const_string("v2", "secret")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.startActivity", args=("v0",))
            .ret()
            .build(),
        ],
    )
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Sink", A, action=f"db.DEAD{n}"),
        ],
        [dead_sender, leaking_receiver_class("Sink", A)],
    )
    return _case(
        f"ICC_startActivity{n}", [apk], [],
        notes="vulnerable code unreachable; any report is a false warning",
    )


# ---------------------------------------------------------------------------
# startActivityForResult
# ---------------------------------------------------------------------------
def start_activity_for_result_n(n: int) -> BenchmarkCase:
    pkg = f"db.safr{n}"
    apk = make_apk(
        pkg,
        [
            component_decl("Caller", A, exported=True),
            component_decl("Callee", A),
        ],
        [
            result_consuming_class("Caller", f"{pkg}/Callee"),
            result_returning_class("Callee"),
        ],
    )
    return _case(
        f"ICC_startActivityForResult{n}",
        [apk],
        [(f"{pkg}/Callee", f"{pkg}/Caller")],
    )


def start_activity_for_result4() -> BenchmarkCase:
    pkg = "db.safr4"
    caller = DexClass(
        "Caller",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .new_instance("v0", "Intent")
            .const_string("v1", f"{pkg}/CalleeA")
            .invoke("Intent.setClassName", receiver="v0", args=("v1",))
            .invoke("Context.startActivityForResult", args=("v0",))
            .new_instance("v2", "Intent")
            .const_string("v3", f"{pkg}/CalleeB")
            .invoke("Intent.setClassName", receiver="v2", args=("v3",))
            .invoke("Context.startActivityForResult", args=("v2",))
            .ret()
            .build(),
            MethodBuilder("onActivityResult", params=("p0",))
            .const_string("v1", "secret")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
            .invoke("SmsManager.getDefault", dest="v3")
            .const_string("v4", "5550001")
            .invoke(
                "SmsManager.sendTextMessage",
                receiver="v3",
                args=("v4", "v4", "v2", "v4", "v4"),
            )
            .ret()
            .build(),
        ],
    )
    apk = make_apk(
        pkg,
        [
            component_decl("Caller", A, exported=True),
            component_decl("CalleeA", A),
            component_decl("CalleeB", A),
        ],
        [
            caller,
            result_returning_class("CalleeA"),
            result_returning_class("CalleeB"),
        ],
    )
    return _case(
        "ICC_startActivityForResult4",
        [apk],
        [
            (f"{pkg}/CalleeA", f"{pkg}/Caller"),
            (f"{pkg}/CalleeB", f"{pkg}/Caller"),
        ],
        notes="two result-channel leaks",
    )


# ---------------------------------------------------------------------------
# startService (scheme-guarded, with decoys)
# ---------------------------------------------------------------------------
def start_service_n(n: int) -> BenchmarkCase:
    pkg = f"db.ssvc{n}"
    action = f"db.SVC{n}"
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("True", S, action=action, data_scheme="content"),
            component_decl("Decoy", S, action=action, data_scheme="http"),
        ],
        [
            source_sender_class(
                "Main", A, "Context.startService",
                action=action, data_scheme="content",
            ),
            leaking_receiver_class("True", S),
            leaking_receiver_class("Decoy", S),
        ],
    )
    return _case(
        f"ICC_startService{n}",
        [apk],
        [(f"{pkg}/Main", f"{pkg}/True")],
        notes="scheme-blind matchers also connect the decoy",
    )


# ---------------------------------------------------------------------------
# Content Provider operations
# ---------------------------------------------------------------------------
def provider_case(operation: str) -> BenchmarkCase:
    pkg = f"db.prov{operation}"
    authority = f"{pkg}.provider"
    entry = operation  # query/insert/update/delete are provider entries
    sender = DexClass(
        "Main",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
            .const_string("v0", f"content://{authority}/items")
            .invoke(f"ContentResolver.{operation}", args=("v0", "v8"), dest="v2")
            .ret()
            .build()
        ],
    )
    provider = DexClass(
        "Prov",
        superclass="ContentProvider",
        methods=[
            MethodBuilder(entry, params=("p0", "p1"))
            .invoke("SmsManager.getDefault", dest="v3")
            .const_string("v4", "5550001")
            .invoke(
                "SmsManager.sendTextMessage",
                receiver="v3",
                args=("v4", "v4", "p1", "v4", "v4"),
            )
            .ret()
            .build()
        ],
    )
    apk = make_apk(
        pkg,
        [
            component_decl("Main", A, exported=True),
            component_decl("Prov", P, exported=True, authority=authority),
        ],
        [sender, provider],
    )
    return _case(
        f"ICC_{operation}1", [apk], [(f"{pkg}/Main", f"{pkg}/Prov")]
    )


# ---------------------------------------------------------------------------
# Inter-app (IAC)
# ---------------------------------------------------------------------------
def iac_case(api: str, label: str, kind: ComponentKind) -> BenchmarkCase:
    sender_pkg = f"iac.{label}.sender"
    receiver_pkg = f"iac.{label}.receiver"
    action = f"iac.{label.upper()}"
    sender = make_apk(
        sender_pkg,
        [component_decl("Main", A, exported=True)],
        [source_sender_class("Main", A, api, action=action)],
    )
    # A decoy component declares the same action but requires a data
    # scheme the Intent does not carry: only a scheme-blind matcher
    # (DidFail's Epicc summaries) connects it.
    receiver = make_apk(
        receiver_pkg,
        [
            component_decl("Recv", kind, action=action, exported=True),
            component_decl(
                "Decoy", kind, action=action, data_scheme="https", exported=True
            ),
        ],
        [
            leaking_receiver_class("Recv", kind),
            leaking_receiver_class("Decoy", kind),
        ],
    )
    return _case(
        f"IAC_{label}1",
        [sender, receiver],
        [(f"{sender_pkg}/Main", f"{receiver_pkg}/Recv")],
        notes="scheme-guarded decoy in the receiver app",
    )


def droidbench_cases() -> List[BenchmarkCase]:
    """All 23-leak DroidBench 2.0 rows of Table I, in table order."""
    return [
        bind_service1(),
        bind_service2(),
        bind_service3(),
        bind_service4(),
        send_broadcast1(),
        start_activity_n(1),
        start_activity_n(2),
        start_activity_n(3),
        start_activity_unreachable(4),
        start_activity_unreachable(5),
        start_activity_for_result_n(1),
        start_activity_for_result_n(2),
        start_activity_for_result_n(3),
        start_activity_for_result4(),
        start_service_n(1),
        start_service_n(2),
        provider_case("delete"),
        provider_case("insert"),
        provider_case("query"),
        provider_case("update"),
        iac_case("Context.startActivity", "startActivity", A),
        iac_case("Context.startService", "startService", S),
        iac_case("Context.sendBroadcast", "sendBroadcast", R),
    ]
