"""The paper's motivating example (Section II), built over the IR.

Three apps:

- **App1** (navigation): ``LocationFinder`` reads GPS data and sends it to
  a sibling ``RouteFinder`` service via an *implicit* Intent with action
  ``showLoc`` (Listing 1) -- the unauthorized-Intent-receipt anti-pattern.
- **App2** (messenger): ``MessageSender`` is a public service that reads a
  phone number and message text out of any received Intent and sends an
  SMS; the ``hasPermission`` check exists but is never called (Listing 2).
- **Malicious app** (Figure 1): holds *no* permissions; hijacks the
  location Intent and forwards the stolen data to ``MessageSender``.
"""

from __future__ import annotations

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.dex import DexClass, DexProgram, MethodBuilder


def build_app1() -> Apk:
    """The navigation app of Listing 1."""
    location_finder = DexClass(
        "LocationFinder",
        superclass="Service",
        methods=[
            (
                MethodBuilder("onStartCommand", params=("p0",))
                # lm.getLastKnownLocation(GPS_PROVIDER)
                .invoke(
                    "LocationManager.getLastKnownLocation",
                    receiver="v9",
                    dest="v2",
                )
                # lastKnownLocation.toString()
                .invoke("Location.toString", receiver="v2", dest="v3")
                # intent = new Intent(); intent.setAction("showLoc")
                .new_instance("v0", "Intent")
                .const_string("v1", "showLoc")
                .invoke("Intent.setAction", receiver="v0", args=("v1",))
                # intent.putExtra("locationInfo", location)
                .const_string("v4", "locationInfo")
                .invoke("Intent.putExtra", receiver="v0", args=("v4", "v3"))
                # startService(intent)
                .invoke("Context.startService", args=("v0",))
                .ret()
                .build()
            ),
        ],
    )
    route_finder = DexClass(
        "RouteFinder",
        superclass="Service",
        methods=[
            (
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v1", "locationInfo")
                .invoke(
                    "Intent.getStringExtra",
                    receiver="p0",
                    args=("v1",),
                    dest="v2",
                )
                .invoke("Log.d", args=("v3", "v2"))
                .ret()
                .build()
            ),
        ],
    )
    manifest = Manifest(
        package="com.example.navigation",
        uses_permissions=frozenset({perms.ACCESS_FINE_LOCATION}),
        components=[
            ComponentDecl("LocationFinder", ComponentKind.SERVICE),
            ComponentDecl(
                "RouteFinder",
                ComponentKind.SERVICE,
                intent_filters=[IntentFilter.for_action("showLoc")],
            ),
        ],
    )
    return Apk(manifest, DexProgram([location_finder, route_finder]))


def build_app2() -> Apk:
    """The messenger app of Listing 2: the permission check is defined but
    never invoked (line 6 of the listing is commented out)."""
    message_sender = DexClass(
        "MessageSender",
        superclass="Service",
        methods=[
            (
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v1", "PHONE_NUM")
                .invoke(
                    "Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2"
                )
                .const_string("v3", "TEXT_MSG")
                .invoke(
                    "Intent.getStringExtra", receiver="p0", args=("v3",), dest="v4"
                )
                # if (hasPermission())  -- commented out in the listing
                .invoke("this.sendTextMessage", args=("v2", "v4"))
                .ret()
                .build()
            ),
            (
                MethodBuilder("sendTextMessage", params=("p0", "p1"))
                .invoke("SmsManager.getDefault", dest="v0")
                .const_string("v9", "")
                .invoke(
                    "SmsManager.sendTextMessage",
                    receiver="v0",
                    args=("p0", "v9", "p1", "v9", "v9"),
                )
                .ret()
                .build()
            ),
            (
                MethodBuilder("hasPermission")
                .const_string("v0", perms.SEND_SMS)
                .invoke(
                    "Context.checkCallingPermission", args=("v0",), dest="v1"
                )
                .ret("v1")
                .build()
            ),
        ],
    )
    manifest = Manifest(
        package="com.example.messenger",
        uses_permissions=frozenset({perms.SEND_SMS}),
        components=[
            ComponentDecl(
                "MessageSender",
                ComponentKind.SERVICE,
                exported=True,
            ),
        ],
    )
    return Apk(manifest, DexProgram([message_sender]))


def build_malicious_app() -> Apk:
    """The postulated malicious app of Figure 1: needs no permissions.

    ``Thief`` declares an Intent filter matching the ``showLoc`` action and
    re-sends the stolen payload to ``MessageSender`` with the adversary's
    phone number."""
    thief = DexClass(
        "Thief",
        superclass="Service",
        methods=[
            (
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v1", "locationInfo")
                .invoke(
                    "Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2"
                )
                .new_instance("v0", "Intent")
                .const_string("v3", "com.example.messenger/MessageSender")
                .invoke("Intent.setClassName", receiver="v0", args=("v3",))
                .const_string("v4", "TEXT_MSG")
                .invoke("Intent.putExtra", receiver="v0", args=("v4", "v2"))
                .const_string("v5", "PHONE_NUM")
                .const_string("v6", "+1-202-555-0143")
                .invoke("Intent.putExtra", receiver="v0", args=("v5", "v6"))
                .invoke("Context.startService", args=("v0",))
                .ret()
                .build()
            ),
        ],
    )
    manifest = Manifest(
        package="com.evil.innocuous",
        uses_permissions=frozenset(),
        components=[
            ComponentDecl(
                "Thief",
                ComponentKind.SERVICE,
                intent_filters=[IntentFilter.for_action("showLoc")],
            ),
        ],
    )
    return Apk(manifest, DexProgram([thief]))


def build_running_example_bundle() -> list:
    """App1 and App2 only -- the benign-but-vulnerable installed bundle."""
    return [build_app1(), build_app2()]
