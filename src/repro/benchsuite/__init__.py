"""Benchmark app suites and ground truth.

- :mod:`repro.benchsuite.running_example` -- the paper's motivating example
  (Listings 1 and 2 plus the synthesized malicious app of Figure 1).
- :mod:`repro.benchsuite.droidbench` -- the 23 DroidBench 2.0 ICC/IAC test
  cases of Table I, rebuilt over the IR with their published ground truth.
- :mod:`repro.benchsuite.iccbench` -- the 10 ICC-Bench test cases.
- :mod:`repro.benchsuite.metrics` -- precision/recall/F-measure scoring.
"""
